"""Compatibility shim for tooling that predates PEP 621 metadata.

All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
