"""Selfish-node flooding attack, and what the consistent predicate buys.

A low-availability freeloader enumerates every host it has ever heard
of and sprays a message at all of them, claiming each is its AVMEM
neighbor.  Recipients verify ``H(id(x), id(y)) <= f(av(x), av(y)) +
cushion`` from their own (cached, imperfect) knowledge — no coordination
needed.  The example reports the attacker's illegitimate audience and
the legitimate-rejection side effect, with and without the cushion
(Figs 5-6 as a demo).

Run:  python examples/attack_resilience.py
"""

from repro import AvmemSimulation, SimulationSettings
from repro.attacks.flooding import legitimate_rejection_experiment
from repro.attacks.selfish import spray_attack


def main() -> None:
    simulation = AvmemSimulation(
        SimulationSettings(hosts=220, epochs=96, seed=13, monitor_noise_std=0.05)
    )
    simulation.setup(warmup=24600.0, settle=2400.0)

    # Pick the lowest-availability online node as the selfish attacker —
    # exactly who has the most to gain from an illegitimate audience.
    online = simulation.online_ids()
    attacker_id = min(online, key=simulation.true_availability)
    attacker = simulation.nodes[attacker_id]
    print(
        f"attacker: {attacker_id} "
        f"(availability {simulation.true_availability(attacker_id):.2f}), "
        f"legitimately knows {attacker.lists.total_count} neighbors"
    )

    for cushion in (0.0, 0.1):
        outcome = spray_attack(
            attacker, simulation.nodes, simulation.predicate,
            simulation.true_availability,
            extra_known=online,  # crawler feeds it every online host
            cushion=cushion,
        )
        print(
            f"cushion={cushion}: sprayed {outcome.targets_tried} hosts, "
            f"{outcome.accepted_illegitimate} illegitimate acceptances "
            f"(audience rate {outcome.illegitimate_audience_rate:.3f})"
        )

    print()
    print("the flip side — valid in-neighbor messages wrongly rejected:")
    for cushion in (0.0, 0.1):
        rates = legitimate_rejection_experiment(
            simulation.nodes, simulation.predicate, simulation.true_availability,
            cushion=cushion, senders=online[:60],
        )
        print(f"cushion={cushion}: mean rejection rate {rates.overall:.3f}")
    print(
        "the cushion trades a slightly larger attack audience for far "
        "fewer false rejections (the paper picks 0.1)"
    )


if __name__ == "__main__":
    main()
