"""Supernode selection via threshold-anycast.

The paper's motivating control operation: "selecting a supernode in a
p2p system with a minimal threshold availability" (Section 1, use
case I).  Any node — here deliberately *low-availability* initiators —
can anycast to ``availability > b`` and obtain a stable host, without
any central registry and without being able to spam the stable
population (the predicate is consistent and verifiable).

Run:  python examples/supernode_selection.py
"""

from collections import Counter

from repro import AvmemSimulation, SimulationSettings

SUPERNODE_THRESHOLD = 0.90
ELECTIONS = 20


def main() -> None:
    simulation = AvmemSimulation(SimulationSettings(hosts=220, epochs=96, seed=11))
    simulation.setup(warmup=24600.0, settle=2400.0)

    print(f"electing supernodes with availability > {SUPERNODE_THRESHOLD}")
    chosen = Counter()
    failures = 0
    for _ in range(ELECTIONS):
        record = simulation.run_anycast(
            SUPERNODE_THRESHOLD,
            initiator_band="low",  # flaky nodes asking for stable ones
            policy="retry-greedy",
            settle=10.0,
        )
        if record.delivered:
            chosen[record.delivery_node] += 1
        else:
            failures += 1

    print(f"elections: {ELECTIONS}, failed: {failures}")
    print("selected supernodes (node: times chosen, true availability):")
    for node, count in chosen.most_common():
        availability = simulation.true_availability(node)
        print(f"  {node}: {count}x  av={availability:.2f}")
        assert availability > SUPERNODE_THRESHOLD - 0.15, (
            "selected node should be near/above the threshold "
            "(small slack for estimate drift)"
        )
    distinct = len(chosen)
    print(
        f"{distinct} distinct supernodes over {ELECTIONS - failures} successes — "
        "randomized forwarding spreads load instead of thundering-herding one host"
    )


if __name__ == "__main__":
    main()
