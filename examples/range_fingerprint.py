"""Fingerprinting an availability band via range-multicast.

The paper's use case II: "one could find out the average bandwidth of
nodes below a certain availability, in order to correlate the two
facts".  Each host carries a synthetic bandwidth attribute (correlated
with its stability, as measurement studies find); a range-multicast to
the band of interest collects the attribute from exactly the nodes in
that band — no flooding of the rest of the system.

Run:  python examples/range_fingerprint.py
"""

import numpy as np

from repro import AvmemSimulation, SimulationSettings
from repro.util.randomness import stream

BANDS = ((0.1, 0.3), (0.4, 0.6), (0.75, 0.95))


def synthetic_bandwidth(simulation, node):
    """A host attribute for the survey: stable hosts tend to sit on
    better links (log-normal around an availability-dependent median)."""
    rng = stream(99, f"bandwidth:{node.endpoint}")
    availability = simulation.trace.lifetime_availability(node)
    median_mbps = 2.0 + 30.0 * availability
    return float(rng.lognormal(np.log(median_mbps), 0.4))


def survey_band(simulation, band):
    record = simulation.run_multicast(band, initiator_band="mid", mode="flood")
    responses = [
        synthetic_bandwidth(simulation, node) for node in record.deliveries
    ]
    return record, responses


def main() -> None:
    simulation = AvmemSimulation(SimulationSettings(hosts=220, epochs=96, seed=31))
    simulation.setup(warmup=24600.0, settle=2400.0)

    print("bandwidth survey by availability band (range-multicast per band)")
    print(f"{'band':<14} {'reached':>8} {'mean Mbps':>10} {'spam':>6}")
    means = []
    for band in BANDS:
        record, responses = survey_band(simulation, band)
        mean_bw = float(np.mean(responses)) if responses else float("nan")
        means.append(mean_bw)
        print(
            f"{str(band):<14} {len(responses):>8} {mean_bw:>10.1f} "
            f"{len(record.spam):>6}"
        )
    if all(m == m for m in means):
        print(
            "correlation recovered: higher-availability bands report "
            f"higher bandwidth ({means[0]:.1f} -> {means[-1]:.1f} Mbps) — "
            "exactly the cross-band fingerprint the paper motivates"
        )


if __name__ == "__main__":
    main()
