"""Availability-dependent publish-subscribe (use case I, data operations).

"A publish-subscribe or multicast application where packets are sent out
to only nodes above a certain availability … would incentivize hosts to
have higher availability, in order to obtain good reliability"
(Section 1).  This example publishes a stream of updates to subscribers
above an availability threshold, comparing the flooding and gossip
dissemination modes on reliability, latency, and message cost — the
Figs 11-13 tradeoff, seen from an application.

Run:  python examples/availability_multicast.py
"""

import numpy as np

from repro import AvmemSimulation, SimulationSettings

THRESHOLD = 0.75
PUBLICATIONS = 12


def publish(simulation, mode):
    records = simulation.run_multicast_batch(
        PUBLICATIONS, THRESHOLD, "high", mode=mode, spacing=8.0, settle=20.0
    )
    reliabilities = [r.reliability() for r in records if r.reliability() == r.reliability()]
    latencies = [
        1000 * r.worst_latency() for r in records if r.worst_latency() is not None
    ]
    messages = [r.data_messages for r in records]
    return {
        "reliability": float(np.mean(reliabilities)) if reliabilities else float("nan"),
        "worst_latency_ms": float(np.mean(latencies)) if latencies else float("nan"),
        "messages_per_publish": float(np.mean(messages)),
    }


def main() -> None:
    simulation = AvmemSimulation(SimulationSettings(hosts=220, epochs=96, seed=23))
    simulation.setup(warmup=24600.0, settle=2400.0)
    eligible = sum(
        1
        for node in simulation.online_ids()
        if simulation.true_availability(node) > THRESHOLD
    )
    print(
        f"publishing to subscribers with availability > {THRESHOLD} "
        f"({eligible} currently online)"
    )

    flood = publish(simulation, "flood")
    gossip = publish(simulation, "gossip")

    print(f"{'mode':<8} {'reliability':>12} {'worst-lat (ms)':>15} {'msgs/publish':>13}")
    for mode, stats in (("flood", flood), ("gossip", gossip)):
        print(
            f"{mode:<8} {stats['reliability']:>12.2f} "
            f"{stats['worst_latency_ms']:>15.0f} {stats['messages_per_publish']:>13.0f}"
        )
    print(
        "flooding buys reliability with duplicate traffic; gossip trades "
        "a little reliability and seconds of latency for fewer messages — "
        "the paper's Figs 11-13 tradeoff"
    )


if __name__ == "__main__":
    main()
