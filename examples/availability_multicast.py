"""Availability-dependent publish-subscribe (use case I, data operations).

"A publish-subscribe or multicast application where packets are sent out
to only nodes above a certain availability … would incentivize hosts to
have higher availability, in order to obtain good reliability"
(Section 1).  This example publishes a stream of updates to subscribers
above an availability threshold, comparing the flooding and gossip
dissemination modes on reliability, latency, and message cost — the
Figs 11-13 tradeoff, seen from an application.

Run:  python examples/availability_multicast.py
"""

import numpy as np

from repro import AvmemSimulation, SimulationSettings
from repro.ops import OperationItem, OperationPlan, OperationTiming, TargetSpec

THRESHOLD = 0.75
PUBLICATIONS = 12


def publish(simulation, mode):
    plan = OperationPlan.single(
        OperationItem(
            kind="multicast",
            target=TargetSpec.threshold(THRESHOLD),
            count=PUBLICATIONS,
            band="high",
            mode=mode,
            timing=OperationTiming(mode="interval", spacing=8.0),
        ),
        settle=20.0,
        name=f"publish-{mode}",
    )
    execution = simulation.ops.execute(plan)
    log = execution.log
    reliabilities = log.reliability_values()
    reliabilities = reliabilities[np.isfinite(reliabilities)]
    latencies = 1000.0 * log.worst_latencies()
    # Dissemination cost only (the flood-vs-gossip comparison): the
    # log's transmissions column also counts the stage-1 anycast, so
    # read stage-2 message counts from the per-operation records.
    messages = [record.data_messages for record in execution.launched]
    return {
        "reliability": float(reliabilities.mean()) if reliabilities.size else float("nan"),
        "worst_latency_ms": float(latencies.mean()) if latencies.size else float("nan"),
        "messages_per_publish": float(np.mean(messages)) if messages else float("nan"),
    }


def main() -> None:
    simulation = AvmemSimulation(SimulationSettings(hosts=220, epochs=96, seed=23))
    simulation.setup(warmup=24600.0, settle=2400.0)
    eligible = sum(
        1
        for node in simulation.online_ids()
        if simulation.true_availability(node) > THRESHOLD
    )
    print(
        f"publishing to subscribers with availability > {THRESHOLD} "
        f"({eligible} currently online)"
    )

    flood = publish(simulation, "flood")
    gossip = publish(simulation, "gossip")

    print(f"{'mode':<8} {'reliability':>12} {'worst-lat (ms)':>15} {'msgs/publish':>13}")
    for mode, stats in (("flood", flood), ("gossip", gossip)):
        print(
            f"{mode:<8} {stats['reliability']:>12.2f} "
            f"{stats['worst_latency_ms']:>15.0f} {stats['messages_per_publish']:>13.0f}"
        )
    print(
        "flooding buys reliability with duplicate traffic; gossip trades "
        "a little reliability and seconds of latency for fewer messages — "
        "the paper's Figs 11-13 tradeoff"
    )


if __name__ == "__main__":
    main()
