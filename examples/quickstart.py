"""Quickstart: build an AVMEM system, inspect the overlay, run operations.

Run:  python examples/quickstart.py

This wires the whole stack on a small synthetic Overnet-style trace
(220 hosts), warms it up, and then exercises the public API: an overlay
snapshot, then a mixed operation plan (a range-anycast plus a
threshold-multicast) executed through ``sim.ops``.
"""

from repro import AvmemSimulation, SimulationSettings
from repro.experiments.snapshot import take_snapshot
from repro.ops import OperationItem, OperationPlan, TargetSpec


def main() -> None:
    # 1. Configure and warm up a simulated AVMEM deployment.
    settings = SimulationSettings(hosts=220, epochs=96, seed=7)
    simulation = AvmemSimulation(settings)
    simulation.setup(warmup=24600.0, settle=2400.0)  # ~6.8 h of trace time
    online = simulation.online_ids()
    print(f"online nodes after warm-up: {len(online)} / {settings.hosts}")

    # 2. Inspect the overlay the consistent predicate spans.
    snapshot = take_snapshot(simulation)
    some_node = snapshot.nodes[0]
    node = simulation.nodes[some_node]
    print(
        f"node {some_node}: availability "
        f"{snapshot.availability[some_node]:.2f}, "
        f"HS={node.lists.horizontal_count} VS={node.lists.vertical_count}"
    )

    # 3. Declare a mixed plan: a range-anycast (find *some* node with
    #    availability in [0.8, 0.95] from a mid-availability initiator)
    #    and a threshold-multicast (flood every node above 0.7).
    plan = OperationPlan(
        items=(
            OperationItem(
                kind="anycast", target=TargetSpec.range(0.80, 0.95),
                band="mid", policy="retry-greedy",
            ),
            OperationItem(
                kind="multicast", target=TargetSpec.threshold(0.7),
                band="high", mode="flood",
            ),
        ),
        name="quickstart",
    )
    execution = simulation.ops.execute(plan)
    record, multicast = execution.records
    if record is None or multicast is None:
        raise SystemExit("no online initiator in the requested band; try another seed")

    if record.delivered:
        print(
            f"anycast delivered to {record.delivery_node} in {record.hops} hop(s), "
            f"{1000 * record.latency:.0f} ms"
        )
    else:
        print(f"anycast failed: {record.status}")

    print(
        f"multicast reached {len(multicast.deliveries)} of "
        f"{len(multicast.eligible)} eligible nodes "
        f"(reliability {multicast.reliability():.2f}, "
        f"spam ratio {multicast.spam_ratio():.3f}, "
        f"worst latency {1000 * (multicast.worst_latency() or 0):.0f} ms)"
    )

    # 5. The columnar log view of the same two operations.
    log = execution.log
    print(
        f"log: {len(log)} rows, success rate {log.success_rate():.2f}, "
        f"{int(log.transmissions.sum())} transmissions"
    )


if __name__ == "__main__":
    main()
