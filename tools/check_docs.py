#!/usr/bin/env python
"""Documentation checks: runnable code blocks + link integrity.

Keeps README.md and docs/ honest in CI:

1. **Executable snippets** — every fenced ```python`` block in the
   checked markdown files is executed verbatim (fresh namespace per
   block, repo root as cwd, ``src/`` on ``sys.path``).  The README
   quickstart therefore runs on every CI build; snippets that are not
   meant to execute should use a different language tag (``console``,
   ``text``, or a bare fence).
2. **Link check** — every relative markdown link must point at an
   existing file, and every ``#fragment`` (same-file or cross-file) must
   match a heading anchor in the target, using GitHub's slug rules.

Run from the repository root (CI does)::

    python tools/check_docs.py
"""

from __future__ import annotations

import io
import os
import re
import sys
import time
from contextlib import redirect_stdout
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKED_FILES = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]

FENCE_RE = re.compile(r"^```(\w*)\s*$")
LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^()\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*$")


def iter_code_blocks(text: str) -> Iterator[Tuple[str, int, str]]:
    """Yield ``(language, start_line, code)`` for each fenced block."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        match = FENCE_RE.match(lines[i])
        if match:
            language = match.group(1).lower()
            start = i + 1
            body: List[str] = []
            i += 1
            while i < len(lines) and not lines[i].startswith("```"):
                body.append(lines[i])
                i += 1
            yield language, start, "\n".join(body)
        i += 1


def github_slug(heading: str) -> str:
    """GitHub's markdown heading → anchor slug transformation."""
    slug = re.sub(r"[`*_]", "", heading.strip().lower())
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    return slug.replace(" ", "-")


def heading_anchors(path: Path) -> set:
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if match:
            anchors.add(github_slug(match.group(2)))
    return anchors


def check_links(path: Path) -> List[str]:
    errors: List[str] = []
    text = path.read_text(encoding="utf-8")
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        link, _, fragment = target.partition("#")
        resolved = (path.parent / link).resolve() if link else path
        if not resolved.exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in heading_anchors(resolved):
                errors.append(
                    f"{path.relative_to(REPO_ROOT)}: missing anchor -> {target}"
                )
    return errors


def run_code_blocks(path: Path) -> List[str]:
    errors: List[str] = []
    for language, line, code in iter_code_blocks(path.read_text(encoding="utf-8")):
        if language != "python":
            continue
        label = f"{path.relative_to(REPO_ROOT)}:{line}"
        started = time.perf_counter()
        captured = io.StringIO()
        try:
            with redirect_stdout(captured):
                exec(compile(code, str(label), "exec"), {"__name__": "__docs__"})
        except Exception as exc:  # noqa: BLE001 - report, don't crash the sweep
            errors.append(f"{label}: python block raised {type(exc).__name__}: {exc}")
        else:
            print(f"  ran python block at {label} ({time.perf_counter() - started:.1f}s)")
    return errors


def main() -> int:
    os.chdir(REPO_ROOT)
    sys.path.insert(0, str(REPO_ROOT / "src"))
    failures: List[str] = []
    for path in CHECKED_FILES:
        print(f"checking {path.relative_to(REPO_ROOT)}")
        failures.extend(check_links(path))
        failures.extend(run_code_blocks(path))
    if failures:
        print("\nFAILURES:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"\nOK: {len(CHECKED_FILES)} files, all links resolve, all python blocks ran")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
