#!/usr/bin/env python
"""CI smoke for the simulation service: kill-and-restart durability.

Starts a real ``repro serve`` subprocess, drives it over HTTP (create a
session, run an operation plan, advance the clock, checkpoint), kills
the process with SIGKILL — no graceful shutdown hook gets to run — then
restarts the server on the same state directory and verifies:

1. the session is listed as ``checkpointed`` after restart;
2. its log aggregations match the pre-kill values exactly (the restore
   replays the journal against a fresh seeded simulation);
3. a follow-up plan on the restored session produces the same summary
   as an uninterrupted in-process twin executing the identical command
   sequence — the bit-identical-continuation property.

Exit status 0 on success; any mismatch or server failure is fatal.

Usage::

    PYTHONPATH=src python tools/service_smoke.py [--keep-state]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.service.client import ServiceClient  # noqa: E402
from repro.service.http import scrub_json  # noqa: E402

SPEC = {
    "settings": {"hosts": 100, "epochs": 12, "seed": 7},
    "warmup": 4500.0,
    "settle": 700.0,
}

PLAN = {
    "items": [
        {
            "kind": "anycast",
            "target": {"kind": "range", "lo": 0.5, "hi": 1.0},
            "count": 5,
            "band": "mid",
            "timing": {"mode": "interval", "spacing": 2.0},
        },
        {
            "kind": "multicast",
            "target": {"kind": "range", "lo": 0.5, "hi": 1.0},
            "count": 1,
            "band": "high",
            "timing": {"mode": "interval", "spacing": 5.0, "phase": 12.0},
        },
    ],
    "settle": 20.0,
    "name": "smoke",
}

FOLLOW = dict(PLAN, name="smoke-after-restart")


def free_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn_server(port: int, state_dir: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.abspath("src"), env.get("PYTHONPATH")])
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", str(port),
            "--state-dir", state_dir,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def wait_healthy(url: str, process: subprocess.Popen, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise SystemExit(f"server exited early:\n{process.stdout.read()}")
        try:
            with urllib.request.urlopen(f"{url}/healthz", timeout=1.0):
                return
        except OSError:
            time.sleep(0.1)
    raise SystemExit("server did not become healthy in time")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument(
        "--keep-state", action="store_true",
        help="leave the state directory on disk for inspection",
    )
    args = parser.parse_args()

    state_dir = tempfile.mkdtemp(prefix="avmem-service-smoke-")
    port = free_port()
    url = f"http://127.0.0.1:{port}"
    client = ServiceClient(url)

    print(f"[1/4] starting server on {url} (state dir {state_dir})")
    first = spawn_server(port, state_dir)
    try:
        wait_healthy(url, first)
        info = client.create_session(id="smoke", **SPEC)
        print(f"      session created: {info['hosts']} hosts, t={info['now']:.0f}s")
        result = client.run_plan("smoke", PLAN)
        assert result["rows"] == 6, result
        client.advance("smoke", 90.0)
        client.checkpoint("smoke")
        before = client.log("smoke", by=["kind"])
        print(
            f"      plan executed: {before['rows']} operations, success "
            f"{before['summary']['success_rate']:.2f}; checkpointed"
        )
    finally:
        print("[2/4] SIGKILL server (no graceful shutdown)")
        first.send_signal(signal.SIGKILL)
        first.wait(10.0)

    print("[3/4] restarting on the same state directory")
    second = spawn_server(port, state_dir)
    try:
        wait_healthy(url, second)
        rows = client.list_sessions()
        assert [(r["id"], r["status"]) for r in rows] == [("smoke", "checkpointed")], rows
        after = client.log("smoke", by=["kind"])
        assert after == before, (
            "restored aggregations differ from pre-kill values:\n"
            f"before={json.dumps(before, indent=2)}\n"
            f"after={json.dumps(after, indent=2)}"
        )
        print("      restore verified: aggregations identical to pre-kill")
        restored_result = client.run_plan("smoke", FOLLOW)
        final = client.log("smoke", by=["kind"])
    finally:
        second.send_signal(signal.SIGTERM)
        try:
            second.wait(15.0)
        except subprocess.TimeoutExpired:
            second.kill()
            second.wait(10.0)

    print("[4/4] comparing follow-up plan against an uninterrupted twin")
    from repro.ops.plan import OperationPlan
    from repro.service.session import SimulationSession
    from repro.service.spec import SessionSpec

    twin = SimulationSession.build("twin", SessionSpec.from_request(dict(SPEC)))
    twin.run_plan(OperationPlan.from_dict(PLAN))
    twin.advance(90.0)
    twin_log = twin.run_plan(OperationPlan.from_dict(FOLLOW))
    assert restored_result["rows"] == len(twin_log), (
        restored_result["rows"], len(twin_log),
    )
    twin_agg = json.loads(json.dumps(scrub_json({
        "plans": len(twin.logs),
        "rows": len(twin.combined_log()),
        "summary": twin.combined_log().summary(),
        "groups": twin.combined_log().aggregate(by=("kind",)),
    })))
    assert final == twin_agg, (
        "post-restart continuation diverged from the uninterrupted twin:\n"
        f"service={json.dumps(final, indent=2)}\n"
        f"twin={json.dumps(twin_agg, indent=2)}"
    )
    print("      continuation verified: identical to uninterrupted run")

    if args.keep_state:
        print(f"state kept at {state_dir}")
    else:
        shutil.rmtree(state_dir, ignore_errors=True)
    print("service smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
