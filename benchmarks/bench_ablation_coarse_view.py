"""Ablation: coarse-view size and the Section 3.1 v = √N optimality.

The analysis: per-node cost scales with the view size ``v`` while the
expected time for a given peer to surface in the view scales with
``N/v`` periods — so ``f(v) = v + N/v`` is minimized at ``v = √N``.
This bench measures actual discovery progress (fraction of a node's
predicate neighborhood found after a fixed number of discovery rounds)
for several view sizes and reports the combined cost alongside.
"""

import numpy as np

from repro.churn.trace import ChurnTrace, NodeSchedule
from repro.core.availability import AvailabilityPdf
from repro.core.config import AvmemConfig
from repro.core.ids import make_node_ids
from repro.core.node import AvmemNode
from repro.core.predicates import NodeDescriptor, paper_predicate
from repro.experiments.report import format_table
from repro.monitor.cache import CachedAvailabilityView
from repro.monitor.coarse_view import GlobalSampleView
from repro.monitor.oracle import OracleAvailability
from repro.sim.engine import Simulator
from repro.sim.network import Network

POPULATION = 400
ROUNDS = 25
VIEW_SIZES = (5, 10, 20, 40, 80)


def _discovery_progress(view_size: int, seed: int = 0) -> float:
    """Fraction of its true predicate neighborhood one node discovers in
    ROUNDS discovery rounds with the given view size."""
    rng = np.random.default_rng(seed)
    ids = make_node_ids(POPULATION)
    schedules = {node: NodeSchedule([(0.0, 1e9)]) for node in ids}
    trace = ChurnTrace(schedules, horizon=1e9)
    sim = Simulator()
    network = Network(sim, presence=trace, rng=rng)
    avs = rng.uniform(0.05, 0.95, POPULATION)
    pdf = AvailabilityPdf.from_samples(avs, online_weighted=False)
    predicate = paper_predicate(pdf)

    class Fixed:
        def query(self, node):
            return float(avs[ids.index(node)])

    service = Fixed()
    coarse = GlobalSampleView(
        sim, ids, view_size, rng=rng, presence=trace, period=60.0, stale_fraction=0.0
    )
    node = AvmemNode(
        ids[0], sim, network, predicate, AvmemConfig(),
        CachedAvailabilityView(service, sim), coarse, rng=rng,
    )
    me = NodeDescriptor(ids[0], service.query(ids[0]))
    truth = sum(
        1
        for other in ids[1:]
        if predicate.evaluate(me, NodeDescriptor(other, service.query(other)))
    )
    if truth == 0:
        return float("nan")
    for _ in range(ROUNDS):
        node.discovery_step()
        sim.run_until(sim.now + 60.0)
    return node.lists.total_count / truth


def run_sweep():
    rows = []
    for view_size in VIEW_SIZES:
        progress = np.mean([_discovery_progress(view_size, seed) for seed in (0, 1)])
        combined_cost = view_size + POPULATION / view_size
        rows.append([view_size, round(float(progress), 3), round(combined_cost, 1)])
    return rows


def test_ablation_coarse_view(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(format_table(["view_size", "discovered_fraction", "v + N/v"], rows))
    progresses = [row[1] for row in rows]
    assert progresses[-1] > progresses[0]  # bigger views discover faster
    # The analytic cost is minimized at v = sqrt(N) = 20 for N = 400.
    costs = [row[2] for row in rows]
    assert min(costs) == costs[VIEW_SIZES.index(20)]
