"""Service-layer throughput: HTTP request latency and cross-session
concurrency scaling.

Starts an in-process :class:`~repro.service.http.make_server` (the same
``ThreadingHTTPServer`` behind ``repro serve``) and measures:

* **Request overhead** — wall time per lightweight query (``healthz``,
  session detail, ``log`` aggregation) against one live session: the
  HTTP+JSON+lock tax on top of the in-memory aggregation itself.
* **Command throughput** — sequential ``advance`` commands on one
  session (journal append + event-loop execution per request).
* **Concurrency scaling** — the same per-session plan workload driven
  over 1, 2, and 4 sessions concurrently (one client thread per
  session).  Per-session locks serialize commands *within* a session
  only, so N sessions should scale with available cores rather than
  queueing behind a global lock; the table reports aggregate
  plans/second and the scaling efficiency vs the single-session run.
* **Checkpoint/restore cost** — time to persist a session with a
  populated journal, and to restore it from disk (journal replay).

Run as a script::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py --quick

Results are appended to ``benchmarks/results/BENCH_service.json`` via
:mod:`bench_util`, so ``repro telemetry trend`` tracks the trajectory.
"""

from __future__ import annotations

import argparse
import shutil
import tempfile
import threading
import time
from typing import Dict, List

from repro.service.client import ServiceClient
from repro.service.http import make_server
from repro.service.orchestrator import SessionOrchestrator
from repro.service.spec import SessionSpec
from repro.service.store import SessionStore
from repro.telemetry import TELEMETRY

from bench_util import emit_bench_json

SPEC = {
    "settings": {"hosts": 120, "epochs": 16, "seed": 11},
    "warmup": 5000.0,
    "settle": 800.0,
}

PLAN = {
    "items": [
        {
            "kind": "anycast",
            "target": {"kind": "range", "lo": 0.5, "hi": 1.0},
            "count": 6,
            "band": "mid",
            "timing": {"mode": "interval", "spacing": 2.0},
        },
    ],
    "settle": 15.0,
    "name": "bench",
}


def _timed(fn, repeats: int) -> float:
    """Mean seconds per call over ``repeats`` calls."""
    started = time.perf_counter()
    for __ in range(repeats):
        fn()
    return (time.perf_counter() - started) / repeats


def bench_requests(client: ServiceClient, session_id: str, repeats: int) -> Dict[str, float]:
    return {
        "healthz_ms": 1000.0 * _timed(client.healthz, repeats),
        "detail_ms": 1000.0 * _timed(lambda: client.session(session_id), repeats),
        "log_ms": 1000.0 * _timed(
            lambda: client.log(session_id, by=["kind", "band"]), repeats
        ),
    }


def bench_advance(client: ServiceClient, session_id: str, repeats: int) -> Dict[str, float]:
    seconds = 1000.0 * _timed(lambda: client.advance(session_id, 5.0), repeats)
    return {"advance_ms": seconds}


def bench_concurrency(
    client: ServiceClient, fleet_sizes: List[int], plans_per_session: int
) -> List[Dict[str, float]]:
    """Drive ``plans_per_session`` plans on N sessions concurrently."""
    rows: List[Dict[str, float]] = []
    base_rate = None
    for fleet in fleet_sizes:
        ids = [f"fleet{fleet}-{i}" for i in range(fleet)]
        for session_id in ids:
            client.create_session(id=session_id, **SPEC)
        errors: List[BaseException] = []

        def drive(session_id: str) -> None:
            try:
                local = ServiceClient(client.base_url)
                for __ in range(plans_per_session):
                    local.run_plan(session_id, PLAN)
            except BaseException as exc:  # pragma: no cover - report below
                errors.append(exc)

        threads = [
            threading.Thread(target=drive, args=(session_id,))
            for session_id in ids
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        if errors:
            raise RuntimeError(f"concurrent drive failed: {errors[0]!r}")
        rate = fleet * plans_per_session / elapsed
        if base_rate is None:
            base_rate = rate
        rows.append({
            "sessions": fleet,
            "plans": fleet * plans_per_session,
            "seconds": elapsed,
            "plans_per_second": rate,
            "scaling_vs_1": rate / base_rate,
        })
        for session_id in ids:
            client.delete_session(session_id)
    return rows


def bench_durability(state_dir: str, journal_commands: int) -> Dict[str, float]:
    """Checkpoint + restore cost with a ``journal_commands``-entry journal."""
    from repro.ops.plan import OperationPlan
    from repro.service.session import SimulationSession

    spec = SessionSpec.from_request(dict(SPEC))
    store = SessionStore(state_dir)
    session = SimulationSession.build("durab", spec)
    plan = OperationPlan.from_dict(PLAN)
    for i in range(journal_commands):
        if i % 2 == 0:
            session.run_plan(plan)
        else:
            session.advance(10.0)
    started = time.perf_counter()
    store.checkpoint(session)
    checkpoint_seconds = time.perf_counter() - started
    started = time.perf_counter()
    loaded_spec, journal, __ = store.load("durab")
    restored = SimulationSession.build("durab", loaded_spec, journal=journal)
    restore_seconds = time.perf_counter() - started
    assert len(restored.journal) == journal_commands
    return {
        "journal_commands": journal_commands,
        "checkpoint_seconds": checkpoint_seconds,
        "restore_seconds": restore_seconds,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--out", default=None, help="BENCH json path override")
    args = parser.parse_args()

    repeats = 20 if args.quick else 100
    plans_per_session = 2 if args.quick else 5
    fleet_sizes = [1, 2] if args.quick else [1, 2, 4]
    journal_commands = 4 if args.quick else 12

    state_dir = tempfile.mkdtemp(prefix="avmem-bench-service-")
    store = SessionStore(state_dir)
    orchestrator = SessionOrchestrator(store)
    server = make_server(orchestrator, port=0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://{host}:{port}")

    # Sessions record into their own private recorders (that's the
    # isolation property), so the process-wide recorder sees nothing
    # from the engine; benchmark-stage spans give the BENCH record a
    # phase table `repro telemetry trend` can track.
    try:
        with TELEMETRY.span("service.create"):
            started = time.perf_counter()
            client.create_session(id="warm", **SPEC)
            create_seconds = time.perf_counter() - started
            client.run_plan("warm", PLAN)

        with TELEMETRY.span("service.requests"):
            requests = bench_requests(client, "warm", repeats)
            advance = bench_advance(client, "warm", max(5, repeats // 4))
        client.delete_session("warm")
        with TELEMETRY.span("service.concurrency"):
            concurrency = bench_concurrency(client, fleet_sizes, plans_per_session)
        with TELEMETRY.span("service.durability"):
            durability = bench_durability(state_dir, journal_commands)
    finally:
        server.shutdown()
        server.server_close()
        shutil.rmtree(state_dir, ignore_errors=True)

    print(f"session create (build + warmup): {create_seconds:.3f}s")
    print("request overhead (mean):")
    for name, value in requests.items():
        print(f"  {name:<12} {value:8.3f} ms")
    print(f"  {'advance_ms':<12} {advance['advance_ms']:8.3f} ms")
    print("concurrency scaling:")
    print(f"  {'sessions':>8}  {'plans':>6}  {'seconds':>8}  {'plans/s':>8}  scaling")
    for row in concurrency:
        print(
            f"  {row['sessions']:>8}  {row['plans']:>6}  {row['seconds']:>8.3f}"
            f"  {row['plans_per_second']:>8.2f}  {row['scaling_vs_1']:.2f}x"
        )
    print(
        f"durability: checkpoint {durability['checkpoint_seconds']:.3f}s, "
        f"restore (replay {durability['journal_commands']} commands) "
        f"{durability['restore_seconds']:.3f}s"
    )

    emit_bench_json(
        "service",
        {
            "quick": args.quick,
            "create_seconds": create_seconds,
            "requests_ms": {**requests, **advance},
            "concurrency": concurrency,
            "durability": durability,
        },
        path=args.out,
    )


if __name__ == "__main__":
    main()
