"""Benchmark: Range-anycast delivery under harsh targets (Fig 8).

Paper: success falls with the target range; HS+VS is the strongest variant.
"""

from repro.experiments.figures import fig08

from conftest import run_figure_benchmark


def test_fig08(benchmark, bench_scale, bench_seed):
    result = run_figure_benchmark(
        benchmark, fig08.run, bench_scale, bench_seed
    )
    assert result.rows
