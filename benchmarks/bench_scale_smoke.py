"""Large-N memory-bounded smoke: candidate overlay build + memmap
timeline, with a peak-RSS ceiling assertion.

This is the CI guard for the struct-of-arrays population core: it proves
that a large population actually runs inside a bounded memory budget,
not just that the code paths exist.  One invocation:

1. builds a synthetic :class:`~repro.core.population.Population` (SHA-1
   digests from endpoint strings, no NodeId objects) and the affine64
   paper predicate;
2. cross-checks candidate vs exhaustive construction CSR-identical at a
   small N (every run, before the big build);
3. runs the candidate-generated O(N·k) overlay build at the target N
   with the edge columns spilled to ``np.memmap`` storage;
4. builds a synthetic churn timeline for the same N, spills it via
   :meth:`~repro.churn.timeline.ChurnTimeline.spill_to`, re-opens it
   with :meth:`~repro.churn.timeline.ChurnTimeline.open`, and checks a
   batch availability query against the in-RAM answers;
5. asserts the process peak RSS stayed under the ceiling.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_scale_smoke.py --quick   # N=100k (CI)
    PYTHONPATH=src python benchmarks/bench_scale_smoke.py           # N=1M

Results land in ``benchmarks/results/BENCH_scale_smoke.json``.
"""

from __future__ import annotations

import argparse
import tempfile
import time

import numpy as np

from repro.churn.timeline import ChurnTimeline
from repro.core.availability import AvailabilityPdf
from repro.core.hashing import Affine64PairHash
from repro.core.population import Population
from repro.core.predicates import paper_predicate
from repro.overlays.graphs import OverlayGraph

from bench_util import emit_bench_json, peak_rss_mb

PARITY_N = 3_000
QUICK_N = 100_000
FULL_N = 1_000_000
#: RSS ceilings (MiB).  The quick budget is sized for CI runners; the
#: full 1M budget bounds the one-time in-RAM edge accumulation before
#: the columns spill to memmaps.
QUICK_RSS_CEILING_MB = 1_536.0
FULL_RSS_CEILING_MB = 8_192.0


def make_population(n: int, seed: int):
    rng = np.random.default_rng(seed)
    avs = np.clip(rng.beta(4.0, 1.5, n), 0.01, 0.99)
    population = Population.synthetic(avs)
    pdf = AvailabilityPdf.from_samples(avs, online_weighted=False)
    return population, paper_predicate(pdf, hash_fn=Affine64PairHash())


def check_small_parity(seed: int) -> int:
    """Candidate vs exhaustive CSR identity at PARITY_N (every run)."""
    population, predicate = make_population(PARITY_N, seed)
    cand = OverlayGraph.build_rows(population, predicate, method="candidates")
    exh = OverlayGraph.build_rows(population, predicate, method="exhaustive")
    assert (cand.src_indices == exh.src_indices).all()
    assert (cand.dst_indices == exh.dst_indices).all()
    assert (cand.horizontal == exh.horizontal).all()
    return int(cand.number_of_edges)


def synthetic_timeline(n: int, seed: int, horizon: float = 604_800.0) -> ChurnTimeline:
    """~3 sessions per node, fully vectorized construction."""
    rng = np.random.default_rng(seed + 1)
    sessions = 3
    edges = np.sort(rng.uniform(0.0, horizon, (n, 2 * sessions)), axis=1)
    node_index = np.repeat(np.arange(n, dtype=np.int64), sessions)
    starts = edges[:, 0::2].ravel()
    ends = edges[:, 1::2].ravel()
    return ChurnTimeline(n, horizon, node_index, starts, ends)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI mode: N={QUICK_N} and the tighter RSS ceiling",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json-out", default=None,
        help="result path (default: benchmarks/results/BENCH_scale_smoke.json)",
    )
    args = parser.parse_args(argv)
    n = QUICK_N if args.quick else FULL_N
    ceiling = QUICK_RSS_CEILING_MB if args.quick else FULL_RSS_CEILING_MB

    parity_edges = check_small_parity(args.seed)
    print(f"parity OK at N={PARITY_N}: {parity_edges} identical CSR edges")

    with tempfile.TemporaryDirectory() as storage:
        start = time.perf_counter()
        population, predicate = make_population(n, args.seed)
        build_start = time.perf_counter()
        overlay = OverlayGraph.build_rows(
            population, predicate, method="candidates", storage=storage
        )
        build_s = time.perf_counter() - build_start
        edges = int(overlay.number_of_edges)
        assert isinstance(overlay.src_indices, np.memmap), "edge columns not spilled"
        print(f"candidate build: N={n} edges={edges} in {build_s:.2f}s (memmap-backed)")

        timeline_start = time.perf_counter()
        timeline = synthetic_timeline(n, args.seed)
        probe_nodes = np.random.default_rng(args.seed + 2).integers(
            0, n, 10_000, dtype=np.int64
        )
        probe_time = timeline.horizon * 0.75
        expected = timeline.availability_array(probe_nodes, probe_time)
        timeline.spill_to(storage)
        reopened = ChurnTimeline.open(storage)
        got = reopened.availability_array(probe_nodes, probe_time)
        assert (got == expected).all(), "memmap timeline query mismatch"
        timeline_s = time.perf_counter() - timeline_start
        total_s = time.perf_counter() - start
        print(
            f"memmap timeline: {timeline.session_count} sessions, "
            f"10k-node availability query verified in {timeline_s:.2f}s"
        )

    rss = peak_rss_mb()
    if rss is not None:
        assert rss <= ceiling, (
            f"peak RSS {rss:.0f} MiB exceeded the {ceiling:.0f} MiB ceiling"
        )
        print(f"peak RSS {rss:.0f} MiB (ceiling {ceiling:.0f} MiB)")

    emit_bench_json(
        "scale_smoke",
        {
            "seed": args.seed,
            "quick": bool(args.quick),
            "n": n,
            "edges": edges,
            "build_s": build_s,
            "timeline_s": timeline_s,
            "total_s": total_s,
            "rss_ceiling_mb": ceiling,
            "parity_n": PARITY_N,
            "parity_edges": parity_edges,
        },
        path=args.json_out,
    )


if __name__ == "__main__":
    main()
