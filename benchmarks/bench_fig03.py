"""Benchmark: Horizontal sliver scaling (Fig 3).

Paper: HS size grows sublinearly with the number of candidates within +/- epsilon.
"""

from repro.experiments.figures import fig03

from conftest import run_figure_benchmark


def test_fig03(benchmark, bench_scale, bench_seed):
    result = run_figure_benchmark(
        benchmark, fig03.run, bench_scale, bench_seed
    )
    assert result.rows
