"""Benchmark: Retried-greedy anycast sweep, HIGH -> [0.15, 0.25] (Fig 9).

Paper: retry=8 plateau at ~60% delivery, ~739 ms average latency.
"""

from repro.experiments.figures import fig09

from conftest import run_figure_benchmark


def test_fig09(benchmark, bench_scale, bench_seed):
    result = run_figure_benchmark(
        benchmark, fig09.run, bench_scale, bench_seed
    )
    assert result.rows
