"""Overlay + membership scaling sweep: scalar seed paths vs the array
backends (:class:`~repro.overlays.graphs.OverlayGraph` construction and
:class:`~repro.core.membership.MembershipTable` bootstrap/refresh).

Sweeps N ∈ {1k, 5k, 20k} (override with ``--sizes``) over the same
descriptor population and reports two families of timings:

**Overlay construction** — three strategies:

* ``legacy``  — the seed implementation: one ``evaluate_many`` call per
  source row, per-edge inserts into a ``networkx.DiGraph``;
* ``array``   — ``OverlayGraph.build`` (block-tiled ``evaluate_all``);
* ``adapter`` — ``OverlayGraph.build(...).to_networkx()``, what the
  compatibility wrapper :func:`build_overlay_graph` now does.

**Candidate-generated construction** — ``OverlayGraph.build_rows`` over a
struct-of-arrays :class:`~repro.core.population.Population` with the
affine64 interval-searchable hash, candidate (O(N·k)) vs exhaustive
(N×N) method, swept to N = 100k by default (candidate-only above the
exhaustive cutoff; pass ``--candidate-sizes 1000000`` for the 1M build)
with per-size peak-RSS reporting and exact CSR parity asserted at
N ≤ 5k.

**Membership tables** — the two hot paths ``bootstrap="direct"`` and the
refresh sub-protocol exercise, each timed scalar vs batched:

* ``install`` — populate every node's membership table from its
  OverlayGraph CSR row: per-edge ``upsert`` loop vs one columnar
  ``upsert_many`` per node;
* ``refresh`` — one full refresh round (re-evaluate the predicate for
  every neighbor against perturbed availabilities, evict non-members,
  re-cache the rest): per-entry ``evaluate_kind`` + ``upsert``/``remove``
  vs ``evaluate_many`` + one masked ``refresh_round`` pass per node.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_overlay_scale.py
    PYTHONPATH=src python benchmarks/bench_overlay_scale.py --sizes 1000 5000

Acceptance bars: ≥ 5× array-over-legacy construction speedup and ≥ 3×
batched-over-scalar refresh speedup, both at N = 20k.  Parity checks
(edge/kind parity for construction, entry-for-entry table parity for
install + refresh) run at the smallest size on every invocation.
Results are also written to
``benchmarks/results/BENCH_overlay_scale.json`` (:mod:`bench_util`).
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List, Sequence

import networkx as nx
import numpy as np

from repro.core.availability import AvailabilityPdf
from repro.core.hashing import Affine64PairHash
from repro.core.ids import NodeId, make_node_ids
from repro.core.membership import MemberEntry, MembershipLists
from repro.core.population import Population
from repro.core.predicates import AvmemPredicate, NodeDescriptor, SliverKind
from repro.overlays.graphs import OverlayGraph

from bench_util import emit_bench_json, peak_rss_mb

DEFAULT_SIZES = (1_000, 5_000, 20_000)
#: the candidate-generated O(N*k) path scales well past the N x N
#: sweeps; the top end runs candidate-only (exhaustive would be 10^10
#: pair evaluations at 100k).  Push further with --candidate-sizes
#: 1000000 for the memory-bounded 1M-row build.
DEFAULT_CANDIDATE_SIZES = (1_000, 5_000, 20_000, 100_000)
#: largest N where the exhaustive baseline still runs (and, at <= 5k,
#: where the two paths are asserted CSR-identical every invocation)
EXHAUSTIVE_CUTOFF = 20_000
PARITY_CUTOFF = 5_000


def legacy_build(
    descriptors: Sequence[NodeDescriptor],
    predicate: AvmemPredicate,
    cushion: float = 0.0,
) -> nx.DiGraph:
    """The seed ``build_overlay_graph``: vectorized per source row, with
    per-edge Python inserts into networkx."""
    ids: List[NodeId] = [d.node for d in descriptors]
    avs = np.array([d.availability for d in descriptors], dtype=float)
    graph = nx.DiGraph()
    for descriptor in descriptors:
        graph.add_node(descriptor.node, availability=descriptor.availability)
    for source in descriptors:
        member, horizontal = predicate.evaluate_many(source, ids, avs, cushion=cushion)
        for j in np.flatnonzero(member):
            kind = SliverKind.HORIZONTAL if horizontal[j] else SliverKind.VERTICAL
            graph.add_edge(source.node, ids[j], kind=kind)
    return graph


def make_population(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    ids = make_node_ids(n)
    avs = np.clip(rng.beta(4.0, 1.5, n), 0.01, 0.99)
    pdf = AvailabilityPdf.from_samples(avs, online_weighted=False)
    from repro.core.predicates import paper_predicate

    return (
        [NodeDescriptor(node, float(a)) for node, a in zip(ids, avs)],
        paper_predicate(pdf),
    )


def timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def make_row_population(n: int, seed: int = 0):
    """Struct-of-arrays population + affine64 paper predicate.

    The candidate-generation stage needs an interval-searchable pairwise
    hash, so this sweep runs the paper predicate over
    :class:`Affine64PairHash`; the population is synthetic (digests
    derived from endpoint strings without materializing NodeId objects),
    which is what keeps the 100k/1M builds object-free.
    """
    rng = np.random.default_rng(seed)
    avs = np.clip(rng.beta(4.0, 1.5, n), 0.01, 0.99)
    population = Population.synthetic(avs)
    pdf = AvailabilityPdf.from_samples(avs, online_weighted=False)
    from repro.core.predicates import paper_predicate

    return population, paper_predicate(pdf, hash_fn=Affine64PairHash())


# ----------------------------------------------------------------------
# Membership-table paths (bootstrap install + refresh round)
# ----------------------------------------------------------------------
class SeedMembershipLists:
    """The seed dict-of-dataclasses membership implementation, preserved
    verbatim as the benchmark baseline so the install/refresh speedups
    are measured against the code the columnar ``MembershipTable``
    replaced (not against scalar calls on the new backend)."""

    def __init__(self, owner: NodeId):
        self.owner = owner
        self._horizontal: Dict[NodeId, "MemberEntry"] = {}
        self._vertical: Dict[NodeId, "MemberEntry"] = {}

    def upsert(self, node, availability, kind, now):
        existing = self._horizontal.pop(node, None) or self._vertical.pop(node, None)
        if existing is None:
            entry = MemberEntry(
                node=node, availability=availability, kind=kind,
                added_at=now, checked_at=now,
            )
        else:
            entry = existing.refreshed(availability, kind, now)
        table = self._horizontal if kind is SliverKind.HORIZONTAL else self._vertical
        table[node] = entry
        return entry

    def remove(self, node) -> bool:
        return (
            self._horizontal.pop(node, None) is not None
            or self._vertical.pop(node, None) is not None
        )

    def all_entries(self):
        yield from self._horizontal.values()
        yield from self._vertical.values()

    def entries(self) -> List["MemberEntry"]:
        return list(self._horizontal.values()) + list(self._vertical.values())


def scalar_install(overlay: OverlayGraph) -> Dict[NodeId, SeedMembershipLists]:
    """The seed bootstrap sink: one scalar ``upsert`` per edge into the
    dict-backed lists."""
    tables: Dict[NodeId, SeedMembershipLists] = {}
    avs = overlay.availabilities
    ids = overlay.ids
    for i, owner in enumerate(ids):
        table = SeedMembershipLists(owner)
        dsts, horizontal = overlay.row(i)
        for j, is_horizontal in zip(dsts.tolist(), horizontal.tolist()):
            kind = SliverKind.HORIZONTAL if is_horizontal else SliverKind.VERTICAL
            table.upsert(ids[j], float(avs[j]), kind, now=0.0)
        tables[owner] = table
    return tables


def batched_install(overlay: OverlayGraph) -> Dict[NodeId, MembershipLists]:
    """The columnar bootstrap sink: one ``upsert_many`` per CSR row."""
    tables: Dict[NodeId, MembershipLists] = {}
    avs = overlay.availabilities
    id_arr, digests = overlay.id_array, overlay.digest64_array
    for i, owner in enumerate(overlay.ids):
        table = MembershipLists(owner)
        dsts, horizontal = overlay.row(i)
        table.upsert_many(
            id_arr[dsts], avs[dsts], horizontal, now=0.0, digests=digests[dsts]
        )
        tables[owner] = table
    return tables


def perturbed_availabilities(
    overlay: OverlayGraph, seed: int, noise: float = 0.05
) -> np.ndarray:
    """Availabilities one monitoring epoch later (what a refresh re-fetches)."""
    rng = np.random.default_rng(seed + 1)
    return np.clip(
        overlay.availabilities + rng.normal(0.0, noise, overlay.number_of_nodes),
        0.01, 0.99,
    )


def scalar_refresh(
    tables: Dict[NodeId, SeedMembershipLists],
    overlay: OverlayGraph,
    new_avs: np.ndarray,
    predicate: AvmemPredicate,
    now: float = 1200.0,
) -> int:
    """The seed refresh round: per-entry ``evaluate_kind`` + ``upsert``/
    ``remove`` on the dict-backed lists (the loop
    ``AvmemNode.refresh_step`` used to run)."""
    index_of = {node: i for i, node in enumerate(overlay.ids)}
    evicted = 0
    for i, owner in enumerate(overlay.ids):
        table = tables[owner]
        me = NodeDescriptor(owner, float(new_avs[i]))
        for entry in list(table.all_entries()):
            av = float(new_avs[index_of[entry.node]])
            kind = predicate.evaluate_kind(me, NodeDescriptor(entry.node, av))
            if kind is None:
                table.remove(entry.node)
                evicted += 1
            else:
                table.upsert(entry.node, av, kind, now)
    return evicted


def batched_refresh(
    tables: Dict[NodeId, MembershipLists],
    overlay: OverlayGraph,
    new_avs: np.ndarray,
    predicate: AvmemPredicate,
    now: float = 1200.0,
) -> int:
    """The columnar refresh round: ``evaluate_many`` + one masked
    ``refresh_round`` pass per node (what ``AvmemNode.refresh_step``
    runs now)."""
    pop_digests = overlay.digest64_array
    order = np.argsort(pop_digests)
    sorted_digests = pop_digests[order]
    evicted = 0
    for i, owner in enumerate(overlay.ids):
        table = tables[owner]
        view = table.neighbor_arrays()
        if view.slots.size == 0:
            continue
        # Locate each neighbor's population index from its digest —
        # one vectorized searchsorted instead of a dict lookup per entry.
        neighbor_idx = order[np.searchsorted(sorted_digests, view.digests)]
        neighbor_avs = new_avs[neighbor_idx]
        me = NodeDescriptor(owner, float(new_avs[i]))
        member, horizontal = predicate.evaluate_many(
            me, view.nodes, neighbor_avs, digests=view.digests
        )
        evicted += table.refresh_round(
            view.slots, neighbor_avs, horizontal, member, now
        )
    return evicted


def check_membership_parity(
    scalar_tables: Dict[NodeId, SeedMembershipLists],
    batched_tables: Dict[NodeId, MembershipLists],
    stage: str,
) -> None:
    assert scalar_tables.keys() == batched_tables.keys()
    for owner, scalar_table in scalar_tables.items():
        scalar_entries = scalar_table.entries()
        batched_entries = batched_tables[owner].entries()
        assert scalar_entries == batched_entries, (
            f"membership {stage} parity violated at owner {owner}"
        )


def check_parity(descriptors, predicate) -> None:
    graph, _ = timed(legacy_build, descriptors, predicate)
    overlay, _ = timed(OverlayGraph.build, descriptors, predicate)
    adapted = overlay.to_networkx()
    assert set(adapted.edges) == set(graph.edges), "edge-set parity violated"
    for src, dst in graph.edges:
        assert adapted.edges[src, dst]["kind"] is graph.edges[src, dst]["kind"], (
            "edge-kind parity violated"
        )
    print(
        f"parity OK at N={len(descriptors)}: "
        f"{graph.number_of_edges()} identical edges/kinds"
    )


def check_install_refresh_parity(descriptors, predicate, seed: int) -> None:
    """Entry-for-entry scalar/batched table parity after install and
    after one refresh round (the benchmark-level mirror of the
    hypothesis property test in tests/test_membership_table.py)."""
    overlay = OverlayGraph.build(descriptors, predicate)
    scalar_tables = scalar_install(overlay)
    batched_tables = batched_install(overlay)
    check_membership_parity(scalar_tables, batched_tables, "install")
    new_avs = perturbed_availabilities(overlay, seed)
    scalar_evicted = scalar_refresh(scalar_tables, overlay, new_avs, predicate)
    batched_evicted = batched_refresh(batched_tables, overlay, new_avs, predicate)
    assert scalar_evicted == batched_evicted, "refresh eviction-count parity violated"
    check_membership_parity(scalar_tables, batched_tables, "refresh")
    print(
        f"membership parity OK at N={len(descriptors)}: identical tables after "
        f"install + refresh ({scalar_evicted} evictions)"
    )


def run_construction_sweep(args) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    print(f"{'N':>8} {'legacy_s':>10} {'array_s':>10} {'adapter_s':>10} "
          f"{'speedup':>8} {'edges':>10}")
    for n in args.sizes:
        descriptors, predicate = make_population(n, seed=args.seed)
        overlay, array_s = timed(OverlayGraph.build, descriptors, predicate)
        _, adapter_s = timed(lambda: overlay.to_networkx())
        row: Dict[str, object] = {
            "n": n,
            "array_s": array_s,
            "adapter_s": adapter_s,
            "edges": overlay.number_of_edges,
        }
        if n <= args.skip_legacy_above:
            _, legacy_s = timed(legacy_build, descriptors, predicate)
            row["legacy_s"] = legacy_s
            row["speedup"] = legacy_s / array_s
            speedup = f"{legacy_s / array_s:7.1f}x"
            legacy_repr = f"{legacy_s:10.3f}"
        else:
            speedup, legacy_repr = "      —", "         —"
        rows.append(row)
        print(
            f"{n:>8} {legacy_repr} {array_s:10.3f} {adapter_s:10.3f} "
            f"{speedup:>8} {overlay.number_of_edges:>10}"
        )
    return rows


def run_candidate_sweep(args) -> List[Dict[str, object]]:
    """Candidate-generated vs exhaustive row-space construction.

    At N <= PARITY_CUTOFF every invocation asserts the two CSR triples
    are identical (same arrays, same order); above EXHAUSTIVE_CUTOFF only
    the O(N*k) candidate path runs.  Peak RSS is reported per size — the
    metric the memory-bounded large-N milestone tracks.
    """
    rows: List[Dict[str, object]] = []
    print(f"\n{'N':>8} {'exhaustive_s':>13} {'candidates_s':>13} {'speedup':>8} "
          f"{'edges':>10} {'rss_mb':>8}")
    for n in args.candidate_sizes:
        population, predicate = make_row_population(n, seed=args.seed)
        overlay, cand_s = timed(
            OverlayGraph.build_rows, population, predicate, method="candidates"
        )
        row: Dict[str, object] = {
            "n": n,
            "candidates_s": cand_s,
            "edges": overlay.number_of_edges,
            "peak_rss_mb": peak_rss_mb(),
        }
        if n <= EXHAUSTIVE_CUTOFF:
            exhaustive, exh_s = timed(
                OverlayGraph.build_rows, population, predicate, method="exhaustive"
            )
            row["exhaustive_s"] = exh_s
            row["speedup"] = exh_s / cand_s
            speedup = f"{exh_s / cand_s:7.1f}x"
            exh_repr = f"{exh_s:13.3f}"
            if n <= PARITY_CUTOFF:
                assert (overlay.src_indices == exhaustive.src_indices).all()
                assert (overlay.dst_indices == exhaustive.dst_indices).all()
                assert (overlay.horizontal == exhaustive.horizontal).all()
                row["parity"] = "exact"
        else:
            speedup, exh_repr = "      —", "            —"
        rows.append(row)
        rss = row["peak_rss_mb"]
        print(
            f"{n:>8} {exh_repr} {cand_s:13.3f} {speedup:>8} "
            f"{overlay.number_of_edges:>10} {rss if rss is None else round(rss):>8}"
        )
    return rows


def run_membership_sweep(args) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    print(f"\n{'N':>8} {'inst_scalar':>12} {'inst_batch':>11} {'inst_x':>7} "
          f"{'refr_scalar':>12} {'refr_batch':>11} {'refr_x':>7} {'edges':>10}")
    for n in args.sizes:
        descriptors, predicate = make_population(n, seed=args.seed)
        overlay = OverlayGraph.build(descriptors, predicate)
        seed_tables, inst_scalar_s = timed(scalar_install, overlay)
        tables, inst_batch_s = timed(batched_install, overlay)
        new_avs = perturbed_availabilities(overlay, args.seed)
        _, refr_scalar_s = timed(
            scalar_refresh, seed_tables, overlay, new_avs, predicate
        )
        _, refr_batch_s = timed(batched_refresh, tables, overlay, new_avs, predicate)
        rows.append({
            "n": n,
            "install_scalar_s": inst_scalar_s,
            "install_batch_s": inst_batch_s,
            "install_speedup": inst_scalar_s / inst_batch_s,
            "refresh_scalar_s": refr_scalar_s,
            "refresh_batch_s": refr_batch_s,
            "refresh_speedup": refr_scalar_s / refr_batch_s,
            "edges": overlay.number_of_edges,
        })
        print(
            f"{n:>8} {inst_scalar_s:12.3f} {inst_batch_s:11.3f} "
            f"{inst_scalar_s / inst_batch_s:6.1f}x {refr_scalar_s:12.3f} "
            f"{refr_batch_s:11.3f} {refr_scalar_s / refr_batch_s:6.1f}x "
            f"{overlay.number_of_edges:>10}"
        )
    return rows


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="population sizes to sweep",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--candidate-sizes", type=int, nargs="+",
        default=list(DEFAULT_CANDIDATE_SIZES),
        help="population sizes for the candidate-generated construction "
             "sweep (candidate-only above the exhaustive cutoff; try 1000000)",
    )
    parser.add_argument(
        "--skip-legacy-above", type=int, default=50_000,
        help="skip the O(N^2)-with-Python-constants legacy path above this N",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="result path (default: benchmarks/results/BENCH_overlay_scale.json)",
    )
    args = parser.parse_args(argv)

    smallest = make_population(min(args.sizes), seed=args.seed)
    check_parity(*smallest)
    check_install_refresh_parity(*smallest, seed=args.seed)
    construction = run_construction_sweep(args)
    candidates = run_candidate_sweep(args)
    membership = run_membership_sweep(args)
    emit_bench_json(
        "overlay_scale",
        {
            "seed": args.seed,
            "construction": construction,
            "candidates": candidates,
            "membership": membership,
        },
        path=args.json_out,
    )


if __name__ == "__main__":
    main()
