"""Overlay-construction scaling sweep: legacy networkx path vs the
array-backed :class:`~repro.overlays.graphs.OverlayGraph`.

Sweeps N ∈ {1k, 5k, 20k} (override with ``--sizes``) and times three
construction strategies over the same descriptor population:

* ``legacy``  — the seed implementation: one ``evaluate_many`` call per
  source row, per-edge inserts into a ``networkx.DiGraph``;
* ``array``   — ``OverlayGraph.build`` (block-tiled ``evaluate_all``);
* ``adapter`` — ``OverlayGraph.build(...).to_networkx()``, what the
  compatibility wrapper :func:`build_overlay_graph` now does.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_overlay_scale.py
    PYTHONPATH=src python benchmarks/bench_overlay_scale.py --sizes 1000 5000

The acceptance bar for the array backend is a ≥ 5× construction speedup
over the legacy path at N = 20k; a parity check (edge count + per-kind
counts) runs at the smallest size on every invocation.
"""

from __future__ import annotations

import argparse
import time
from typing import List, Sequence

import networkx as nx
import numpy as np

from repro.core.availability import AvailabilityPdf
from repro.core.ids import NodeId, make_node_ids
from repro.core.predicates import AvmemPredicate, NodeDescriptor, SliverKind
from repro.overlays.graphs import OverlayGraph

DEFAULT_SIZES = (1_000, 5_000, 20_000)


def legacy_build(
    descriptors: Sequence[NodeDescriptor],
    predicate: AvmemPredicate,
    cushion: float = 0.0,
) -> nx.DiGraph:
    """The seed ``build_overlay_graph``: vectorized per source row, with
    per-edge Python inserts into networkx."""
    ids: List[NodeId] = [d.node for d in descriptors]
    avs = np.array([d.availability for d in descriptors], dtype=float)
    graph = nx.DiGraph()
    for descriptor in descriptors:
        graph.add_node(descriptor.node, availability=descriptor.availability)
    for source in descriptors:
        member, horizontal = predicate.evaluate_many(source, ids, avs, cushion=cushion)
        for j in np.flatnonzero(member):
            kind = SliverKind.HORIZONTAL if horizontal[j] else SliverKind.VERTICAL
            graph.add_edge(source.node, ids[j], kind=kind)
    return graph


def make_population(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    ids = make_node_ids(n)
    avs = np.clip(rng.beta(4.0, 1.5, n), 0.01, 0.99)
    pdf = AvailabilityPdf.from_samples(avs, online_weighted=False)
    from repro.core.predicates import paper_predicate

    return (
        [NodeDescriptor(node, float(a)) for node, a in zip(ids, avs)],
        paper_predicate(pdf),
    )


def timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def check_parity(descriptors, predicate) -> None:
    graph, _ = timed(legacy_build, descriptors, predicate)
    overlay, _ = timed(OverlayGraph.build, descriptors, predicate)
    adapted = overlay.to_networkx()
    assert set(adapted.edges) == set(graph.edges), "edge-set parity violated"
    for src, dst in graph.edges:
        assert adapted.edges[src, dst]["kind"] is graph.edges[src, dst]["kind"], (
            "edge-kind parity violated"
        )
    print(
        f"parity OK at N={len(descriptors)}: "
        f"{graph.number_of_edges()} identical edges/kinds"
    )


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="population sizes to sweep",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--skip-legacy-above", type=int, default=50_000,
        help="skip the O(N^2)-with-Python-constants legacy path above this N",
    )
    args = parser.parse_args(argv)

    check_parity(*make_population(min(args.sizes), seed=args.seed))
    print(f"{'N':>8} {'legacy_s':>10} {'array_s':>10} {'adapter_s':>10} "
          f"{'speedup':>8} {'edges':>10}")
    for n in args.sizes:
        descriptors, predicate = make_population(n, seed=args.seed)
        overlay, array_s = timed(OverlayGraph.build, descriptors, predicate)
        _, adapter_s = timed(lambda: overlay.to_networkx())
        if n <= args.skip_legacy_above:
            _, legacy_s = timed(legacy_build, descriptors, predicate)
            speedup = f"{legacy_s / array_s:7.1f}x"
            legacy_repr = f"{legacy_s:10.3f}"
        else:
            speedup, legacy_repr = "      —", "         —"
        print(
            f"{n:>8} {legacy_repr} {array_s:10.3f} {adapter_s:10.3f} "
            f"{speedup:>8} {overlay.number_of_edges:>10}"
        )


if __name__ == "__main__":
    main()
