"""Operation-plan execution + columnar log aggregation sweep.

Two families of timings:

* **Log aggregation** — the figure/scenario metric math over N
  operations, swept over N ∈ {1k, 10k, 50k} (override with ``--sizes``)
  on synthetic seeded records:

  - ``seed`` — the seed record-list path, preserved verbatim: Python
    lists of ``AnycastRecord``/``MulticastRecord`` dataclasses reduced
    with ``Counter``/list-comprehension math (the shapes
    ``_anycast_common.status_fractions``, ``fig07``'s hop ``Counter``,
    ``fig09``'s latency list and ``fig11-13``'s per-record metric
    loops had before the redesign);
  - ``log``  — the same metrics as vectorized reductions over the
    columnar :class:`~repro.ops.log.OperationLog`.

  Metric-for-metric parity is asserted on every run, and the log's
  column values are checked record-for-record against the source
  dataclasses.

* **Plan execution** — a 40-anycast workload through the new
  ``sim.ops.run(OperationPlan)`` path vs the preserved seed scalar
  driver loop (pick initiator → ``engine.anycast`` → ``run_until``,
  the exact shape of the seed ``run_anycast_batch``), on two
  identically-seeded simulations; record-for-record parity asserted.
  Both paths share the engine, so this tracks runner overhead, not a
  speedup claim.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_ops.py
    PYTHONPATH=src python benchmarks/bench_ops.py --sizes 1000 10000

Acceptance bar: ≥ 3× log-over-seed aggregation speedup at N ≥ 10k
(asserted whenever the sweep includes such an N).  Results are also
written to ``benchmarks/results/BENCH_ops.json`` (:mod:`bench_util`).
"""

from __future__ import annotations

import argparse
import time
from collections import Counter
from typing import Dict, List, Sequence

import numpy as np

from repro.core.ids import make_node_ids
from repro.ops.log import OperationLog
from repro.ops.plan import OperationItem, OperationPlan, OperationTiming
from repro.ops.results import AnycastRecord, AnycastStatus, MulticastRecord
from repro.ops.spec import InitiatorBand, TargetSpec
from repro.simulation import AvmemSimulation, SimulationSettings

from bench_util import emit_bench_json

DEFAULT_SIZES = (1_000, 10_000, 50_000)
BANDS = (InitiatorBand.LOW, InitiatorBand.MID, InitiatorBand.HIGH)
HOP_LIMITS = (1, 2, 6)
SPEEDUP_BAR = 3.0
BAR_AT = 10_000


def timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


# ----------------------------------------------------------------------
# Synthetic record population (seeded, status mix like a harsh target)
# ----------------------------------------------------------------------
def synthesize(n: int, seed: int):
    """``n`` anycast records + ``n // 5`` multicast records + bands."""
    rng = np.random.default_rng(seed)
    ids = make_node_ids(256)
    target = TargetSpec.range(0.15, 0.25)
    statuses = (
        AnycastStatus.DELIVERED,
        AnycastStatus.TTL_EXPIRED,
        AnycastStatus.RETRY_EXPIRED,
        AnycastStatus.NO_NEIGHBOR,
        AnycastStatus.LOST,
    )
    status_draw = rng.choice(len(statuses), size=n, p=(0.6, 0.15, 0.15, 0.05, 0.05))
    anycasts: List[AnycastRecord] = []
    bands: List[str] = []
    for i in range(n):
        status = statuses[int(status_draw[i])]
        record = AnycastRecord(
            op_id=i,
            initiator=ids[int(rng.integers(len(ids)))],
            target=target,
            policy="retry-greedy",
            selector="hs+vs",
            started_at=float(2.0 * i),
            status=status,
        )
        record.data_messages = int(rng.integers(1, 8))
        record.retries_used = int(rng.integers(0, 4))
        if status == AnycastStatus.DELIVERED:
            record.delivered_at = record.started_at + float(rng.uniform(0.02, 0.8))
            record.hops = int(rng.integers(1, 7))
        anycasts.append(record)
        bands.append(BANDS[int(rng.integers(3))])
    multicasts: List[MulticastRecord] = []
    mcast_bands: List[str] = []
    for i in range(n // 5):
        eligible = {ids[j] for j in rng.choice(len(ids), size=24, replace=False)}
        record = MulticastRecord(
            op_id=n + i,
            initiator=ids[int(rng.integers(len(ids)))],
            target=target,
            mode="flood",
            selector="hs+vs",
            started_at=float(5.0 * i),
            anycast=anycasts[int(rng.integers(n))],
            eligible=eligible,
        )
        for node in list(eligible)[: int(rng.integers(8, 25))]:
            record.deliveries[node] = record.started_at + float(rng.uniform(0.01, 2.0))
        for j in range(int(rng.integers(0, 5))):
            record.spam.append(
                (ids[j], record.started_at + float(rng.uniform(0.01, 2.0)))
            )
        record.data_messages = int(rng.integers(20, 400))
        multicasts.append(record)
        mcast_bands.append(BANDS[int(rng.integers(3))])
    return anycasts, bands, multicasts, mcast_bands


# ----------------------------------------------------------------------
# The preserved seed record-list aggregation path
# ----------------------------------------------------------------------
def seed_aggregate(
    anycasts: Sequence[AnycastRecord],
    bands: Sequence[str],
    multicasts: Sequence[MulticastRecord],
) -> Dict[str, object]:
    """Exactly the per-record Python math the figure drivers used."""
    # _anycast_common.status_fractions (seed shape)
    counts = Counter(record.status for record in anycasts)
    fractions = {
        status: counts.get(status, 0) / len(anycasts)
        for status in AnycastStatus.TERMINAL
    }
    # _anycast_common.mean_delivered_latency_ms (seed shape)
    latencies = [r.latency for r in anycasts if r.delivered and r.latency is not None]
    mean_latency_ms = float(1000.0 * np.mean(latencies)) if latencies else float("nan")
    # fig07's cumulative hop fractions (seed shape)
    delivered = [r for r in anycasts if r.delivered]
    hops = Counter(r.hops for r in delivered)
    hop_cdf = {
        limit: sum(c for h, c in hops.items() if h <= limit) / len(delivered)
        for limit in HOP_LIMITS
    }
    # per-band grouping (the ad-hoc dict accumulation drivers hand-rolled)
    by_band: Dict[str, Dict[str, List]] = {}
    for record, band in zip(anycasts, bands):
        cell = by_band.setdefault(band, {"n": [], "delivered": [], "latency": []})
        cell["n"].append(record)
        if record.delivered:
            cell["delivered"].append(record)
            if record.latency is not None:
                cell["latency"].append(record.latency)
    band_stats = {
        band: {
            "launched": len(cell["n"]),
            "success_rate": len(cell["delivered"]) / len(cell["n"]),
            "latency_p50_ms": (
                float(1000.0 * np.percentile(cell["latency"], 50))
                if cell["latency"]
                else float("nan")
            ),
        }
        for band, cell in by_band.items()
    }
    # figs 11-13 per-record multicast metrics (seed shape)
    worst = [
        1000.0 * r.worst_latency() for r in multicasts if r.worst_latency() is not None
    ]
    spam_ratios = [r.spam_ratio() for r in multicasts if r.spam_ratio() == r.spam_ratio()]
    reliabilities = [
        r.reliability() for r in multicasts if r.reliability() == r.reliability()
    ]
    return {
        "status_fractions": fractions,
        "mean_latency_ms": mean_latency_ms,
        "hop_cdf": hop_cdf,
        "band_stats": band_stats,
        "worst_latency_p90_ms": (
            float(np.percentile(worst, 90)) if worst else float("nan")
        ),
        "mean_spam_ratio": float(np.mean(spam_ratios)) if spam_ratios else float("nan"),
        "mean_reliability": (
            float(np.mean(reliabilities)) if reliabilities else float("nan")
        ),
    }


def log_aggregate(log: OperationLog) -> Dict[str, object]:
    """The same metrics over the columnar log."""
    anycasts = log.anycasts
    worst = 1000.0 * log.worst_latencies()
    spam = log.spam_ratio_values()
    reliability = log.reliability_values()
    return {
        "status_fractions": log.status_fractions(anycasts),
        "mean_latency_ms": log.mean_latency_ms(anycasts),
        "hop_cdf": {
            limit: log.hop_fraction_within(limit, anycasts) for limit in HOP_LIMITS
        },
        "band_stats": {
            entry["band"]: {
                "launched": entry["launched"],
                "success_rate": entry["success_rate"],
                "latency_p50_ms": entry["latency_p50_ms"],
            }
            for entry in log.aggregate(by=("band",), mask=anycasts)
        },
        "worst_latency_p90_ms": (
            float(np.percentile(worst, 90)) if worst.size else float("nan")
        ),
        "mean_spam_ratio": float(np.nanmean(spam)) if spam.size else float("nan"),
        "mean_reliability": (
            float(np.nanmean(reliability)) if reliability.size else float("nan")
        ),
    }


def assert_metric_parity(seed: Dict[str, object], log: Dict[str, object]) -> None:
    def close(a, b):
        if a != a and b != b:  # both NaN
            return True
        return np.isclose(a, b, rtol=1e-12, atol=1e-12)

    for status in AnycastStatus.TERMINAL:
        assert close(
            seed["status_fractions"][status], log["status_fractions"][status]
        ), f"status fraction parity violated for {status}"
    assert close(seed["mean_latency_ms"], log["mean_latency_ms"])
    for limit in HOP_LIMITS:
        assert close(seed["hop_cdf"][limit], log["hop_cdf"][limit])
    assert seed["band_stats"].keys() == log["band_stats"].keys()
    for band, cell in seed["band_stats"].items():
        other = log["band_stats"][band]
        assert cell["launched"] == other["launched"]
        assert close(cell["success_rate"], other["success_rate"])
        assert close(cell["latency_p50_ms"], other["latency_p50_ms"])
    for key in ("worst_latency_p90_ms", "mean_spam_ratio", "mean_reliability"):
        assert close(seed[key], log[key]), f"{key} parity violated"


def assert_record_parity(
    log: OperationLog,
    anycasts: Sequence[AnycastRecord],
    multicasts: Sequence[MulticastRecord],
) -> None:
    """Column values must match the source dataclasses record for record."""
    n = len(anycasts)
    assert len(log) == n + len(multicasts)
    np.testing.assert_array_equal(
        log.op_id[:n], np.array([r.op_id for r in anycasts])
    )
    from repro.ops.log import STATUSES

    status_code = {name: i for i, name in enumerate(STATUSES)}
    np.testing.assert_array_equal(
        log.status[:n], np.array([status_code[r.status] for r in anycasts])
    )
    np.testing.assert_array_equal(
        log.hops[:n],
        np.array([-1 if r.hops is None else r.hops for r in anycasts]),
    )
    np.testing.assert_array_equal(
        log.transmissions[:n], np.array([r.data_messages for r in anycasts])
    )
    want_latency = np.array(
        [np.nan if r.latency is None else r.latency for r in anycasts]
    )
    np.testing.assert_allclose(log.latency[:n], want_latency, equal_nan=True)
    np.testing.assert_array_equal(
        log.eligible[n:], np.array([len(r.eligible) for r in multicasts])
    )
    np.testing.assert_array_equal(
        log.delivered_count[n:], np.array([len(r.deliveries) for r in multicasts])
    )
    np.testing.assert_array_equal(
        log.spam_count[n:], np.array([len(r.spam) for r in multicasts])
    )


def sweep_aggregation(n: int, seed: int) -> Dict[str, object]:
    anycasts, bands, multicasts, mcast_bands = synthesize(n, seed)

    def build_log() -> OperationLog:
        builder = OperationLog.builder()
        for record, band in zip(anycasts, bands):
            builder.append_anycast(record, band=band, item=0)
        for record, band in zip(multicasts, mcast_bands):
            builder.append_multicast(record, band=band, item=1)
        return builder.finalize()

    log, build_s = timed(build_log)
    assert_record_parity(log, anycasts, multicasts)
    seed_metrics, seed_s = timed(seed_aggregate, anycasts, bands, multicasts)
    log_metrics, log_s = timed(log_aggregate, log)
    assert_metric_parity(seed_metrics, log_metrics)
    speedup = seed_s / log_s if log_s > 0 else float("inf")
    return {
        "operations": n + len(multicasts),
        "anycasts": n,
        "multicasts": len(multicasts),
        "build_seconds": build_s,
        "seed_seconds": seed_s,
        "log_seconds": log_s,
        "speedup": speedup,
    }


# ----------------------------------------------------------------------
# Plan-execution sweep (runner overhead vs the seed scalar driver)
# ----------------------------------------------------------------------
EXEC_COUNT = 40
EXEC_TARGET = (0.6, 0.95)


def build_sim(seed: int) -> AvmemSimulation:
    sim = AvmemSimulation(SimulationSettings(hosts=160, epochs=60, seed=seed))
    sim.setup(warmup=18600.0, settle=1800.0)
    return sim


def seed_driver(simulation: AvmemSimulation) -> List[AnycastRecord]:
    """The seed ``run_anycast_batch`` loop, preserved verbatim."""
    records: List[AnycastRecord] = []
    spec = simulation.as_target(EXEC_TARGET)
    for __ in range(EXEC_COUNT):
        initiator = simulation.pick_initiator(InitiatorBand.MID)
        if initiator is not None:
            records.append(
                simulation.engine.anycast(
                    initiator, spec, policy="greedy", selector="hs+vs"
                )
            )
        simulation.sim.run_until(simulation.sim.now + 2.0)
    simulation.sim.run_until(simulation.sim.now + 30.0)
    for record in records:
        record.finalize()
    return records


def sweep_execution(seed: int) -> Dict[str, object]:
    seed_sim, seed_build_s = timed(build_sim, seed)
    plan_sim, plan_build_s = timed(build_sim, seed)
    seed_records, seed_s = timed(seed_driver, seed_sim)
    item = OperationItem(
        kind="anycast",
        target=TargetSpec.range(*EXEC_TARGET),
        count=EXEC_COUNT,
        band=InitiatorBand.MID,
        policy="greedy",
        timing=OperationTiming(mode="interval", spacing=2.0),
    )
    plan = OperationPlan.single(item, settle=30.0, name="bench")
    execution, plan_s = timed(plan_sim.ops.execute, plan)
    launched = execution.launched
    assert len(launched) == len(seed_records), "launch-count parity violated"
    for old, new in zip(seed_records, launched):
        assert (old.op_id, old.status, old.hops, old.latency, old.data_messages) == (
            new.op_id, new.status, new.hops, new.latency, new.data_messages,
        ), "plan-vs-seed record parity violated"
    return {
        "operations": EXEC_COUNT,
        "hosts": 160,
        "build_seconds": (seed_build_s + plan_build_s) / 2.0,
        "seed_seconds": seed_s,
        "plan_seconds": plan_s,
        "overhead_ratio": plan_s / seed_s if seed_s > 0 else float("nan"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default=None, help="override the BENCH json path")
    args = parser.parse_args(argv)

    print("log aggregation: seed record-list path vs columnar OperationLog")
    print(f"{'ops':>8} {'build_s':>9} {'seed_s':>9} {'log_s':>9} {'speedup':>8}")
    aggregation = []
    for n in args.sizes:
        row = sweep_aggregation(n, args.seed)
        aggregation.append(row)
        print(
            f"{row['operations']:>8} {row['build_seconds']:>9.4f} "
            f"{row['seed_seconds']:>9.4f} {row['log_seconds']:>9.4f} "
            f"{row['speedup']:>8.1f}x"
        )
    for row in aggregation:
        if row["anycasts"] >= BAR_AT:
            assert row["speedup"] >= SPEEDUP_BAR, (
                f"aggregation speedup bar missed at {row['anycasts']} ops: "
                f"{row['speedup']:.1f}x < {SPEEDUP_BAR}x"
            )

    print()
    print("plan execution: sim.ops.run(plan) vs the seed scalar driver loop")
    execution = sweep_execution(args.seed)
    print(
        f"  {execution['operations']} anycasts over {execution['hosts']} hosts: "
        f"seed {execution['seed_seconds']:.3f}s, plan "
        f"{execution['plan_seconds']:.3f}s "
        f"(overhead x{execution['overhead_ratio']:.2f}, record parity ok)"
    )

    emit_bench_json(
        "ops",
        {
            "speedup_bar": SPEEDUP_BAR,
            "bar_at_operations": BAR_AT,
            "aggregation": aggregation,
            "execution": execution,
        },
        path=args.json,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
