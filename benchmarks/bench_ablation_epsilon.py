"""Ablation: the horizontal-sliver half-width ε.

The paper fixes ε = 0.1 ("our experiments find that using ε = 0.1
suffices").  This sweep shows the tradeoff that choice sits on: small ε
shrinks HS lists but fragments the availability bands; large ε inflates
state per node for no connectivity benefit.
"""

import numpy as np

from repro.churn.overnet import sample_availabilities
from repro.core.availability import AvailabilityPdf
from repro.core.ids import make_node_ids
from repro.core.predicates import NodeDescriptor, paper_predicate
from repro.experiments.report import format_table
from repro.overlays.graphs import band_connectivity, build_overlay_graph, sliver_sizes

POPULATION = 600
EPSILONS = (0.02, 0.05, 0.1, 0.2, 0.3)


def run_sweep():
    rng = np.random.default_rng(1)
    ids = make_node_ids(POPULATION)
    avs = sample_availabilities(POPULATION, rng)
    pdf = AvailabilityPdf.from_samples(avs, online_weighted=False)
    descriptors = [NodeDescriptor(n, float(a)) for n, a in zip(ids, avs)]
    rows = []
    for epsilon in EPSILONS:
        predicate = paper_predicate(pdf, epsilon=epsilon)
        graph = build_overlay_graph(descriptors, predicate)
        sizes = sliver_sizes(graph)
        hs_mean = float(np.mean([v[0] for v in sizes.values()]))
        vs_mean = float(np.mean([v[1] for v in sizes.values()]))
        connected = sum(
            band_connectivity(graph, c - epsilon, c + epsilon)
            for c in (0.2, 0.5, 0.8)
        )
        rows.append([epsilon, hs_mean, vs_mean, f"{connected}/3"])
    return rows


def test_ablation_epsilon(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(format_table(["epsilon", "hs_mean", "vs_mean", "bands_connected"], rows))
    assert len(rows) == len(EPSILONS)
    # HS state grows with epsilon.
    hs_means = [row[1] for row in rows]
    assert hs_means[-1] > hs_means[0]
