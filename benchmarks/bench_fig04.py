"""Benchmark: Incoming vertical-sliver link distribution (Fig 4).

Paper: incoming VS references are uniform across availability bands.
"""

from repro.experiments.figures import fig04

from conftest import run_figure_benchmark


def test_fig04(benchmark, bench_scale, bench_seed):
    result = run_figure_benchmark(
        benchmark, fig04.run, bench_scale, bench_seed
    )
    assert result.rows
