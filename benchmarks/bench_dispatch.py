"""Batched network dispatch vs the preserved per-hop path.

Two families of timings:

* **Substrate micro** — raw ``Network.send_batch`` cohorts over a
  churn-trace presence oracle: the batched path (one vectorized latency
  draw, one batched arrival-instant presence query, one event per
  arrival-time cohort) against ``batched=False`` (the per-hop loop of
  scalar sends the seed used).  Delivery counts and accounting totals
  are asserted equal on every run.

* **End-to-end plan execution** — a multicast-heavy
  :class:`~repro.ops.plan.OperationPlan` through two identically-seeded
  simulations, ``dispatch="batch"`` vs ``dispatch="per-hop"``.  The
  per-hop simulation also keeps the scalar ``_eligible_nodes`` loop
  (O(N) python per multicast launch), which is exactly the seed shape.
  Record-level parity (status, hops, transmissions, latencies, multicast
  tallies) is asserted run for run.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_dispatch.py            # N = 20k
    PYTHONPATH=src python benchmarks/bench_dispatch.py --quick    # CI smoke

Acceptance bar: ≥ 3× end-to-end speedup at N ≥ 20 000 hosts (asserted
whenever the sweep includes such an N).  Results land in
``benchmarks/results/BENCH_dispatch.json`` (:mod:`bench_util`).
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List, Optional

import numpy as np

from repro.churn.overnet import OvernetTraceConfig, generate_overnet_trace
from repro.core.ids import make_node_ids
from repro.ops.plan import OperationItem, OperationPlan, OperationTiming
from repro.ops.spec import TargetSpec
from repro.sim.engine import Simulator
from repro.sim.latency import PAPER_HOP_LATENCY
from repro.sim.network import Network
from repro.simulation import AvmemSimulation, SimulationSettings

from bench_util import emit_bench_json

SPEEDUP_BAR = 3.0
#: separate bar for the anycast-heavy (wavefront) plan — forwarding
#: walks are serial per hop, so less of the work batches than in the
#: multicast sweep.
ANYCAST_SPEEDUP_BAR = 2.0
BAR_AT_HOSTS = 20_000


def timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


# ----------------------------------------------------------------------
# Substrate micro: raw cohort dispatch over a churn trace
# ----------------------------------------------------------------------
def micro_dispatch(hosts: int, cohort: int, rounds: int, seed: int) -> Dict[str, object]:
    ids = make_node_ids(hosts)
    trace = generate_overnet_trace(
        node_keys=ids,
        config=OvernetTraceConfig(hosts=hosts, epochs=12, epoch_seconds=1200.0),
        rng=np.random.default_rng(seed),
    )
    pick = np.random.default_rng(seed + 1)
    cohorts = [
        [ids[j] for j in pick.integers(0, hosts, size=cohort)] for _ in range(rounds)
    ]

    def run(batched: bool):
        sim = Simulator()
        network = Network(
            sim,
            latency=PAPER_HOP_LATENCY,
            presence=trace,
            rng=np.random.default_rng(seed + 2),
            batched=batched,
        )
        received = [0]

        def on_message(envelope):
            received[0] += 1

        for node in ids:
            network.attach(node, on_message)
        sim.run_until(3600.0)
        src = next(node for node in ids if trace.is_online(node, sim.now))
        for batch in cohorts:
            network.send_batch(src, batch, "payload")
            sim.run()
        return received[0], network.stats.snapshot()

    (batch_received, batch_stats), batch_s = timed(run, True)
    (hop_received, hop_stats), hop_s = timed(run, False)
    assert batch_received == hop_received, "delivery-count parity violated"
    assert batch_stats == hop_stats, "NetworkStats parity violated"
    return {
        "hosts": hosts,
        "cohort": cohort,
        "rounds": rounds,
        "messages": cohort * rounds,
        "delivered": batch_received,
        "per_hop_seconds": hop_s,
        "batch_seconds": batch_s,
        "speedup": hop_s / batch_s if batch_s > 0 else float("inf"),
    }


# ----------------------------------------------------------------------
# End-to-end: multicast-heavy plan, batch vs per-hop simulations
# ----------------------------------------------------------------------
def build_sim(hosts: int, seed: int, dispatch: str) -> AvmemSimulation:
    simulation = AvmemSimulation(
        SimulationSettings(
            hosts=hosts,
            epochs=24,
            seed=seed,
            dispatch=dispatch,
            # Dispatch-bound measurement: the overlay is installed by the
            # direct bootstrap and frozen, so the timed window contains
            # only operation traffic (no discovery/refresh event load).
            protocols="off",
        )
    )
    simulation.setup(warmup=7200.0, settle=0.0)
    return simulation


def multicast_heavy_plan() -> OperationPlan:
    # A paper-shaped multicast sweep: range multicasts into the dense
    # availability bands (Section 4.2's range targets), flood and gossip
    # dissemination, plus a retried-greedy anycast stream.  Every launch
    # snapshots population-wide eligibility and every reception computes
    # its in-range neighbor cohort — the two per-operation costs the
    # batched layer vectorizes — on top of the per-message dispatch.
    floods = OperationItem(
        kind="multicast", target=TargetSpec.range(0.85, 0.95), count=32,
        band="high", mode="flood",
        timing=OperationTiming(mode="interval", spacing=20.0),
    )
    gossips = OperationItem(
        kind="multicast", target=TargetSpec.range(0.85, 0.95), count=12,
        band="high", mode="gossip",
        timing=OperationTiming(mode="interval", spacing=20.0, phase=5.0),
    )
    anycasts = OperationItem(
        kind="anycast", target=TargetSpec.range(0.6, 0.95), count=10,
        policy="retry-greedy",
        timing=OperationTiming(mode="interval", spacing=8.0, phase=2.0),
    )
    return OperationPlan(items=(floods, gossips, anycasts), settle=60.0)


def anycast_heavy_plan() -> OperationPlan:
    # The wavefront shape: batch-timed launch cohorts (every slot of an
    # item shares one instant, so the engine holds the first hops and
    # flushes them as one ``send_many`` wavefront) across all three
    # forwarding policies, an interval-timed stream for the singleton
    # path, and a couple of floods launched inside an anycast cohort so
    # stage-2 dissemination interleaves with forwards in one flush.
    # Per-hop dispatch runs the identical plan through scalar sends and
    # per-entry candidate ordering — the seed shape.
    cohorts = [
        OperationItem(
            kind="anycast", target=TargetSpec.range(0.6, 0.95), count=150,
            policy=policy,
            timing=OperationTiming(mode="batch", phase=10.0 + 20.0 * k),
        )
        for k, policy in enumerate(("greedy", "anneal", "retry-greedy"))
    ]
    # Low target from high-band initiators: long walks, ack timeouts,
    # retries — many candidate orderings per operation.
    retried = OperationItem(
        kind="anycast", target=TargetSpec.range(0.05, 0.3), count=100,
        band="high", policy="retry-greedy", retry=2,
        timing=OperationTiming(mode="batch", phase=80.0),
    )
    singles = OperationItem(
        kind="anycast", target=TargetSpec.range(0.6, 0.95), count=50,
        policy="anneal",
        timing=OperationTiming(mode="interval", spacing=1.5, phase=100.0),
    )
    floods = OperationItem(
        kind="multicast", target=TargetSpec.range(0.85, 0.95), count=4,
        band="high", mode="flood",
        timing=OperationTiming(mode="batch", phase=10.0),
    )
    return OperationPlan(items=(*cohorts, retried, singles, floods), settle=60.0)


def anycast_fields(record):
    return (
        record.op_id, record.initiator, record.status, record.hops,
        record.latency, record.data_messages, record.ack_messages,
        record.retries_used, record.started_at, record.delivered_at,
        record.delivery_node,
    )


def assert_record_parity(batch_records, hop_records) -> None:
    assert len(batch_records) == len(hop_records), "launch-count parity violated"
    for new, old in zip(batch_records, hop_records):
        assert (new is None) == (old is None), "skipped-slot parity violated"
        if new is None:
            continue
        if hasattr(new, "deliveries"):
            assert new.mode == old.mode
            assert new.eligible == old.eligible, "eligible-set parity violated"
            assert new.deliveries == old.deliveries, "delivery parity violated"
            assert sorted(new.spam) == sorted(old.spam), "spam parity violated"
            assert new.data_messages == old.data_messages
            assert new.duplicate_receptions == old.duplicate_receptions
            assert anycast_fields(new.anycast) == anycast_fields(old.anycast)
        else:
            assert anycast_fields(new) == anycast_fields(old), (
                "anycast record parity violated"
            )


def sweep_execution(hosts: int, seed: int, plan_factory=multicast_heavy_plan) -> Dict[str, object]:
    batch_sim, batch_build_s = timed(build_sim, hosts, seed, "batch")
    hop_sim, hop_build_s = timed(build_sim, hosts, seed, "per-hop")
    plan = plan_factory()
    batch_exec, batch_s = timed(batch_sim.ops.execute, plan)
    hop_exec, hop_s = timed(hop_sim.ops.execute, plan)
    assert_record_parity(batch_exec.records, hop_exec.records)
    assert (
        batch_sim.network.stats.snapshot() == hop_sim.network.stats.snapshot()
    ), "NetworkStats parity violated"
    log = batch_exec.log
    return {
        "hosts": hosts,
        "operations": plan.total_operations,
        "messages_sent": batch_sim.network.stats.sent,
        "events_batch": batch_sim.sim.events_processed,
        "events_per_hop": hop_sim.sim.events_processed,
        "success_rate": log.success_rate(),
        "build_seconds": (batch_build_s + hop_build_s) / 2.0,
        "per_hop_seconds": hop_s,
        "batch_seconds": batch_s,
        "speedup": hop_s / batch_s if batch_s > 0 else float("inf"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--hosts", type=int, nargs="+", default=None,
                        help="host counts for the end-to-end sweep")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: small population, no speedup bar")
    parser.add_argument("--json", default=None, help="override the BENCH json path")
    args = parser.parse_args(argv)

    if args.hosts is not None:
        sizes = args.hosts
    elif args.quick:
        sizes = [2_000]
    else:
        sizes = [BAR_AT_HOSTS]

    micro_cohort = 256 if args.quick else 1024
    micro_rounds = 40 if args.quick else 100
    micro_hosts = 2_000 if args.quick else 20_000
    print("substrate micro: send_batch cohorts vs per-hop scalar sends")
    micro = micro_dispatch(micro_hosts, micro_cohort, micro_rounds, args.seed)
    print(
        f"  {micro['messages']} messages over {micro['hosts']} hosts "
        f"(cohort {micro['cohort']}): per-hop {micro['per_hop_seconds']:.3f}s, "
        f"batch {micro['batch_seconds']:.3f}s ({micro['speedup']:.1f}x, parity ok)"
    )

    print()
    print("end-to-end: multicast-heavy plan, dispatch=batch vs dispatch=per-hop")
    print(f"{'hosts':>8} {'build_s':>9} {'per_hop_s':>10} {'batch_s':>9} {'speedup':>8}")
    execution: List[Dict[str, object]] = []
    for hosts in sizes:
        row = sweep_execution(hosts, args.seed)
        execution.append(row)
        print(
            f"{row['hosts']:>8} {row['build_seconds']:>9.2f} "
            f"{row['per_hop_seconds']:>10.3f} {row['batch_seconds']:>9.3f} "
            f"{row['speedup']:>8.1f}x"
        )
    for row in execution:
        if row["hosts"] >= BAR_AT_HOSTS:
            assert row["speedup"] >= SPEEDUP_BAR, (
                f"dispatch speedup bar missed at {row['hosts']} hosts: "
                f"{row['speedup']:.1f}x < {SPEEDUP_BAR}x"
            )

    print()
    print("end-to-end: anycast-heavy wavefront plan, dispatch=batch vs dispatch=per-hop")
    print(f"{'hosts':>8} {'build_s':>9} {'per_hop_s':>10} {'batch_s':>9} {'speedup':>8}")
    anycast_rows: List[Dict[str, object]] = []
    for hosts in sizes:
        row = sweep_execution(hosts, args.seed, plan_factory=anycast_heavy_plan)
        anycast_rows.append(row)
        print(
            f"{row['hosts']:>8} {row['build_seconds']:>9.2f} "
            f"{row['per_hop_seconds']:>10.3f} {row['batch_seconds']:>9.3f} "
            f"{row['speedup']:>8.1f}x"
        )
    for row in anycast_rows:
        if row["hosts"] >= BAR_AT_HOSTS:
            assert row["speedup"] >= ANYCAST_SPEEDUP_BAR, (
                f"anycast wavefront speedup bar missed at {row['hosts']} hosts: "
                f"{row['speedup']:.1f}x < {ANYCAST_SPEEDUP_BAR}x"
            )

    emit_bench_json(
        "dispatch",
        {
            "speedup_bar": SPEEDUP_BAR,
            "anycast_speedup_bar": ANYCAST_SPEEDUP_BAR,
            "bar_at_hosts": BAR_AT_HOSTS,
            "micro": micro,
            "execution": execution,
            "anycast_execution": anycast_rows,
        },
        path=args.json,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
