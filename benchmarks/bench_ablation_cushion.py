"""Ablation: the verification cushion (Section 4.1).

Sweeps the cushion and reports both sides of the tradeoff on one
population: flooding-attack acceptance (Fig 5's metric — rises with the
cushion) against legitimate rejection (Fig 6's — falls with it).  The
paper picks 0.1; the sweep shows where that sits on the curve.
"""

import numpy as np

from repro.attacks.flooding import (
    flooding_attack_experiment,
    legitimate_rejection_experiment,
)
from repro.experiments.harness import build_simulation
from repro.experiments.report import format_table

CUSHIONS = (0.0, 0.05, 0.1, 0.2)


def run_sweep(scale="small", seed=0):
    simulation = build_simulation(scale=scale, seed=seed, monitor_noise_std=0.05)
    rows = []
    for cushion in CUSHIONS:
        accept = flooding_attack_experiment(
            simulation.nodes, simulation.predicate, simulation.true_availability,
            cushion=cushion, max_targets=80,
            rng=np.random.default_rng(cushion.hex().__hash__() % 2**31),
        )
        reject = legitimate_rejection_experiment(
            simulation.nodes, simulation.predicate, simulation.true_availability,
            cushion=cushion,
        )
        rows.append([cushion, accept.overall, reject.overall])
    return rows


def test_ablation_cushion(benchmark, bench_scale, bench_seed):
    rows = benchmark.pedantic(
        run_sweep, kwargs=dict(scale=bench_scale, seed=bench_seed),
        rounds=1, iterations=1,
    )
    print()
    print(format_table(
        ["cushion", "flood_accept_rate", "legit_reject_rate"], rows
    ))
    accepts = [r[1] for r in rows]
    rejects = [r[2] for r in rows]
    assert accepts[-1] >= accepts[0]  # cushion admits more attackers...
    assert rejects[-1] <= rejects[0]  # ...but rejects fewer valid messages
