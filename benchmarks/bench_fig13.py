"""Benchmark: Multicast reliability CDF (Fig 13).

Paper: flooding > 90%, gossip ~= 70%.
"""

from repro.experiments.figures import fig13

from conftest import run_figure_benchmark


def test_fig13(benchmark, bench_scale, bench_seed):
    result = run_figure_benchmark(
        benchmark, fig13.run, bench_scale, bench_seed
    )
    assert result.rows
