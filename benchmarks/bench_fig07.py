"""Benchmark: Range-anycast hop distribution, MID -> [0.85, 0.95] (Fig 7).

Paper: 100% success; all but HS-only deliver within 1 hop w.h.p.
"""

from repro.experiments.figures import fig07

from conftest import run_figure_benchmark


def test_fig07(benchmark, bench_scale, bench_seed):
    result = run_figure_benchmark(
        benchmark, fig07.run, bench_scale, bench_seed
    )
    assert result.rows
