"""Benchmark: Flooding attack acceptance (Fig 5).

Paper: < 10% of non-neighbors accept a selfish node's messages (cushion 0).
"""

from repro.experiments.figures import fig05

from conftest import run_figure_benchmark


def test_fig05(benchmark, bench_scale, bench_seed):
    result = run_figure_benchmark(
        benchmark, fig05.run, bench_scale, bench_seed
    )
    assert result.rows
