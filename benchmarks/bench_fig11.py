"""Benchmark: Multicast worst-case latency CDF (Fig 11).

Paper: flooding completes below ~300 ms; gossip below ~5.5 s.
"""

from repro.experiments.figures import fig11

from conftest import run_figure_benchmark


def test_fig11(benchmark, bench_scale, bench_seed):
    result = run_figure_benchmark(
        benchmark, fig11.run, bench_scale, bench_seed
    )
    assert result.rows
