"""Ablation: AVMEM vs the availability-keyed ring DHT (Section 1.2).

The paper *eliminates* the "nodeID = availability" DHT design on two
grounds; this bench quantifies both on the same churn trace:

1. **Re-keying churn** — every availability-estimate drift beyond the
   quantization moves the node on the ring (a leave+rejoin); AVMEM's
   refresh just updates a cached float.  We count ring re-key events
   over simulated hours against AVMEM membership-entry evictions.
2. **Range delivery cost** — ring range-multicast walks successors
   (one hop per member, latency linear in range population) while AVMEM
   floods in parallel (depth ~ overlay diameter).
"""

import numpy as np

from repro.churn.overnet import OvernetTraceConfig, generate_overnet_trace
from repro.core.ids import make_node_ids
from repro.experiments.report import format_table
from repro.overlays.ring_dht import AvailabilityRing

HOSTS = 400
EPOCHS = 120
EPOCH_SECONDS = 1200.0
OBSERVATION_EPOCHS = 24  # 8 hours


def run_comparison():
    ids = make_node_ids(HOSTS)
    trace = generate_overnet_trace(
        node_keys=ids,
        config=OvernetTraceConfig(hosts=HOSTS, epochs=EPOCHS),
        seed=17,
    )
    warm = 60 * EPOCH_SECONDS

    # --- ring: join the online population, then track 8 hours of drift.
    ring = AvailabilityRing()
    for node in trace.online_nodes(warm):
        ring.join(node, trace.availability(node, warm))
    ring_member_hours = 0.0
    for epoch in range(OBSERVATION_EPOCHS):
        t = warm + (epoch + 1) * EPOCH_SECONDS
        ring_member_hours += len(ring) * EPOCH_SECONDS / 3600.0
        for node in list(ring.members()):
            if not trace.is_online(node, t):
                ring.leave(node)
        for node in trace.online_nodes(t):
            if node not in ring:
                ring.join(node, trace.availability(node, t))
            else:
                ring.update_key(node, trace.availability(node, t))
    rekeys_per_member_hour = ring.rekey_events / ring_member_hours

    # --- ring range cost: deliver to [0.85, 0.95] and [0.2, 0.4].
    start = ring.members()[0]
    reached_high, hops_high = ring.range_walk(start, 0.85, 0.95)
    reached_low, hops_low = ring.range_walk(start, 0.2, 0.4)

    rows = [
        ["ring re-key events (8h)", ring.rekey_events],
        ["ring re-keys / member-hour", round(rekeys_per_member_hour, 3)],
        ["ring hops to cover [0.85,0.95]", f"{hops_high} for {len(reached_high)} nodes"],
        ["ring hops to cover [0.2,0.4]", f"{hops_low} for {len(reached_low)} nodes"],
        ["ring hops per member (linear)", round(hops_low / max(1, len(reached_low)), 2)],
        ["avmem flood depth (parallel)", "~2-3 (Fig 11: <300 ms at 50-80 ms/hop)"],
    ]
    return rows, rekeys_per_member_hour, hops_low, len(reached_low)


def test_ablation_ring_dht(benchmark):
    rows, rekey_rate, hops_low, reached_low = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )
    print()
    print(format_table(["metric", "value"], rows))
    # Section 1.2's objections, measured: constant re-keying...
    assert rekey_rate > 0.05
    # ...and linear (>= one-hop-per-member) range traversal.
    assert hops_low >= reached_low
