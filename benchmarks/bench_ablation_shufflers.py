"""Ablation: the shuffling-membership substrate.

The paper lists SCAMP, CYCLON, T-MAN, LOCKSS, and AVMON's coarse view as
interchangeable substrates for discovery (Section 3.1).  This bench runs
AVMEM discovery over three of our implementations — the idealized global
sampler, the CYCLON-style coarse-view swapper, and faithful CYCLON with
aged entries — and compares discovery progress after a fixed number of
rounds, validating the "black box" claim.
"""

import numpy as np

from repro.churn.trace import ChurnTrace, NodeSchedule
from repro.core.availability import AvailabilityPdf
from repro.core.config import AvmemConfig
from repro.core.ids import make_node_ids
from repro.core.node import AvmemNode
from repro.core.predicates import NodeDescriptor, paper_predicate
from repro.experiments.report import format_table
from repro.monitor.cache import CachedAvailabilityView
from repro.monitor.coarse_view import GlobalSampleView, ShuffledCoarseView
from repro.overlays.cyclon import CyclonView
from repro.sim.engine import Simulator
from repro.sim.network import Network

POPULATION = 300
VIEW_SIZE = 18
ROUNDS = 30


def _run_with(make_provider, seed=0):
    rng = np.random.default_rng(seed)
    ids = make_node_ids(POPULATION)
    schedules = {node: NodeSchedule([(0.0, 1e9)]) for node in ids}
    trace = ChurnTrace(schedules, horizon=1e9)
    sim = Simulator()
    network = Network(sim, presence=trace, rng=rng)
    avs = rng.uniform(0.05, 0.95, POPULATION)
    index = {node: i for i, node in enumerate(ids)}
    pdf = AvailabilityPdf.from_samples(avs, online_weighted=False)
    predicate = paper_predicate(pdf)

    class Fixed:
        def query(self, node):
            return float(avs[index[node]])

    provider, advance = make_provider(sim, ids, rng, trace)
    service = Fixed()
    probes = ids[:10]
    nodes = [
        AvmemNode(
            node_id, sim, network, predicate, AvmemConfig(),
            CachedAvailabilityView(service, sim), provider, rng=rng,
        )
        for node_id in probes
    ]
    truths = []
    for node_id in probes:
        me = NodeDescriptor(node_id, service.query(node_id))
        truths.append(
            sum(
                1
                for other in ids
                if other != node_id
                and predicate.evaluate(me, NodeDescriptor(other, service.query(other)))
            )
        )
    for _ in range(ROUNDS):
        for node in nodes:
            node.discovery_step()
        advance()
        sim.run_until(sim.now + 60.0)
    fractions = [
        node.lists.total_count / truth if truth else float("nan")
        for node, truth in zip(nodes, truths)
    ]
    return float(np.nanmean(fractions))


def _global(sim, ids, rng, trace):
    provider = GlobalSampleView(
        sim, ids, VIEW_SIZE, rng=rng, presence=trace, stale_fraction=0.0
    )
    return provider, lambda: None


def _shuffled(sim, ids, rng, trace):
    provider = ShuffledCoarseView(
        sim, ids, VIEW_SIZE, rng=rng, presence=trace, start=False
    )
    return provider, provider.step


def _cyclon(sim, ids, rng, trace):
    provider = CyclonView(
        sim, ids, VIEW_SIZE, max(1, VIEW_SIZE // 2), rng=rng,
        presence=trace, start=False,
    )
    return provider, provider.step


def run_comparison():
    return [
        ["global-sample", _run_with(_global)],
        ["coarse-view swap", _run_with(_shuffled)],
        ["cyclon", _run_with(_cyclon)],
    ]


def test_ablation_shufflers(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print()
    print(format_table(["substrate", "discovered_fraction"], rows))
    # Every substrate must make real discovery progress — the "usable as
    # a black box" claim.
    for name, fraction in rows:
        assert fraction > 0.2, name
