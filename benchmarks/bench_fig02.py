"""Benchmark: System snapshot: online population, HS/VS sizes vs availability (Fig 2).

Paper: 442 online nodes; HS median grows with availability; VS median uncorrelated.
"""

from repro.experiments.figures import fig02

from conftest import run_figure_benchmark


def test_fig02(benchmark, bench_scale, bench_seed):
    result = run_figure_benchmark(
        benchmark, fig02.run, bench_scale, bench_seed
    )
    assert result.rows
