"""Benchmark configuration.

Each benchmark regenerates one of the paper's evaluation figures and
prints the same rows/series the paper plots, so a run of

    pytest benchmarks/ --benchmark-only

doubles as the reproduction report.  The scale defaults to ``medium``
(same experimental shape as the paper at ~4x less compute); set
``AVMEM_BENCH_SCALE=full`` for the paper's exact 1442-host setup or
``small`` for a quick pass.

Figure experiments are end-to-end simulations (minutes at full scale),
so every benchmark uses ``benchmark.pedantic(rounds=1, iterations=1)``
— the timing is a one-shot wall-clock measurement, not a statistical
microbenchmark.
"""

from __future__ import annotations

import os

import pytest

BENCH_SCALE = os.environ.get("AVMEM_BENCH_SCALE", "medium")
BENCH_SEED = int(os.environ.get("AVMEM_BENCH_SEED", "0"))


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return BENCH_SEED


def run_figure_benchmark(benchmark, runner, scale: str, seed: int, **kwargs):
    """Execute one figure driver under pytest-benchmark and print it."""
    result = benchmark.pedantic(
        runner, kwargs=dict(scale=scale, seed=seed, **kwargs), rounds=1, iterations=1
    )
    print()
    print(result.render())
    return result
