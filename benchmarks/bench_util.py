"""Shared benchmark plumbing: machine-readable result emission.

Every benchmark script prints a human table *and* writes a
``BENCH_<name>.json`` record via :func:`emit_bench_json`, so the
performance trajectory is tracked across PRs instead of living only in
scrollback.  Records land in ``benchmarks/results/`` by default and
carry enough environment metadata (python/numpy versions) to interpret
regressions.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Optional

import numpy as np

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platform
    resource = None

__all__ = ["emit_bench_json", "peak_rss_mb", "RESULTS_DIR"]

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def peak_rss_mb() -> Optional[float]:
    """Peak resident set size of this process so far, in MiB.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; returns None
    where the ``resource`` module is unavailable (non-POSIX).  This is a
    high-water mark — per-phase deltas need a subprocess per phase.
    """
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def emit_bench_json(name: str, payload: dict, path: Optional[str] = None) -> Path:
    """Write one benchmark's results as ``BENCH_<name>.json``.

    ``payload`` must be json-serializable; environment metadata — and the
    process's peak RSS in MiB, the memory-boundedness metric — is added
    under ``"environment"``.  Returns the path written.
    """
    target = Path(path) if path is not None else RESULTS_DIR / f"BENCH_{name}.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    record = {
        "benchmark": name,
        "environment": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "peak_rss_mb": peak_rss_mb(),
        },
        **payload,
    }
    with open(target, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"wrote {target}")
    return target
