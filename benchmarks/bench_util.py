"""Shared benchmark plumbing: machine-readable result emission.

Every benchmark script prints a human table *and* writes a
``BENCH_<name>.json`` record via :func:`emit_bench_json`, so the
performance trajectory is tracked across PRs instead of living only in
scrollback.  Records land in ``benchmarks/results/`` by default and
carry enough environment metadata (python/numpy versions) to interpret
regressions.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Optional

import numpy as np

__all__ = ["emit_bench_json", "RESULTS_DIR"]

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def emit_bench_json(name: str, payload: dict, path: Optional[str] = None) -> Path:
    """Write one benchmark's results as ``BENCH_<name>.json``.

    ``payload`` must be json-serializable; environment metadata is added
    under ``"environment"``.  Returns the path written.
    """
    target = Path(path) if path is not None else RESULTS_DIR / f"BENCH_{name}.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    record = {
        "benchmark": name,
        "environment": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        **payload,
    }
    with open(target, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"wrote {target}")
    return target
