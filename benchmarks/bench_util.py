"""Shared benchmark plumbing: machine-readable result emission.

Every benchmark script prints a human table *and* writes a
``BENCH_<name>.json`` record via :func:`emit_bench_json`, so the
performance trajectory is tracked across PRs instead of living only in
scrollback.  Records land in ``benchmarks/results/`` by default and
carry enough environment metadata (python/numpy versions) to interpret
regressions.

Importing this module enables the process-wide telemetry recorder
(:data:`repro.telemetry.TELEMETRY`) unless ``AVMEM_BENCH_TELEMETRY=0``,
so every benchmark automatically collects the instrumented phase spans;
:func:`emit_bench_json` embeds the resulting time-goes-where table under
``"telemetry"`` in each BENCH JSON.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Optional

import numpy as np

from repro.telemetry import TELEMETRY
from repro.telemetry.rss import peak_rss_mb

__all__ = ["emit_bench_json", "peak_rss_mb", "RESULTS_DIR"]

RESULTS_DIR = Path(__file__).resolve().parent / "results"

if os.environ.get("AVMEM_BENCH_TELEMETRY", "1") != "0":
    TELEMETRY.enable(reset=True)


def emit_bench_json(name: str, payload: dict, path: Optional[str] = None) -> Path:
    """Write one benchmark's results as ``BENCH_<name>.json``.

    ``payload`` must be json-serializable; environment metadata — and the
    process's peak RSS in MiB, the memory-boundedness metric — is added
    under ``"environment"``.  When the telemetry recorder is enabled and
    has recorded spans, their phase breakdown (total/self seconds per
    span path) is embedded under ``"telemetry"``.  Returns the path
    written.
    """
    target = Path(path) if path is not None else RESULTS_DIR / f"BENCH_{name}.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    record = {
        "benchmark": name,
        # Orders runs in `avmem telemetry trend` (falls back to file
        # mtime for records written before this field existed).
        "timestamp": time.time(),
        "environment": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "peak_rss_mb": peak_rss_mb(),
        },
        **payload,
    }
    if TELEMETRY.enabled:
        snapshot = TELEMETRY.snapshot()
        breakdown = snapshot.phase_breakdown()
        if breakdown:
            record["telemetry"] = {
                "wall_seconds": snapshot.wall_seconds,
                "phases": breakdown,
            }
    with open(target, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"wrote {target}")
    return target
