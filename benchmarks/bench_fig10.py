"""Benchmark: Retried-greedy anycast over a random overlay (Fig 10).

Paper: lower delivery than AVMEM (Fig 9) at similar latency.
"""

from repro.experiments.figures import fig10

from conftest import run_figure_benchmark


def test_fig10(benchmark, bench_scale, bench_seed):
    result = run_figure_benchmark(
        benchmark, fig10.run, bench_scale, bench_seed
    )
    assert result.rows
