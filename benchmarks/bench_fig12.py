"""Benchmark: Multicast spam-ratio CDF (Fig 12).

Paper: below ~8% for most scenarios.
"""

from repro.experiments.figures import fig12

from conftest import run_figure_benchmark


def test_fig12(benchmark, bench_scale, bench_seed):
    result = run_figure_benchmark(
        benchmark, fig12.run, bench_scale, bench_seed
    )
    assert result.rows
