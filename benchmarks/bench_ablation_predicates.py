"""Ablation: the sliver sub-predicate family (Section 2.1).

Builds static overlays over the same population under every
vertical × horizontal rule combination and reports mean sliver sizes,
degree spread, and 2ε-band connectivity — the properties Theorems 1-3
attribute to the logarithmic rules.  I.B+II.B (the paper's default)
should achieve band connectivity with O(log N*) degrees; the constant
rules either overshoot degrees or lose connectivity on skewed PDFs.
"""

import numpy as np

from repro.churn.overnet import sample_availabilities
from repro.core.availability import AvailabilityPdf
from repro.core.ids import make_node_ids
from repro.core.predicates import AvmemPredicate, NodeDescriptor
from repro.core.slivers import (
    ConstantHorizontal,
    ConstantVertical,
    LogarithmicConstantHorizontal,
    LogarithmicDecreasingVertical,
    LogarithmicVertical,
)
from repro.experiments.report import format_table
from repro.overlays.graphs import band_connectivity, build_overlay_graph, sliver_sizes

POPULATION = 600


def _population(seed=0):
    rng = np.random.default_rng(seed)
    ids = make_node_ids(POPULATION)
    avs = sample_availabilities(POPULATION, rng)
    pdf = AvailabilityPdf.from_samples(avs, online_weighted=False)
    descriptors = [NodeDescriptor(n, float(a)) for n, a in zip(ids, avs)]
    return descriptors, pdf


def _evaluate(descriptors, pdf, vertical, horizontal):
    predicate = AvmemPredicate(horizontal, vertical, pdf, epsilon=0.1)
    graph = build_overlay_graph(descriptors, predicate)
    sizes = sliver_sizes(graph)
    hs = [v[0] for v in sizes.values()]
    vs = [v[1] for v in sizes.values()]
    bands_connected = sum(
        band_connectivity(graph, c - 0.1, c + 0.1)
        for c in (0.15, 0.35, 0.55, 0.75, 0.95)
    )
    return {
        "hs_mean": float(np.mean(hs)),
        "vs_mean": float(np.mean(vs)),
        "deg_p99": float(np.percentile([h + v for h, v in zip(hs, vs)], 99)),
        "bands_connected": f"{bands_connected}/5",
    }


def run_ablation():
    descriptors, pdf = _population()
    n_star = pdf.n_star
    verticals = {
        "I.A const": ConstantVertical.from_target_count(3.0 * np.log(n_star), n_star),
        "I.B log": LogarithmicVertical(c1=3.0),
        "I.C log-decr": LogarithmicDecreasingVertical(c1=3.0),
    }
    horizontals = {
        "II.A const": ConstantHorizontal.from_target_count(
            1.0 * np.log(n_star), max(1.0, pdf.n_star_av(0.5, 0.1))
        ),
        "II.B log-const": LogarithmicConstantHorizontal(c2=1.0),
    }
    rows = []
    for v_name, vertical in verticals.items():
        for h_name, horizontal in horizontals.items():
            stats = _evaluate(descriptors, pdf, vertical, horizontal)
            rows.append(
                [f"{v_name} + {h_name}", stats["hs_mean"], stats["vs_mean"],
                 stats["deg_p99"], stats["bands_connected"]]
            )
    return rows


def test_ablation_predicates(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(format_table(
        ["rules", "hs_mean", "vs_mean", "deg_p99", "bands_connected"], rows
    ))
    assert len(rows) == 6
    # The paper's I.B + II.B pairing must keep every probed band connected.
    paper_row = next(r for r in rows if r[0] == "I.B log + II.B log-const")
    assert paper_row[4] == "5/5"
