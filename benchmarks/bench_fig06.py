"""Benchmark: Legitimate rejection rate (Fig 6).

Paper: < 30% rejection at cushion 0, < 20% at cushion 0.1.
"""

from repro.experiments.figures import fig06

from conftest import run_figure_benchmark


def test_fig06(benchmark, bench_scale, bench_seed):
    result = run_figure_benchmark(
        benchmark, fig06.run, bench_scale, bench_seed
    )
    assert result.rows
