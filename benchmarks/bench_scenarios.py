"""Scenario timeline + batched-oracle scaling sweep.

Two families of timings, swept over N ∈ {1k, 5k, 20k} (override with
``--sizes``) on a compiled ``pareto-heavy-tail`` scenario timeline:

* **Timeline queries** — population availability at one instant:
  per-node scalar :meth:`~repro.churn.trace.ChurnTrace.availability`
  loop (one bisect chain per node, the seed shape) vs one vectorized
  :meth:`~repro.churn.trace.ChurnTrace.availability_array` call through
  the columnar :class:`~repro.churn.timeline.ChurnTimeline`.

* **Refresh rounds through the oracle** — the protocol hot path this PR
  closes (ROADMAP: "refresh rounds still query the availability oracle
  per neighbor inside ``fetch_array``").  Every node refreshes its
  ``--neighbors`` cached availabilities:

  - ``seed``    — the seed per-neighbor path, preserved verbatim as
    :class:`SeedOracleAvailability` (the same convention
    ``bench_overlay_scale.py`` uses for the seed membership tables):
    one scalar ``query`` per neighbor with per-``(node, bucket)``
    Gaussian noise draws;
  - ``scalar``  — one *current* scalar
    :meth:`~repro.monitor.oracle.OracleAvailability.query` per neighbor
    (modernized noise, still per-neighbor — isolates the batching win);
  - ``batched`` — the current
    :meth:`~repro.monitor.cache.CachedAvailabilityView.fetch_array`:
    one :meth:`~repro.monitor.oracle.OracleAvailability.query_array`
    per owner, answered by one vectorized timeline pass.

Per-entry parity is asserted on every run: batched answers must match
the current scalar path (same oracle, noise on), and with noise
disabled the seed path, the batched path, and ``ChurnTrace`` ground
truth must agree entry for entry.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_scenarios.py
    PYTHONPATH=src python benchmarks/bench_scenarios.py --sizes 1000 5000

Acceptance bar: ≥ 3× batched-over-scalar refresh-round speedup at
N = 20k (asserted whenever the sweep includes N ≥ 20000).  Results are
also written to ``benchmarks/results/BENCH_scenarios.json``
(:mod:`bench_util`).
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List

import numpy as np

from repro.churn.trace import ChurnTrace
from repro.core.ids import make_node_ids
from repro.monitor.cache import CachedAvailabilityView
from repro.monitor.oracle import OracleAvailability
from repro.scenarios.registry import get_scenario
from repro.sim.engine import Simulator
from repro.util.randomness import derive_seed

from bench_util import emit_bench_json

DEFAULT_SIZES = (1_000, 5_000, 20_000)
SCENARIO = "pareto-heavy-tail"
EPOCHS = 96
EPOCH_SECONDS = 1200.0
WINDOW = 86_400.0


def timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def build_trace(n: int, seed: int) -> ChurnTrace:
    compiled = get_scenario(SCENARIO).compile(
        hosts=n, epochs=EPOCHS, epoch_seconds=EPOCH_SECONDS, seed=seed
    )
    return compiled.to_trace(make_node_ids(n))


class SeedOracleAvailability:
    """The seed oracle, preserved verbatim as the benchmark baseline.

    Scalar queries with *per-(node, time-bucket)* noise draws — a fresh
    ``default_rng`` per cache miss — exactly the per-neighbor path
    ``AvmemNode.refresh_step`` paid before the timeline batch API."""

    def __init__(self, trace, sim, window=None, noise_std=0.0,
                 quantization=0.0, noise_bucket=1200.0, seed=0):
        self.trace = trace
        self.sim = sim
        self.window = window
        self.noise_std = noise_std
        self.quantization = quantization
        self.noise_bucket = noise_bucket
        self._seed = int(seed)
        self._noise_cache: dict = {}

    def query(self, node) -> float:
        if node not in self.trace:
            raise KeyError(f"unknown node {node!r}")
        now = self.sim.now
        if self.window is None:
            value = self.trace.availability(node, now)
        else:
            value = self.trace.windowed_availability(node, now, self.window)
        if self.noise_std > 0.0:
            value += self._noise(node, now)
        if self.quantization > 0.0:
            value = round(value / self.quantization) * self.quantization
        return float(min(1.0, max(0.0, value)))

    def _noise(self, node, now: float) -> float:
        bucket = int(now / self.noise_bucket)
        key = (node, bucket)
        cached = self._noise_cache.get(key)
        if cached is None:
            rng = np.random.default_rng(
                derive_seed(self._seed, f"oracle-noise:{node.endpoint}:{bucket}")
            )
            cached = float(rng.normal(0.0, self.noise_std))
            if len(self._noise_cache) > 200_000:
                self._noise_cache.clear()
            self._noise_cache[key] = cached
        return cached


def scalar_fetch_array(view: CachedAvailabilityView, nodes) -> np.ndarray:
    """The seed ``fetch_array``: one scalar service query per neighbor."""
    return np.fromiter(
        (view.fetch(node) for node in nodes), dtype=float, count=len(nodes)
    )


def refresh_round(views, neighbor_lists, fetch) -> List[np.ndarray]:
    return [fetch(view, nodes) for view, nodes in zip(views, neighbor_lists)]


def sweep_size(n: int, seed: int, neighbors: int) -> Dict[str, object]:
    trace = build_trace(n, seed)
    nodes = list(trace.nodes)
    t = 0.6 * trace.horizon

    # -- timeline queries: population availability at one instant -------
    scalar_av, scalar_s = timed(
        lambda: np.array([trace.availability(node, t) for node in nodes])
    )
    batch_av, batch_s = timed(trace.availability_array, nodes, t)
    assert np.allclose(scalar_av, batch_av, rtol=0.0, atol=1e-9), (
        "timeline availability parity violated"
    )

    # -- refresh rounds through the oracle ------------------------------
    sim = Simulator()
    sim.run_until(t)
    rng = np.random.default_rng(seed)
    neighbor_lists = [
        [nodes[j] for j in rng.choice(n, size=min(neighbors, n), replace=False)]
        for _ in range(n)
    ]
    oracle = OracleAvailability(trace, sim, window=WINDOW, noise_std=0.02, seed=seed)
    seed_oracle = SeedOracleAvailability(
        trace, sim, window=WINDOW, noise_std=0.02, seed=seed
    )
    seed_views = [CachedAvailabilityView(seed_oracle, sim) for _ in range(n)]
    scalar_views = [CachedAvailabilityView(oracle, sim) for _ in range(n)]
    batch_views = [CachedAvailabilityView(oracle, sim) for _ in range(n)]
    _, refr_seed_s = timed(
        refresh_round, seed_views, neighbor_lists, scalar_fetch_array
    )
    scalar_vals, refr_scalar_s = timed(
        refresh_round, scalar_views, neighbor_lists, scalar_fetch_array
    )
    batch_vals, refr_batch_s = timed(
        refresh_round, batch_views, neighbor_lists,
        CachedAvailabilityView.fetch_array,
    )
    for row_scalar, row_batch in zip(scalar_vals, batch_vals):
        assert np.allclose(row_scalar, row_batch, rtol=0.0, atol=1e-9), (
            "scalar/batched refresh fetch parity violated"
        )

    # -- ground truth: noise off, every path must equal the trace -------
    exact = OracleAvailability(trace, sim, window=WINDOW, noise_std=0.0)
    exact_seed = SeedOracleAvailability(trace, sim, window=WINDOW, noise_std=0.0)
    exact_view = CachedAvailabilityView(exact, sim)
    probe = neighbor_lists[0]
    truth = np.array(
        [trace.windowed_availability(node, sim.now, WINDOW) for node in probe]
    )
    assert np.allclose(exact_view.fetch_array(probe), truth, rtol=0.0, atol=1e-9), (
        "batched oracle diverges from ChurnTrace ground truth"
    )
    assert np.allclose(
        np.array([exact.query(node) for node in probe]), truth, rtol=0.0, atol=1e-9
    ), "scalar oracle diverges from ChurnTrace ground truth"
    assert np.allclose(
        np.array([exact_seed.query(node) for node in probe]), truth,
        rtol=0.0, atol=1e-9,
    ), "seed oracle diverges from ChurnTrace ground truth"

    return {
        "n": n,
        "sessions": trace.timeline.session_count,
        "neighbors_per_node": min(neighbors, n),
        "timeline_scalar_s": scalar_s,
        "timeline_batch_s": batch_s,
        "timeline_speedup": scalar_s / batch_s,
        "refresh_seed_s": refr_seed_s,
        "refresh_scalar_s": refr_scalar_s,
        "refresh_batch_s": refr_batch_s,
        "refresh_speedup": refr_seed_s / refr_batch_s,
        "refresh_speedup_vs_modern_scalar": refr_scalar_s / refr_batch_s,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="population sizes to sweep",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--neighbors", type=int, default=64,
        help="cached neighbors refreshed per node per round",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="result path (default: benchmarks/results/BENCH_scenarios.json)",
    )
    args = parser.parse_args(argv)

    print(
        f"scenario={SCENARIO}  epochs={EPOCHS}  window={WINDOW:.0f}s  "
        f"neighbors/node={args.neighbors}"
    )
    print(
        f"{'N':>8} {'tl_scalar':>10} {'tl_batch':>9} {'tl_x':>7} "
        f"{'refr_seed':>10} {'refr_scalar':>12} {'refr_batch':>11} "
        f"{'refr_x':>7} {'sessions':>9}"
    )
    rows = []
    for n in args.sizes:
        row = sweep_size(n, args.seed, args.neighbors)
        rows.append(row)
        print(
            f"{row['n']:>8} {row['timeline_scalar_s']:10.3f} "
            f"{row['timeline_batch_s']:9.3f} {row['timeline_speedup']:6.1f}x "
            f"{row['refresh_seed_s']:10.3f} {row['refresh_scalar_s']:12.3f} "
            f"{row['refresh_batch_s']:11.3f} "
            f"{row['refresh_speedup']:6.1f}x {row['sessions']:>9}"
        )
    emit_bench_json(
        "scenarios",
        {
            "scenario": SCENARIO,
            "epochs": EPOCHS,
            "window_seconds": WINDOW,
            "neighbors_per_node": args.neighbors,
            "seed": args.seed,
            "results": rows,
        },
        path=args.json_out,
    )
    for row in rows:
        if row["n"] >= 20_000:
            assert row["refresh_speedup"] >= 3.0, (
                f"acceptance bar missed: {row['refresh_speedup']:.1f}x "
                f"batched refresh speedup at N={row['n']} (need >= 3x)"
            )
            print(
                f"acceptance OK: {row['refresh_speedup']:.1f}x batched refresh "
                f"speedup at N={row['n']} (bar: 3x)"
            )


if __name__ == "__main__":
    main()
