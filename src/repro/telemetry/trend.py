"""Cross-run phase-time trends over a directory of BENCH JSON records.

Benchmarks emit ``BENCH_<name>.json`` files with an embedded telemetry
phase table (``{"telemetry": {"phases": [{"phase", "count", "seconds",
"self_seconds"}, ...]}}``).  :func:`collect_runs` walks a directory tree
for such records, groups them by benchmark name, and orders each group
by the record's ``timestamp`` (file mtime for records predating that
field); :func:`phase_trends` then reports, per benchmark and phase, the
first→last self-seconds trajectory and flags regressions past a
relative threshold.  ``avmem telemetry trend DIR`` renders the result.

Only records carrying a phase table participate — a BENCH file written
with telemetry disabled is listed as skipped, not an error, so mixed
result directories stay usable.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["BenchRun", "PhaseTrend", "collect_runs", "phase_trends", "render_trends"]


@dataclass(frozen=True)
class BenchRun:
    """One BENCH_*.json record that carries a telemetry phase table."""

    benchmark: str
    path: str
    timestamp: float
    wall_seconds: Optional[float]
    #: phase -> (count, seconds, self_seconds)
    phases: Dict[str, Tuple[int, float, float]]


@dataclass(frozen=True)
class PhaseTrend:
    """One (benchmark, phase) trajectory across ordered runs."""

    benchmark: str
    phase: str
    runs: int
    first_self_seconds: float
    last_self_seconds: float

    @property
    def delta_seconds(self) -> float:
        return self.last_self_seconds - self.first_self_seconds

    @property
    def ratio(self) -> float:
        """last/first; inf when the phase appeared from zero."""
        if self.first_self_seconds > 0:
            return self.last_self_seconds / self.first_self_seconds
        return float("inf") if self.last_self_seconds > 0 else 1.0

    def regressed(self, threshold: float, min_seconds: float) -> bool:
        """Slower by more than ``threshold`` (relative) *and* by at least
        ``min_seconds`` absolute — tiny phases jitter far above any
        sensible ratio, so both gates must trip."""
        return (
            self.delta_seconds >= min_seconds
            and self.ratio >= 1.0 + threshold
        )


def _load_record(path: str) -> Optional[BenchRun]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            record = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(record, dict) or "benchmark" not in record:
        return None
    telemetry = record.get("telemetry") or {}
    rows = telemetry.get("phases") or []
    phases = {
        str(row["phase"]): (
            int(row.get("count", 0)),
            float(row.get("seconds", 0.0)),
            float(row.get("self_seconds", 0.0)),
        )
        for row in rows
        if isinstance(row, dict) and "phase" in row
    }
    if not phases:
        return None
    timestamp = record.get("timestamp")
    if timestamp is None:
        timestamp = os.path.getmtime(path)
    return BenchRun(
        benchmark=str(record["benchmark"]),
        path=path,
        timestamp=float(timestamp),
        wall_seconds=telemetry.get("wall_seconds"),
        phases=phases,
    )


def collect_runs(directory: str) -> Tuple[Dict[str, List[BenchRun]], List[str]]:
    """(benchmark -> time-ordered runs, skipped file paths).

    Walks ``directory`` recursively for ``BENCH_*.json``; files without
    an embedded phase table land in the skipped list.
    """
    groups: Dict[str, List[BenchRun]] = {}
    skipped: List[str] = []
    for root, __, names in sorted(os.walk(directory)):
        for name in sorted(names):
            if not (name.startswith("BENCH_") and name.endswith(".json")):
                continue
            path = os.path.join(root, name)
            run = _load_record(path)
            if run is None:
                skipped.append(path)
            else:
                groups.setdefault(run.benchmark, []).append(run)
    for runs in groups.values():
        runs.sort(key=lambda r: (r.timestamp, r.path))
    return groups, skipped


def phase_trends(groups: Dict[str, List[BenchRun]]) -> List[PhaseTrend]:
    """First→last trajectory per (benchmark, phase), sorted by benchmark
    then descending last self-seconds (the expensive phases first)."""
    out: List[PhaseTrend] = []
    for benchmark in sorted(groups):
        runs = groups[benchmark]
        phases = sorted({phase for run in runs for phase in run.phases})
        for phase in phases:
            present = [run for run in runs if phase in run.phases]
            out.append(
                PhaseTrend(
                    benchmark=benchmark,
                    phase=phase,
                    runs=len(present),
                    first_self_seconds=present[0].phases[phase][2],
                    last_self_seconds=present[-1].phases[phase][2],
                )
            )
    out.sort(key=lambda t: (t.benchmark, -t.last_self_seconds))
    return out


def render_trends(
    trends: List[PhaseTrend],
    threshold: float = 0.25,
    min_seconds: float = 0.05,
) -> str:
    """The CLI table; regressed rows carry a trailing ``<-- regression``."""
    if not trends:
        return "no BENCH records with telemetry phase tables found"
    lines = []
    width = max(len(t.phase) for t in trends)
    benchmark = None
    for trend in trends:
        if trend.benchmark != benchmark:
            benchmark = trend.benchmark
            lines.append(f"{benchmark} ({trend.runs} run(s)):")
            lines.append(
                f"  {'phase':<{width}}  {'first':>9}  {'last':>9}  "
                f"{'delta':>9}  ratio"
            )
        flag = (
            "  <-- regression"
            if trend.regressed(threshold, min_seconds)
            else ""
        )
        ratio = "inf" if trend.ratio == float("inf") else f"{trend.ratio:.2f}x"
        lines.append(
            f"  {trend.phase:<{width}}  {trend.first_self_seconds:>8.3f}s  "
            f"{trend.last_self_seconds:>8.3f}s  {trend.delta_seconds:>+8.3f}s  "
            f"{ratio}{flag}"
        )
    return "\n".join(lines)
