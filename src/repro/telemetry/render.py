"""Human rendering of telemetry snapshots: summarize one, diff two.

``repro telemetry summarize A.json`` pretty-prints one snapshot — the
span tree with per-phase totals and percentages of run wall-clock,
then counters, gauges, histograms, and distribution summaries.  With a
second file it renders a side-by-side diff (absolute and relative
deltas) — the perf-regression triage view.
"""

from __future__ import annotations

from typing import Dict, List

from repro.telemetry.snapshot import SpanStat, TelemetrySnapshot

__all__ = ["render_snapshot", "render_diff"]


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 100.0:
        return f"{seconds:.1f}s"
    if seconds >= 0.1:
        return f"{seconds:.3f}s"
    return f"{seconds * 1000.0:.2f}ms"


def _render_span(
    span: SpanStat, wall: float, depth: int, lines: List[str]
) -> None:
    pct = 100.0 * span.seconds / wall if wall > 0 else float("nan")
    indent = "  " * depth
    lines.append(
        f"  {indent}{span.name:<{max(4, 40 - 2 * depth)}} "
        f"{_fmt_seconds(span.seconds):>10}  {pct:5.1f}%  "
        f"x{span.count}"
    )
    for child in span.children:
        _render_span(child, wall, depth + 1, lines)


def render_snapshot(snapshot: TelemetrySnapshot) -> str:
    """One snapshot as a readable report."""
    lines: List[str] = []
    wall = snapshot.wall_seconds
    coverage = snapshot.span_coverage()
    lines.append(
        f"wall-clock: {_fmt_seconds(wall)}   "
        f"span coverage: {100.0 * coverage:.1f}%"
        if coverage == coverage
        else f"wall-clock: {_fmt_seconds(wall)}"
    )
    if snapshot.spans:
        lines.append("spans (total, % of wall, calls):")
        for span in snapshot.spans:
            _render_span(span, wall, 0, lines)
    if snapshot.counters:
        lines.append("counters:")
        for name, value in snapshot.counters.items():
            lines.append(f"  {name:<42} {value}")
    if snapshot.gauges:
        lines.append("gauges (last sample):")
        for name, value in snapshot.gauges.items():
            lines.append(f"  {name:<42} {value:g}")
    if snapshot.histograms:
        lines.append("histograms:")
        for name, hist in snapshot.histograms.items():
            count = hist.get("count", 0)
            if count:
                mean = hist.get("sum", 0.0) / count
                lines.append(
                    f"  {name:<42} n={count} mean={mean:.2f} "
                    f"min={hist.get('min'):g} max={hist.get('max'):g}"
                )
            else:
                lines.append(f"  {name:<42} n=0")
    if snapshot.distributions:
        lines.append("distributions:")
        for name, summary in snapshot.distributions.items():
            rendered = " ".join(
                f"{key}={value:g}" for key, value in summary.items()
            )
            lines.append(f"  {name:<42} {rendered}")
    return "\n".join(lines)


def _diff_rows(
    a: Dict[str, float], b: Dict[str, float], fmt
) -> List[str]:
    lines: List[str] = []
    for name in sorted(set(a) | set(b)):
        va, vb = a.get(name), b.get(name)
        if va is None:
            lines.append(f"  {name:<42} {'—':>12} -> {fmt(vb):>12}  (new)")
        elif vb is None:
            lines.append(f"  {name:<42} {fmt(va):>12} -> {'—':>12}  (gone)")
        else:
            delta = vb - va
            ratio = f" ({vb / va:.2f}x)" if va else ""
            lines.append(
                f"  {name:<42} {fmt(va):>12} -> {fmt(vb):>12}  "
                f"{'+' if delta >= 0 else ''}{fmt(delta)}{ratio}"
            )
    return lines


def render_diff(a: TelemetrySnapshot, b: TelemetrySnapshot) -> str:
    """Two snapshots side by side: A -> B with deltas (regression
    triage)."""
    lines: List[str] = []
    lines.append(
        f"wall-clock: {_fmt_seconds(a.wall_seconds)} -> "
        f"{_fmt_seconds(b.wall_seconds)}"
    )
    spans_a = {path: node.seconds for path, node in a.span_paths().items()}
    spans_b = {path: node.seconds for path, node in b.span_paths().items()}
    if spans_a or spans_b:
        lines.append("span seconds:")
        lines.extend(_diff_rows(spans_a, spans_b, _fmt_seconds))
    counters_a = {k: float(v) for k, v in a.counters.items()}
    counters_b = {k: float(v) for k, v in b.counters.items()}
    if counters_a or counters_b:
        lines.append("counters:")
        lines.extend(_diff_rows(counters_a, counters_b, lambda v: f"{v:g}"))
    hist_a = {
        k: (v.get("sum", 0.0) / v["count"] if v.get("count") else 0.0)
        for k, v in a.histograms.items()
    }
    hist_b = {
        k: (v.get("sum", 0.0) / v["count"] if v.get("count") else 0.0)
        for k, v in b.histograms.items()
    }
    if hist_a or hist_b:
        lines.append("histogram means:")
        lines.extend(_diff_rows(hist_a, hist_b, lambda v: f"{v:.2f}"))
    return "\n".join(lines)
