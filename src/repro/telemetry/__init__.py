"""Run-level telemetry: counters, gauges, histograms, spans, snapshots.

AVMEM's premise is management operations over a *monitored* overlay;
this package applies the same discipline to our own runs.  The
process-wide :data:`TELEMETRY` recorder (disabled by default — hot
paths pay one attribute check) collects phase spans and event-loop /
dispatch statistics from hook points through the whole stack, freezes
them into an exactly-JSON-round-tripping
:class:`~repro.telemetry.snapshot.TelemetrySnapshot`, and renders them
via ``repro telemetry summarize``.  See ``docs/observability.md``.

Typical use::

    from repro.telemetry import TELEMETRY

    TELEMETRY.enable()
    ...  # any instrumented run
    snapshot = TELEMETRY.snapshot()
    snapshot.to_json("telemetry.json")

Hook-point guard idiom (hot paths)::

    if TELEMETRY.enabled:
        TELEMETRY.observe("net.cohort_size", n)

and for phases (cheap even when disabled — the disabled recorder hands
back a shared no-op context manager)::

    with TELEMETRY.span("overlay.build"):
        ...
"""

from repro.telemetry.core import (
    TELEMETRY,
    Histogram,
    TelemetryRecorder,
    current,
    use_recorder,
)
from repro.telemetry.progress import ProgressReporter
from repro.telemetry.render import render_diff, render_snapshot
from repro.telemetry.rss import current_rss_mb, peak_rss_mb, ru_maxrss_to_mb
from repro.telemetry.snapshot import SpanStat, TelemetrySnapshot

__all__ = [
    "TELEMETRY",
    "current",
    "use_recorder",
    "TelemetryRecorder",
    "Histogram",
    "TelemetrySnapshot",
    "SpanStat",
    "ProgressReporter",
    "render_snapshot",
    "render_diff",
    "peak_rss_mb",
    "current_rss_mb",
    "ru_maxrss_to_mb",
]
