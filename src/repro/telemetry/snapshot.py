"""Frozen telemetry state: :class:`TelemetrySnapshot`.

A snapshot is everything one run recorded — counters, gauges,
histograms, distribution summaries, and the aggregated span tree — as a
plain immutable value with **exact** JSON round-trip
(``TelemetrySnapshot.from_json(path)`` after ``to_json(path)`` compares
equal), the same discipline as
:class:`~repro.ops.log.OperationLog`.  ``repro telemetry summarize``
renders one snapshot or diffs two (see :mod:`repro.telemetry.render`).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["TelemetrySnapshot", "SpanStat", "FORMAT"]

FORMAT = "avmem-telemetry-v1"


@dataclass(frozen=True)
class SpanStat:
    """One aggregated node of the span tree.

    ``seconds`` is the total wall-clock spent inside this span path
    (including children); ``self_seconds`` subtracts the children.
    """

    name: str
    count: int
    seconds: float
    children: Tuple["SpanStat", ...] = ()

    @property
    def self_seconds(self) -> float:
        return self.seconds - sum(child.seconds for child in self.children)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "count": int(self.count),
            "seconds": float(self.seconds),
            "children": [child.as_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SpanStat":
        return cls(
            name=str(payload["name"]),
            count=int(payload["count"]),
            seconds=float(payload["seconds"]),
            children=tuple(
                cls.from_dict(child) for child in payload.get("children", ())
            ),
        )

    def walk(self, prefix: str = "") -> Iterator[Tuple[str, "SpanStat"]]:
        """Yield ``(dotted_path, node)`` depth-first."""
        path = f"{prefix}.{self.name}" if prefix else self.name
        yield path, self
        for child in self.children:
            yield from child.walk(path)


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Immutable record of one run's telemetry (see module docstring)."""

    wall_seconds: float
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, object]] = field(default_factory=dict)
    distributions: Dict[str, Dict[str, float]] = field(default_factory=dict)
    spans: Tuple[SpanStat, ...] = ()

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def span_seconds(self) -> float:
        """Total wall-clock covered by the top-level spans."""
        return sum(span.seconds for span in self.spans)

    def span_coverage(self) -> float:
        """Fraction of the run wall-clock the span tree accounts for
        (NaN when no wall time elapsed)."""
        if not self.wall_seconds or self.wall_seconds <= 0:
            return float("nan")
        return self.span_seconds() / self.wall_seconds

    def span_paths(self) -> Dict[str, SpanStat]:
        """Flat ``dotted.path -> SpanStat`` index over the tree."""
        out: Dict[str, SpanStat] = {}
        for span in self.spans:
            for path, node in span.walk():
                out[path] = node
        return out

    def find_span(self, path: str) -> Optional[SpanStat]:
        return self.span_paths().get(path)

    def phase_breakdown(self) -> List[Dict[str, object]]:
        """The time-goes-where table: one row per span path, depth-first,
        with total and self seconds — what ``bench_util.emit_bench_json``
        embeds into every BENCH JSON."""
        rows: List[Dict[str, object]] = []
        for path, node in self.span_paths().items():
            rows.append(
                {
                    "phase": path,
                    "count": int(node.count),
                    "seconds": float(node.seconds),
                    "self_seconds": float(node.self_seconds),
                }
            )
        return rows

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        return {
            "format": FORMAT,
            "wall_seconds": float(self.wall_seconds),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
            "distributions": {k: dict(v) for k, v in self.distributions.items()},
            "spans": [span.as_dict() for span in self.spans],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TelemetrySnapshot":
        fmt = payload.get("format")
        if fmt != FORMAT:
            raise ValueError(f"not a telemetry snapshot (format {fmt!r})")
        return cls(
            wall_seconds=float(payload["wall_seconds"]),
            counters={str(k): int(v) for k, v in payload["counters"].items()},
            gauges={str(k): float(v) for k, v in payload["gauges"].items()},
            histograms={
                str(k): dict(v) for k, v in payload["histograms"].items()
            },
            distributions={
                str(k): {str(n): float(x) for n, x in v.items()}
                for k, v in payload["distributions"].items()
            },
            spans=tuple(SpanStat.from_dict(s) for s in payload["spans"]),
        )

    def to_json(self, path: str) -> None:
        """Write the snapshot as JSON.  NaN summary values (empty
        distributions) are scrubbed to null so the output is strictly
        valid JSON; everything else round-trips exactly (floats via
        shortest-repr)."""
        payload = self.as_dict()
        for summary in payload["distributions"].values():
            for key, value in summary.items():
                if isinstance(value, float) and math.isnan(value):
                    summary[key] = None
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, allow_nan=False)
            fh.write("\n")

    @classmethod
    def from_json(cls, path: str) -> "TelemetrySnapshot":
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        for summary in payload.get("distributions", {}).values():
            for key, value in summary.items():
                if value is None:
                    summary[key] = float("nan")
        return cls.from_dict(payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TelemetrySnapshot(wall={self.wall_seconds:.3f}s, "
            f"counters={len(self.counters)}, spans={len(self.spans)})"
        )
