"""Live progress reporting for long runs.

A :class:`ProgressReporter` attached to the recorder emits one stderr
line every ``interval`` wall-seconds — simulation time, cumulative
events and events/sec since the last line, pending queue depth, and
resident memory — so a 1M-node build or a multi-hour scenario run is
observable while running instead of only after the fact.

The reporter is *pulled*, never threaded: the simulator's event loop
pokes it every few thousand events and the overlay builders poke it per
block, each poke costing one wall-clock read unless the interval has
elapsed.  Pull-based reporting cannot interleave with simulation state
mid-mutation and dies naturally with the phase that stopped poking.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, TextIO

from repro.telemetry.rss import current_rss_mb

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Rate-limited stderr progress lines (see module docstring).

    Parameters
    ----------
    interval:
        Minimum wall-seconds between lines.
    stream:
        Defaults to ``sys.stderr`` (resolved at emit time so pytest's
        capture sees it).
    clock:
        Injectable wall clock for tests.
    """

    def __init__(
        self,
        interval: float = 10.0,
        stream: Optional[TextIO] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = float(interval)
        self._stream = stream
        self._clock = clock
        self._started = clock()
        self._last_emit = self._started
        self._last_events = 0
        self.lines_emitted = 0

    def poke(self, sim=None, context=None) -> bool:
        """Emit a line if the interval has elapsed.  Returns whether a
        line was written.  ``context`` is a phase label — a string or a
        zero-argument callable (deferred so non-emitting pokes never pay
        for formatting)."""
        now = self._clock()
        if now - self._last_emit < self.interval:
            return False
        elapsed = now - self._last_emit
        self._last_emit = now
        parts = [f"[progress +{now - self._started:.0f}s]"]
        if sim is not None:
            events = sim.events_processed
            rate = (events - self._last_events) / elapsed if elapsed > 0 else 0.0
            self._last_events = events
            parts.append(
                f"sim-t={sim.now:.0f}s events={events} "
                f"({rate:.0f}/s) pending={len(sim._queue)}"
            )
        if context is not None:
            parts.append(context() if callable(context) else str(context))
        rss = current_rss_mb()
        if rss is not None:
            parts.append(f"rss={rss:.0f}MiB")
        stream = self._stream if self._stream is not None else sys.stderr
        print(" ".join(parts), file=stream, flush=True)
        self.lines_emitted += 1
        return True
