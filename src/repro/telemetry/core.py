"""The process-wide telemetry recorder: counters, gauges, histograms,
and nested wall-clock spans.

One :class:`TelemetryRecorder` instance — the module singleton
``TELEMETRY`` re-exported from :mod:`repro.telemetry` — serves the whole
process.  It starts **disabled**: every hook point in the simulator, the
network, the operation engine, and the overlay builders guards its
instrumentation behind one ``TELEMETRY.enabled`` attribute check (or one
:meth:`~TelemetryRecorder.span` call returning the shared no-op context
manager), so an uninstrumented-feeling hot path is what disabled runs
pay.  The overhead bound is regression-tested in
``tests/test_telemetry.py``.

Instrumentation NEVER touches simulation state or randomness — it only
reads wall clocks and increments its own tallies — so seeded runs
produce bit-identical operation records with telemetry on or off
(also regression-tested).

The four primitives:

* **counters** — monotone event tallies (``sim.events``,
  ``net.drop.dst_offline``);
* **gauges** — last-write-wins samples (``sim.queue_depth``);
* **histograms** — numpy-backed power-of-two bucket tallies for
  non-negative sizes (dispatch cohort sizes, wavefront lengths);
* **spans** — nested wall-clock intervals aggregated into a tree keyed
  by the span-name path (``ops.execute`` → ``ops.advance`` →
  ``dispatch.flush``), with per-path call counts and total seconds.

Freeze everything with :meth:`TelemetryRecorder.snapshot` — a
:class:`~repro.telemetry.snapshot.TelemetrySnapshot` with exact JSON
round-trip.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "TelemetryRecorder",
    "Histogram",
    "TELEMETRY",
    "NULL_SPAN",
    "current",
    "use_recorder",
]

#: number of power-of-two buckets a histogram keeps (2^62 tops out any
#: conceivable cohort size)
_HIST_BUCKETS = 64

#: how many event-loop ticks pass between queue-depth/progress samples
_TICK_SAMPLE_EVERY = 2048


class Histogram:
    """Power-of-two bucket tally for non-negative values.

    Bucket 0 counts values in ``[0, 1]``; bucket ``i`` counts values in
    ``(2^(i-1), 2^i]``.  Exact count/sum/min/max ride along, so means
    stay exact even though the buckets are coarse.  Values are observed
    scalar (:meth:`observe`) or as whole arrays (:meth:`observe_array`)
    with one vectorized pass.
    """

    __slots__ = ("counts", "count", "total", "vmin", "vmax")

    def __init__(self):
        self.counts = np.zeros(_HIST_BUCKETS, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    @staticmethod
    def _bucket(value: float) -> int:
        if value <= 1.0:
            return 0
        # ceil(log2(v)) via integer bit length of ceil(v) - 1.
        return min(_HIST_BUCKETS - 1, (int(np.ceil(value)) - 1).bit_length())

    def observe(self, value: float) -> None:
        value = float(value)
        if value < 0:
            raise ValueError(f"histogram values must be non-negative, got {value}")
        self.counts[self._bucket(value)] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    def observe_array(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return
        if float(values.min()) < 0:
            raise ValueError("histogram values must be non-negative")
        buckets = np.zeros(values.shape, dtype=np.int64)
        above = values > 1.0
        if above.any():
            buckets[above] = np.minimum(
                _HIST_BUCKETS - 1,
                np.ceil(np.log2(np.ceil(values[above]))).astype(np.int64),
            )
        self.counts += np.bincount(buckets, minlength=_HIST_BUCKETS)
        self.count += int(values.size)
        self.total += float(values.sum())
        self.vmin = min(self.vmin, float(values.min()))
        self.vmax = max(self.vmax, float(values.max()))

    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for snapshots (empty histograms legal)."""
        nonzero = np.flatnonzero(self.counts)
        hi = int(nonzero[-1]) + 1 if nonzero.size else 0
        return {
            "counts": self.counts[:hi].tolist(),
            "count": int(self.count),
            "sum": float(self.total),
            "min": float(self.vmin) if self.count else None,
            "max": float(self.vmax) if self.count else None,
        }


class _SpanAgg:
    """One node of the aggregated span tree (keyed by name under its
    parent)."""

    __slots__ = ("name", "count", "total", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.children: Dict[str, "_SpanAgg"] = {}


class _NullSpan:
    """The shared no-op context manager handed out while disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """A live span: entering pushes onto the recorder's stack, exiting
    (on any path — normal or exception unwinding) pops and accumulates
    into the aggregated tree.  Re-entrant: recursive spans of the same
    name accumulate into one child node with per-entry timestamps."""

    __slots__ = ("_recorder", "_name", "_agg", "_t0")

    def __init__(self, recorder: "TelemetryRecorder", name: str):
        self._recorder = recorder
        self._name = name

    def __enter__(self):
        recorder = self._recorder
        stack = recorder._span_stack
        parent = stack[-1][0] if stack else recorder._span_root
        agg = parent.children.get(self._name)
        if agg is None:
            agg = parent.children[self._name] = _SpanAgg(self._name)
        self._agg = agg
        self._t0 = time.perf_counter()
        stack.append((agg, self))
        return self

    def __exit__(self, exc_type, exc, tb):
        elapsed = time.perf_counter() - self._t0
        recorder = self._recorder
        stack = recorder._span_stack
        # Unwind to *this* span: an exception raised mid-body may have
        # skipped inner __exit__s if a caller holds raw _Span objects;
        # the with-statement protocol guarantees LIFO, so popping to self
        # is a no-op in normal use and damage control otherwise.
        while stack:
            agg, live = stack.pop()
            if live is self:
                break
        self._agg.count += 1
        self._agg.total += elapsed
        return False


class TelemetryRecorder:
    """Low-overhead process-wide instrumentation sink.

    All hook points go through the module singleton ``TELEMETRY``; tests
    may construct private recorders.  See the module docstring for the
    disabled-overhead and no-perturbation contracts.
    """

    def __init__(self, enabled: bool = False):
        #: THE hot-path guard: hook points check this one attribute.
        self.enabled = bool(enabled)
        self._reset_state()

    def _reset_state(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._distributions: Dict[str, Dict[str, float]] = {}
        self._span_root = _SpanAgg("")
        self._span_stack: List[Tuple[_SpanAgg, _Span]] = []
        self._started_at = time.perf_counter()
        self._tick_countdown = _TICK_SAMPLE_EVERY
        self._progress = None  # type: Optional[object]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self, reset: bool = True) -> None:
        """Turn recording on (optionally wiping previous state)."""
        if reset:
            self._reset_state()
        self.enabled = True

    def disable(self) -> None:
        """Stop recording (state is kept; snapshot still works)."""
        self.enabled = False

    def reset(self) -> None:
        """Wipe all recorded state (enabled flag unchanged)."""
        self._reset_state()

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def count(self, name: str, by: int = 1) -> None:
        counters = self._counters
        counters[name] = counters.get(name, 0) + by

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    def observe_array(self, name: str, values: np.ndarray) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe_array(values)

    def distribution(self, name: str, summary: Dict[str, float]) -> None:
        """Attach a pre-summarized sample distribution (the
        :meth:`~repro.sim.metrics.MetricsRegistry.export` bridge)."""
        self._distributions[name] = {k: float(v) for k, v in summary.items()}

    def span(self, name: str):
        """Context manager timing a nested wall-clock span.

        Returns the shared no-op manager while disabled, so
        ``with TELEMETRY.span("x"):`` is safe (and cheap) to leave
        unguarded on warm paths; per-event paths should still guard with
        ``if TELEMETRY.enabled:``.
        """
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name)

    # ------------------------------------------------------------------
    # Event-loop hook
    # ------------------------------------------------------------------
    def event_tick(self, sim) -> None:
        """One simulator event executed (called from the event loop only
        while enabled).  Counts events; every few thousand ticks samples
        queue depth / sim time and gives the progress reporter a chance
        to emit."""
        self.count("sim.events")
        self._tick_countdown -= 1
        if self._tick_countdown <= 0:
            self._tick_countdown = _TICK_SAMPLE_EVERY
            self.gauge("sim.queue_depth", len(sim._queue))
            self.gauge("sim.now", sim.now)
            progress = self._progress
            if progress is not None:
                progress.poke(sim=sim)

    def poke_progress(self, context=None) -> None:
        """Rate-limited progress heartbeat for non-event-loop phases
        (overlay construction blocks, memmap spills); ``context`` is a
        phase label (string or zero-argument callable)."""
        progress = self._progress
        if progress is not None:
            progress.poke(context=context)

    def attach_progress(self, reporter) -> None:
        """Install a :class:`~repro.telemetry.progress.ProgressReporter`
        (or None to detach)."""
        self._progress = reporter

    @property
    def progress(self):
        return self._progress

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def wall_seconds(self) -> float:
        """Wall-clock seconds since the recorder was (re)enabled/reset."""
        return time.perf_counter() - self._started_at

    def snapshot(self):
        """Freeze the current state into a
        :class:`~repro.telemetry.snapshot.TelemetrySnapshot`."""
        from repro.telemetry.snapshot import TelemetrySnapshot, SpanStat

        def freeze(agg: _SpanAgg) -> SpanStat:
            return SpanStat(
                name=agg.name,
                count=agg.count,
                seconds=agg.total,
                children=tuple(
                    freeze(child) for child in agg.children.values()
                ),
            )

        return TelemetrySnapshot(
            wall_seconds=self.wall_seconds(),
            counters=dict(sorted(self._counters.items())),
            gauges=dict(sorted(self._gauges.items())),
            histograms={
                name: hist.as_dict()
                for name, hist in sorted(self._histograms.items())
            },
            distributions={
                name: dict(summary)
                for name, summary in sorted(self._distributions.items())
            },
            spans=tuple(
                freeze(child) for child in self._span_root.children.values()
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return (
            f"TelemetryRecorder({state}, counters={len(self._counters)}, "
            f"spans={len(self._span_root.children)})"
        )


#: The process-wide *default* recorder.  Hook points resolve their
#: recorder through :func:`current`, which falls back to this singleton
#: when no per-session recorder is active — so single-run CLI paths and
#: benchmarks keep the historical ``TELEMETRY.enable()`` behaviour
#: unchanged.
TELEMETRY = TelemetryRecorder(enabled=False)

#: The active per-context recorder override (None -> the ``TELEMETRY``
#: default).  A :class:`~repro.service.session.SimulationSession` routes
#: its engine's instrumentation into a private recorder by building and
#: executing under :func:`use_recorder`; concurrent sessions on separate
#: threads see their own value because ``contextvars`` contexts are
#: per-thread.
_ACTIVE: "contextvars.ContextVar[Optional[TelemetryRecorder]]" = (
    contextvars.ContextVar("avmem-telemetry-recorder", default=None)
)


def current() -> TelemetryRecorder:
    """The recorder hook points should record into *right now*.

    Returns the recorder installed by the innermost active
    :func:`use_recorder` context, or the process-wide :data:`TELEMETRY`
    default when none is.  Long-lived engine objects (the simulator, the
    network, the operation engine) capture ``current()`` once at
    construction so their per-event hot paths keep paying exactly one
    attribute check; module-level cold phases call it per invocation.
    """
    recorder = _ACTIVE.get()
    return TELEMETRY if recorder is None else recorder


@contextlib.contextmanager
def use_recorder(recorder: TelemetryRecorder):
    """Route :func:`current` to ``recorder`` inside the ``with`` body.

    Nestable and exception-safe; the previous recorder is restored on
    exit.  This is the session-orchestrator hook: every command a
    :class:`~repro.service.session.SimulationSession` executes runs under
    its own recorder, so concurrent sessions in one process never share
    (or perturb) each other's telemetry.
    """
    token = _ACTIVE.set(recorder)
    try:
        yield recorder
    finally:
        _ACTIVE.reset(token)
