"""Process memory accounting with platform fallbacks.

:func:`peak_rss_mb` is the memory-boundedness metric every BENCH JSON
records and the progress reporter prints.  The primary source is
``resource.getrusage`` (``ru_maxrss`` is **kilobytes on Linux, bytes on
macOS** — the unit conversion is factored out and regression-tested);
where the ``resource`` module does not exist (Windows) a ctypes
``GetProcessMemoryInfo`` fallback answers instead of silently recording
null.  :func:`current_rss_mb` reads the instantaneous RSS (``/proc``
where available) for live progress lines.
"""

from __future__ import annotations

import sys
from typing import Optional

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platform
    resource = None

__all__ = ["peak_rss_mb", "current_rss_mb", "ru_maxrss_to_mb"]

_MB = 1024.0 * 1024.0


def ru_maxrss_to_mb(ru_maxrss: float, platform: Optional[str] = None) -> float:
    """Convert a raw ``ru_maxrss`` reading to MiB with platform-correct
    units: the value is bytes on macOS and kilobytes everywhere else
    POSIX (Linux, *BSD)."""
    platform = sys.platform if platform is None else platform
    if platform == "darwin":
        return ru_maxrss / _MB
    return ru_maxrss / 1024.0


def _windows_peak_rss_mb() -> Optional[float]:  # pragma: no cover - win only
    """``GetProcessMemoryInfo().PeakWorkingSetSize`` via ctypes."""
    try:
        import ctypes
        import ctypes.wintypes as wintypes

        class PROCESS_MEMORY_COUNTERS(ctypes.Structure):
            _fields_ = [
                ("cb", wintypes.DWORD),
                ("PageFaultCount", wintypes.DWORD),
                ("PeakWorkingSetSize", ctypes.c_size_t),
                ("WorkingSetSize", ctypes.c_size_t),
                ("QuotaPeakPagedPoolUsage", ctypes.c_size_t),
                ("QuotaPagedPoolUsage", ctypes.c_size_t),
                ("QuotaPeakNonPagedPoolUsage", ctypes.c_size_t),
                ("QuotaNonPagedPoolUsage", ctypes.c_size_t),
                ("PagefileUsage", ctypes.c_size_t),
                ("PeakPagefileUsage", ctypes.c_size_t),
            ]

        counters = PROCESS_MEMORY_COUNTERS()
        counters.cb = ctypes.sizeof(PROCESS_MEMORY_COUNTERS)
        handle = ctypes.windll.kernel32.GetCurrentProcess()
        ok = ctypes.windll.psapi.GetProcessMemoryInfo(
            handle, ctypes.byref(counters), counters.cb
        )
        if not ok:
            return None
        return counters.PeakWorkingSetSize / _MB
    except Exception:
        return None


def peak_rss_mb() -> Optional[float]:
    """Peak resident set size of this process so far, in MiB.

    This is a high-water mark — per-phase deltas need a subprocess per
    phase.  Returns None only when no platform source exists at all.
    """
    if resource is not None:
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return ru_maxrss_to_mb(peak)
    if sys.platform == "win32":  # pragma: no cover - win only
        return _windows_peak_rss_mb()
    return None  # pragma: no cover - no known source


def current_rss_mb() -> Optional[float]:
    """Instantaneous resident set size in MiB (best effort).

    Linux reads ``/proc/self/statm``; elsewhere the peak is returned as
    an upper bound (still useful in a progress line), or None when no
    source exists.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            fields = fh.read().split()
        import os

        page = os.sysconf("SC_PAGE_SIZE")
        return int(fields[1]) * page / _MB
    except (OSError, IndexError, ValueError):
        return peak_rss_mb()
