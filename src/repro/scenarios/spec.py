"""Declarative scenario specifications.

A :class:`ScenarioSpec` names everything one evaluation workload needs:

* a **population** — how per-node target availabilities are drawn
  (:class:`PopulationSpec`);
* a **churn generator** — which session process realizes those targets
  (:class:`ChurnModelSpec`: epoch Markov chains, Weibull or Pareto
  renewal processes, optional diurnal/ramp modulation);
* **perturbation events** — correlated mass joins/departures layered on
  top (:class:`PerturbationSpec`, with times expressed as fractions of
  the horizon so specs scale);
* an **operation workload** — the management operations to launch once
  the system is warm (:class:`WorkloadSpec`).

Specs are population-size agnostic: :meth:`ScenarioSpec.compile` takes
``hosts``/``epochs``/``epoch_seconds`` (usually from an experiment
scale) and produces a :class:`CompiledScenario` — the columnar
:class:`~repro.churn.timeline.ChurnTimeline` plus the sampled per-node
availability targets, ready to back a
:class:`~repro.churn.trace.ChurnTrace` or feed calibration checks.

The built-in catalogue lives in :mod:`repro.scenarios.registry`; adding
a workload means writing one spec, not new plumbing.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.churn.models import DiurnalProfile
from repro.churn.overnet import DEFAULT_MIXTURE, sample_availabilities
from repro.churn.timeline import ChurnTimeline
from repro.churn.trace import ChurnTrace
from repro.scenarios.generators import (
    RampProfile,
    apply_blackout,
    apply_flash_crowd,
    markov_timeline,
    pareto_sessions,
    renewal_timeline,
    weibull_sessions,
)
from repro.util.randomness import fallback_rng
from repro.util.validation import check_positive, check_probability

__all__ = [
    "PopulationSpec",
    "ChurnModelSpec",
    "PerturbationSpec",
    "WorkloadSpec",
    "ScenarioSpec",
    "CompiledScenario",
    "CHURN_MODELS",
    "PERTURBATION_KINDS",
]

CHURN_MODELS = ("markov", "weibull", "pareto")
PERTURBATION_KINDS = ("flash-crowd", "blackout")


@dataclass(frozen=True)
class PopulationSpec:
    """How per-node long-run availability targets are drawn.

    ``distribution``:

    * ``"overnet"`` — the calibrated two-component Beta mixture
      (:data:`repro.churn.overnet.DEFAULT_MIXTURE`);
    * ``"uniform"`` — uniform on ``[low, high]``;
    * ``"fixed"`` — every node targets ``(low + high) / 2``.
    """

    distribution: str = "overnet"
    low: float = 0.05
    high: float = 0.95

    def __post_init__(self):
        if self.distribution not in ("overnet", "uniform", "fixed"):
            raise ValueError(
                f"unknown availability distribution {self.distribution!r}"
            )
        check_probability(self.low, "low")
        check_probability(self.high, "high")
        if self.low > self.high:
            raise ValueError(f"low ({self.low}) must be <= high ({self.high})")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if self.distribution == "overnet":
            return sample_availabilities(n, rng, DEFAULT_MIXTURE)
        if self.distribution == "uniform":
            return rng.uniform(self.low, self.high, n)
        return np.full(n, (self.low + self.high) / 2.0)

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "PopulationSpec":
        return cls(**payload)


@dataclass(frozen=True)
class ChurnModelSpec:
    """Which session process realizes the availability targets.

    ``model`` is one of :data:`CHURN_MODELS`.  ``shape`` parameterizes
    the renewal models (Weibull k / Pareto α) and is ignored by
    ``"markov"``.  ``ramp`` (multiplier endpoints over the horizon)
    and ``diurnal_*`` modulate the Markov chain's on-probability;
    ``ramp`` takes precedence when both are set.
    """

    model: str = "markov"
    mean_session_epochs: float = 3.0
    session_scaling: bool = True
    shape: float = 0.6
    diurnal_amplitude: float = 0.0
    diurnal_fraction: float = 0.0
    ramp: Optional[Tuple[float, float]] = None

    def __post_init__(self):
        if self.model not in CHURN_MODELS:
            raise ValueError(
                f"model must be one of {CHURN_MODELS}, got {self.model!r}"
            )
        check_positive(self.mean_session_epochs, "mean_session_epochs")
        check_positive(self.shape, "shape")
        check_probability(self.diurnal_amplitude, "diurnal_amplitude")
        check_probability(self.diurnal_fraction, "diurnal_fraction")
        if self.ramp is not None:
            check_positive(self.ramp[0], "ramp start multiplier")
            check_positive(self.ramp[1], "ramp end multiplier")

    def generate(
        self,
        availabilities: np.ndarray,
        epochs: int,
        epoch_seconds: float,
        rng: np.random.Generator,
    ) -> ChurnTimeline:
        horizon = epochs * epoch_seconds
        if self.model == "markov":
            profile = (
                RampProfile(self.ramp[0], self.ramp[1], horizon)
                if self.ramp is not None
                else None
            )
            diurnal = (
                DiurnalProfile(amplitude=self.diurnal_amplitude)
                if self.diurnal_amplitude > 0
                else None
            )
            return markov_timeline(
                availabilities,
                epochs=epochs,
                epoch_seconds=epoch_seconds,
                rng=rng,
                mean_online_epochs=self.mean_session_epochs,
                session_scaling=self.session_scaling,
                diurnal=diurnal,
                diurnal_fraction=self.diurnal_fraction,
                profile=profile,
            )
        sampler = (
            (lambda count, mean, r: weibull_sessions(count, mean, r, self.shape))
            if self.model == "weibull"
            else (lambda count, mean, r: pareto_sessions(count, mean, r, self.shape))
        )
        return renewal_timeline(
            availabilities,
            horizon=horizon,
            rng=rng,
            session_sampler=sampler,
            mean_session_seconds=self.mean_session_epochs * epoch_seconds,
            session_scaling=self.session_scaling,
        )

    def as_dict(self) -> dict:
        payload = asdict(self)
        if self.ramp is not None:
            payload["ramp"] = list(self.ramp)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ChurnModelSpec":
        payload = dict(payload)
        if payload.get("ramp") is not None:
            payload["ramp"] = tuple(payload["ramp"])
        return cls(**payload)


@dataclass(frozen=True)
class PerturbationSpec:
    """One correlated event, with times as fractions of the horizon.

    ``kind`` is one of :data:`PERTURBATION_KINDS`; ``at`` places the
    event, ``duration`` sizes it (both fractions of the horizon), and
    ``fraction`` selects how much of the population it touches.
    """

    kind: str
    at: float
    duration: float
    fraction: float

    def __post_init__(self):
        if self.kind not in PERTURBATION_KINDS:
            raise ValueError(
                f"kind must be one of {PERTURBATION_KINDS}, got {self.kind!r}"
            )
        check_probability(self.at, "at")
        check_probability(self.duration, "duration")
        check_positive(self.duration, "duration")
        check_probability(self.fraction, "fraction")

    def apply(
        self, timeline: ChurnTimeline, rng: np.random.Generator
    ) -> ChurnTimeline:
        time = self.at * timeline.horizon
        duration = self.duration * timeline.horizon
        if self.kind == "flash-crowd":
            return apply_flash_crowd(timeline, time, duration, self.fraction, rng)
        return apply_blackout(timeline, time, duration, self.fraction, rng)

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "PerturbationSpec":
        return cls(**payload)


@dataclass(frozen=True)
class WorkloadSpec:
    """The management operations a scenario run launches after warm-up.

    A workload is declarative: :meth:`to_plan` compiles it to an
    :class:`~repro.ops.plan.OperationPlan` executed through
    ``sim.ops.run(plan)``.  ``timing`` selects the schedule shape:

    * ``"interval"`` (default) — the historical sequential shape: the
      anycast stream launches ``anycast_spacing`` seconds apart, then
      (after a settle gap) the multicast stream ``multicast_spacing``
      apart;
    * ``"poisson"`` — both streams start together with exponential
      inter-arrival gaps at ``rate`` arrivals per second, interleaving
      anycasts and multicasts by launch time (a mixed/timed schedule);
    * ``"batch"`` — everything launches at once.
    """

    anycasts: int = 6
    multicasts: int = 2
    target: Tuple[float, float] = (0.6, 0.9)
    anycast_band: str = "mid"
    multicast_band: str = "high"
    anycast_policy: str = "greedy"
    anycast_retry: Optional[int] = None
    multicast_mode: str = "flood"
    timing: str = "interval"
    rate: float = 0.05
    anycast_spacing: float = 2.0
    multicast_spacing: float = 5.0
    settle: float = 30.0

    def __post_init__(self):
        from repro.ops.plan import TIMING_MODES

        if self.anycasts < 0 or self.multicasts < 0:
            raise ValueError("operation counts must be non-negative")
        lo, hi = self.target
        check_probability(lo, "target low")
        if not 0.0 <= hi <= 1.0 + 1e-12:
            raise ValueError(f"target high must be in [0, 1], got {hi}")
        if self.timing not in TIMING_MODES:
            raise ValueError(
                f"timing must be one of {TIMING_MODES}, got {self.timing!r}"
            )
        check_positive(self.rate, "rate")
        if self.anycast_spacing < 0 or self.multicast_spacing < 0:
            raise ValueError("spacings must be non-negative")
        if self.settle < 0:
            raise ValueError(f"settle must be >= 0, got {self.settle}")

    @property
    def total_operations(self) -> int:
        return self.anycasts + self.multicasts

    def to_plan(self, name: str = "workload"):
        """Compile to an :class:`~repro.ops.plan.OperationPlan`.

        Returns ``None`` when the workload launches nothing.
        """
        from repro.ops.plan import (
            OperationItem,
            OperationPlan,
            OperationTiming,
            sequential_multicast_phase,
        )
        from repro.ops.spec import TargetSpec

        target = TargetSpec.range(*self.target)

        def timing_for(kind: str, phase: float) -> OperationTiming:
            if self.timing == "poisson":
                return OperationTiming(mode="poisson", rate=self.rate, phase=0.0)
            if self.timing == "batch":
                return OperationTiming(mode="batch", phase=0.0)
            spacing = (
                self.anycast_spacing if kind == "anycast" else self.multicast_spacing
            )
            return OperationTiming(mode="interval", spacing=spacing, phase=phase)

        items = []
        if self.anycasts:
            items.append(OperationItem(
                kind="anycast",
                target=target,
                count=self.anycasts,
                band=self.anycast_band,
                policy=self.anycast_policy,
                retry=self.anycast_retry,
                timing=timing_for("anycast", 0.0),
                label="anycasts",
            ))
        if self.multicasts:
            phase = (
                sequential_multicast_phase(
                    self.anycasts, self.settle, self.anycast_spacing
                )
                if self.timing == "interval"
                else 0.0
            )
            items.append(OperationItem(
                kind="multicast",
                target=target,
                count=self.multicasts,
                band=self.multicast_band,
                mode=self.multicast_mode,
                timing=timing_for("multicast", phase),
                label="multicasts",
            ))
        if not items:
            return None
        return OperationPlan(items=tuple(items), settle=self.settle, name=name)

    def as_dict(self) -> dict:
        payload = asdict(self)
        payload["target"] = list(self.target)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "WorkloadSpec":
        payload = dict(payload)
        if "target" in payload:
            payload["target"] = tuple(payload["target"])
        return cls(**payload)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, named, scale-agnostic evaluation workload."""

    name: str
    description: str
    churn: ChurnModelSpec = field(default_factory=ChurnModelSpec)
    population: PopulationSpec = field(default_factory=PopulationSpec)
    perturbations: Tuple[PerturbationSpec, ...] = ()
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    #: Allowed |mean lifetime availability − mean target|; None skips the
    #: calibration property test (perturbed scenarios distort on purpose).
    calibration_tolerance: Optional[float] = 0.08

    def compile(
        self,
        hosts: int,
        epochs: int,
        epoch_seconds: float = 1200.0,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> "CompiledScenario":
        """Realize the spec at a concrete scale.

        Samples availability targets, generates the base timeline, and
        applies the perturbation events in order.
        """
        if hosts <= 0:
            raise ValueError(f"hosts must be positive, got {hosts}")
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        check_positive(epoch_seconds, "epoch_seconds")
        if rng is not None and seed is not None:
            raise ValueError("pass either rng or seed, not both")
        if rng is None:
            rng = fallback_rng(0 if seed is None else seed)
        targets = self.population.sample(hosts, rng)
        timeline = self.churn.generate(targets, epochs, epoch_seconds, rng)
        for perturbation in self.perturbations:
            timeline = perturbation.apply(timeline, rng)
        return CompiledScenario(spec=self, timeline=timeline, targets=targets)

    def as_dict(self) -> dict:
        """All-primitive dict, exact round-trip through :meth:`from_dict`
        — the service accepts inline specs in this shape and session
        manifests persist them."""
        return {
            "name": self.name,
            "description": self.description,
            "churn": self.churn.as_dict(),
            "population": self.population.as_dict(),
            "perturbations": [p.as_dict() for p in self.perturbations],
            "workload": self.workload.as_dict(),
            "calibration_tolerance": self.calibration_tolerance,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioSpec":
        payload = dict(payload)
        if isinstance(payload.get("churn"), dict):
            payload["churn"] = ChurnModelSpec.from_dict(payload["churn"])
        if isinstance(payload.get("population"), dict):
            payload["population"] = PopulationSpec.from_dict(payload["population"])
        if isinstance(payload.get("workload"), dict):
            payload["workload"] = WorkloadSpec.from_dict(payload["workload"])
        perturbations = payload.get("perturbations") or ()
        payload["perturbations"] = tuple(
            PerturbationSpec.from_dict(p) if isinstance(p, dict) else p
            for p in perturbations
        )
        return cls(**payload)


@dataclass(frozen=True)
class CompiledScenario:
    """A spec realized at one scale: the timeline plus its targets."""

    spec: ScenarioSpec
    timeline: ChurnTimeline
    targets: np.ndarray

    def to_trace(self, node_keys: Optional[Sequence] = None) -> ChurnTrace:
        """A :class:`~repro.churn.trace.ChurnTrace` over the timeline."""
        return self.timeline.to_trace(node_keys)

    def calibration_error(self) -> float:
        """|mean realized lifetime availability − mean target|."""
        realized = self.timeline.lifetime_availability_array()
        return abs(float(realized.mean()) - float(self.targets.mean()))
