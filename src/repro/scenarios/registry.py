"""The named scenario catalogue.

Every entry is a :class:`~repro.scenarios.spec.ScenarioSpec` registered
under a stable name; the harness
(:func:`repro.experiments.harness.build_simulation` /
:func:`~repro.experiments.harness.run_scenario`), the ``repro scenario``
CLI, the scenario benchmarks, and the property-test suite all iterate
this registry — registering a spec is all it takes to make a new
workload runnable, benchable, and CI-smoked.

Built-ins (see docs/scenarios.md for the full catalogue description):

========================  ====================================================
name                      what it stresses
========================  ====================================================
``overnet-replay``        the paper's baseline Overnet-like trace
``weibull-lifetimes``     heavy-ish Weibull session lengths (continuous time)
``pareto-heavy-tail``     power-law sessions: many flappers, a stable core
``diurnal``               strong day/night swings across most of the pop.
``flash-crowd``           mass correlated join mid-trace
``blackout``              correlated mass departure (rack failure)
``availability-ramp``     population availability drifting up over the trace
``stable-core``           high-availability, low-churn control population
``mixed-poisson``         interleaved anycast+multicast Poisson op streams
========================  ====================================================
"""

from __future__ import annotations

from typing import Dict, List

from repro.scenarios.spec import (
    ChurnModelSpec,
    PerturbationSpec,
    PopulationSpec,
    ScenarioSpec,
    WorkloadSpec,
)

__all__ = ["SCENARIOS", "register", "get_scenario", "scenario_names"]

SCENARIOS: Dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the catalogue (refuses silent overwrites)."""
    if not replace and spec.name in SCENARIOS:
        raise ValueError(f"scenario {spec.name!r} already registered")
    SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        ) from None


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


# ----------------------------------------------------------------------
# Built-in catalogue
# ----------------------------------------------------------------------
register(ScenarioSpec(
    name="overnet-replay",
    description=(
        "The paper's baseline: Overnet-calibrated Beta-mixture "
        "availabilities, epoch Markov churn, partial diurnal modulation."
    ),
    churn=ChurnModelSpec(
        model="markov", mean_session_epochs=3.0,
        diurnal_amplitude=0.3, diurnal_fraction=0.4,
    ),
    population=PopulationSpec(distribution="overnet"),
))

register(ScenarioSpec(
    name="weibull-lifetimes",
    description=(
        "Continuous-time Weibull(k=0.6) session lengths over the Overnet "
        "availability mixture — many short sessions, a long stable tail."
    ),
    churn=ChurnModelSpec(model="weibull", shape=0.6, mean_session_epochs=3.0),
    population=PopulationSpec(distribution="overnet"),
))

register(ScenarioSpec(
    name="pareto-heavy-tail",
    description=(
        "Power-law Pareto(α=1.5) sessions: extreme session-length "
        "skew — a flapping majority and a near-permanent core."
    ),
    churn=ChurnModelSpec(model="pareto", shape=1.5, mean_session_epochs=3.0),
    population=PopulationSpec(distribution="overnet"),
))

register(ScenarioSpec(
    name="diurnal",
    description=(
        "Strong day/night population swings: 60% amplitude on 90% of "
        "the population (the online population more than halves at night)."
    ),
    churn=ChurnModelSpec(
        model="markov", mean_session_epochs=3.0,
        diurnal_amplitude=0.6, diurnal_fraction=0.9,
    ),
    population=PopulationSpec(distribution="overnet"),
    calibration_tolerance=0.10,
))

register(ScenarioSpec(
    name="flash-crowd",
    description=(
        "Mass correlated join: 60% of the population comes online "
        "together at 60% of the horizon for 5% of it."
    ),
    churn=ChurnModelSpec(model="markov", mean_session_epochs=3.0),
    population=PopulationSpec(distribution="overnet"),
    perturbations=(
        PerturbationSpec(kind="flash-crowd", at=0.6, duration=0.05, fraction=0.6),
    ),
    workload=WorkloadSpec(anycasts=8, multicasts=2),
    calibration_tolerance=None,
))

register(ScenarioSpec(
    name="blackout",
    description=(
        "Correlated mass departure (rack failure): 35% of the population "
        "is forced offline at 60% of the horizon for 5% of it."
    ),
    churn=ChurnModelSpec(model="markov", mean_session_epochs=3.0),
    population=PopulationSpec(distribution="overnet"),
    perturbations=(
        PerturbationSpec(kind="blackout", at=0.6, duration=0.05, fraction=0.35),
    ),
    workload=WorkloadSpec(anycasts=8, multicasts=2),
    calibration_tolerance=None,
))

register(ScenarioSpec(
    name="availability-ramp",
    description=(
        "Population availability drifts upward across the trace (the "
        "on-probability multiplier ramps 0.5 → 1.6): availability "
        "estimates made early are systematically stale late."
    ),
    churn=ChurnModelSpec(model="markov", mean_session_epochs=3.0, ramp=(0.5, 1.6)),
    population=PopulationSpec(distribution="overnet"),
    calibration_tolerance=None,
))

register(ScenarioSpec(
    name="stable-core",
    description=(
        "High-availability, low-churn control population (uniform "
        "availabilities in [0.7, 0.95], long Weibull sessions) — the "
        "cooperative baseline management overlays are usually built for."
    ),
    churn=ChurnModelSpec(model="weibull", shape=1.0, mean_session_epochs=12.0),
    population=PopulationSpec(distribution="uniform", low=0.7, high=0.95),
    workload=WorkloadSpec(anycasts=6, multicasts=2, target=(0.75, 0.95)),
))

register(ScenarioSpec(
    name="mixed-poisson",
    description=(
        "Mixed management workload: anycast and multicast Poisson "
        "arrival streams interleave by launch time over the baseline "
        "Overnet-like churn (the timed-schedule stress case)."
    ),
    churn=ChurnModelSpec(
        model="markov", mean_session_epochs=3.0,
        diurnal_amplitude=0.3, diurnal_fraction=0.4,
    ),
    population=PopulationSpec(distribution="overnet"),
    workload=WorkloadSpec(
        anycasts=8, multicasts=3, target=(0.6, 0.9),
        timing="poisson", rate=0.05,
    ),
))
