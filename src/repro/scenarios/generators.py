"""Session generators and perturbations for scenario compilation.

Three churn-generation families, all producing a columnar
:class:`~repro.churn.timeline.ChurnTimeline`:

* **Epoch Markov chains** (:func:`markov_timeline`) — the seed's
  two-state per-epoch model (optionally diurnal or ramped), matching the
  synthetic Overnet generator's machinery.
* **Alternating renewal processes** (:func:`renewal_timeline`) —
  continuous-time session/gap sampling with pluggable session-length
  distributions (:func:`weibull_sessions`, :func:`pareto_sessions`);
  the gap rate is solved from each node's target availability so the
  long-run fraction uptime stays calibrated.
* **Perturbations** (:func:`apply_flash_crowd`, :func:`apply_blackout`)
  — correlated mass joins/departures layered over any base timeline as
  pure array edits (interval add with merge / interval subtract with
  split).

These are the building blocks :class:`~repro.scenarios.spec.ScenarioSpec`
compiles from; they are also directly usable (the ``repro trace
--model`` CLI path does).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.churn.models import DiurnalProfile, sample_epoch_matrix, scaled_session_epochs
from repro.churn.timeline import ChurnTimeline
from repro.util.validation import check_positive, check_probability

__all__ = [
    "RampProfile",
    "markov_timeline",
    "renewal_timeline",
    "weibull_sessions",
    "pareto_sessions",
    "apply_flash_crowd",
    "apply_blackout",
]

#: sampler(count, mean_seconds, rng) -> session lengths in seconds
SessionSampler = Callable[[int, float, np.random.Generator], np.ndarray]


@dataclass(frozen=True)
class RampProfile:
    """Linear on-probability ramp over the trace horizon.

    The multiplier rises (or falls) linearly from ``start_multiplier``
    at t = 0 to ``end_multiplier`` at t = ``horizon`` — the
    "availability-ramp" workload where the population's effective
    availability drifts over the measurement period.  Duck-type
    compatible with :class:`~repro.churn.models.DiurnalProfile` (the
    Markov sampler only calls ``multiplier``).
    """

    start_multiplier: float
    end_multiplier: float
    horizon: float

    def __post_init__(self):
        check_positive(self.start_multiplier, "start_multiplier")
        check_positive(self.end_multiplier, "end_multiplier")
        check_positive(self.horizon, "ramp horizon")

    def multiplier(self, time_seconds: float) -> float:
        frac = min(1.0, max(0.0, time_seconds / self.horizon))
        return self.start_multiplier + frac * (
            self.end_multiplier - self.start_multiplier
        )


# ----------------------------------------------------------------------
# Epoch-level Markov generation (the seed model, timeline-shaped)
# ----------------------------------------------------------------------
def markov_timeline(
    availabilities: np.ndarray,
    epochs: int,
    epoch_seconds: float,
    rng: np.random.Generator,
    mean_online_epochs: float = 3.0,
    session_scaling: bool = True,
    diurnal: Optional[DiurnalProfile] = None,
    diurnal_fraction: float = 0.0,
    profile=None,
) -> ChurnTimeline:
    """Sample a per-epoch Markov presence matrix and lift it to a timeline.

    ``profile`` (any object with a ``multiplier(t)`` method, e.g.
    :class:`RampProfile`) applies to *every* node; ``diurnal`` +
    ``diurnal_fraction`` follow the Overnet generator's convention of
    modulating only a random subset.
    """
    if profile is not None:
        matrix = sample_epoch_matrix(
            availabilities,
            epochs=epochs,
            rng=rng,
            mean_online_epochs=mean_online_epochs,
            epoch_seconds=epoch_seconds,
            diurnal=profile,
            diurnal_fraction=1.0,
            session_scaling=session_scaling,
        )
    else:
        matrix = sample_epoch_matrix(
            availabilities,
            epochs=epochs,
            rng=rng,
            mean_online_epochs=mean_online_epochs,
            epoch_seconds=epoch_seconds,
            diurnal=diurnal,
            diurnal_fraction=diurnal_fraction,
            session_scaling=session_scaling,
        )
    return ChurnTimeline.from_matrix(matrix, epoch_seconds)


# ----------------------------------------------------------------------
# Continuous-time alternating renewal generation
# ----------------------------------------------------------------------
def weibull_sessions(count: int, mean_seconds: float, rng: np.random.Generator,
                     shape: float = 0.6) -> np.ndarray:
    """Weibull-distributed session lengths with the given mean.

    ``shape < 1`` gives the heavy-ish tail measurement studies report for
    p2p session lengths (many short sessions, a long stable tail)."""
    scale = mean_seconds / math.gamma(1.0 + 1.0 / shape)
    return scale * rng.weibull(shape, count)


def pareto_sessions(count: int, mean_seconds: float, rng: np.random.Generator,
                    shape: float = 1.5) -> np.ndarray:
    """Pareto (power-law) session lengths with the given mean.

    Requires ``shape > 1`` for a finite mean; the scale ``x_m`` is solved
    from ``mean = x_m * shape / (shape - 1)``."""
    if shape <= 1.0:
        raise ValueError(f"pareto shape must be > 1 for a finite mean, got {shape}")
    x_m = mean_seconds * (shape - 1.0) / shape
    return x_m * (1.0 + rng.pareto(shape, count))


def renewal_timeline(
    availabilities: np.ndarray,
    horizon: float,
    rng: np.random.Generator,
    session_sampler: SessionSampler,
    mean_session_seconds: float = 3600.0,
    session_scaling: bool = True,
) -> ChurnTimeline:
    """Alternating renewal process per node: online sessions drawn from
    ``session_sampler``, offline gaps exponential with the rate solved
    from the node's target availability (``E[gap] = E[session]·(1−a)/a``),
    so long-run fraction uptime calibrates to ``availabilities``.

    With ``session_scaling``, a node's mean session length grows as
    ``1/(1−a)`` (capped at a third of the horizon) — stable hosts stay up
    for long stretches, mirroring
    :func:`~repro.churn.models.scaled_session_epochs`.

    Each node starts in its stationary state: online with probability
    ``a`` (entering mid-session), offline otherwise.
    """
    check_positive(horizon, "horizon")
    check_positive(mean_session_seconds, "mean_session_seconds")
    availabilities = np.asarray(availabilities, dtype=float)
    n = availabilities.size
    cap = max(horizon / 3.0, mean_session_seconds)
    node_chunks: list = []
    start_chunks: list = []
    end_chunks: list = []
    start_online = rng.random(n) < availabilities
    for i in range(n):
        a = float(availabilities[i])
        if a <= 0.0:
            continue
        mean_session = (
            scaled_session_epochs(a, mean_session_seconds, cap)
            if session_scaling
            else mean_session_seconds
        )
        if a >= 1.0:
            node_chunks.append(np.array([i], dtype=np.int64))
            start_chunks.append(np.array([0.0]))
            end_chunks.append(np.array([horizon]))
            continue
        mean_gap = mean_session * (1.0 - a) / a
        mean_cycle = mean_session + mean_gap
        sessions_parts = []
        gaps_parts = []
        covered = 0.0
        while covered < horizon:
            k = max(8, int((horizon - covered) / mean_cycle * 1.5) + 4)
            sessions_parts.append(session_sampler(k, mean_session, rng))
            gaps_parts.append(rng.exponential(mean_gap, k))
            covered += float(sessions_parts[-1].sum() + gaps_parts[-1].sum())
        sessions = np.concatenate(sessions_parts)
        gaps = np.concatenate(gaps_parts)
        if start_online[i]:
            gaps[0] = 0.0  # stationary start: already inside a session
        cycle_ends = np.cumsum(gaps + sessions)
        starts = cycle_ends - sessions
        ends = np.minimum(cycle_ends, horizon)
        keep = starts < horizon
        starts, ends = starts[keep], ends[keep]
        keep = ends > starts
        starts, ends = starts[keep], ends[keep]
        if starts.size:
            node_chunks.append(np.full(starts.size, i, dtype=np.int64))
            start_chunks.append(starts)
            end_chunks.append(ends)
    if node_chunks:
        node_index = np.concatenate(node_chunks)
        starts = np.concatenate(start_chunks)
        ends = np.concatenate(end_chunks)
    else:
        node_index = np.zeros(0, dtype=np.int64)
        starts = np.zeros(0)
        ends = np.zeros(0)
    return ChurnTimeline(n, horizon, node_index, starts, ends)


# ----------------------------------------------------------------------
# Perturbations: correlated events layered over a base timeline
# ----------------------------------------------------------------------
def _select_nodes(
    timeline: ChurnTimeline, fraction: float, rng: np.random.Generator
) -> np.ndarray:
    check_probability(fraction, "perturbation fraction")
    count = int(round(fraction * timeline.n_nodes))
    return rng.choice(timeline.n_nodes, size=count, replace=False)


def apply_flash_crowd(
    timeline: ChurnTimeline,
    time: float,
    duration: float,
    fraction: float,
    rng: np.random.Generator,
) -> ChurnTimeline:
    """Mass correlated join: ``fraction`` of the population is online for
    ``[time, time + duration]`` regardless of its base schedule (a flash
    crowd / coordinated deployment wave).  Overlaps with existing
    sessions are merged by the timeline's normalization."""
    check_positive(duration, "flash crowd duration")
    selected = _select_nodes(timeline, fraction, rng)
    if not selected.size:
        return timeline
    end = min(float(time) + float(duration), timeline.horizon)
    if end <= time:
        return timeline
    node_index = np.concatenate([timeline.node_index, selected.astype(np.int64)])
    starts = np.concatenate([timeline.starts, np.full(selected.size, float(time))])
    ends = np.concatenate([timeline.ends, np.full(selected.size, end)])
    return ChurnTimeline(timeline.n_nodes, timeline.horizon, node_index, starts, ends)


def apply_blackout(
    timeline: ChurnTimeline,
    time: float,
    duration: float,
    fraction: float,
    rng: np.random.Generator,
) -> ChurnTimeline:
    """Mass correlated departure: ``fraction`` of the population is
    forced offline during ``[time, time + duration]`` (rack failure /
    partition).  Sessions overlapping the outage are clipped or split —
    a session spanning the whole outage yields two."""
    check_positive(duration, "blackout duration")
    selected = _select_nodes(timeline, fraction, rng)
    if not selected.size:
        return timeline
    t0 = float(time)
    t1 = min(t0 + float(duration), timeline.horizon)
    affected = np.isin(timeline.node_index, selected)
    keep_node = timeline.node_index[~affected]
    keep_starts = timeline.starts[~affected]
    keep_ends = timeline.ends[~affected]
    a_node = timeline.node_index[affected]
    a_starts = timeline.starts[affected]
    a_ends = timeline.ends[affected]
    # Each affected session contributes up to two pieces: the part before
    # the outage and the part after it.
    left_starts, left_ends = a_starts, np.minimum(a_ends, t0)
    right_starts, right_ends = np.maximum(a_starts, t1), a_ends
    node_index = np.concatenate([keep_node, a_node, a_node])
    starts = np.concatenate([keep_starts, left_starts, right_starts])
    ends = np.concatenate([keep_ends, left_ends, right_ends])
    keep = ends > starts
    return ChurnTimeline(
        timeline.n_nodes, timeline.horizon,
        node_index[keep], starts[keep], ends[keep],
    )
