"""Declarative churn/workload scenarios on a vectorized churn timeline.

The paper evaluates AVMEM under exactly one workload (the Overnet
trace).  This subsystem opens the harness to arbitrary availability
workloads: a :class:`~repro.scenarios.spec.ScenarioSpec` declares a
population, a churn generator, perturbation events, and an operation
workload; compiling it yields a columnar
:class:`~repro.churn.timeline.ChurnTimeline` that backs the simulation's
:class:`~repro.churn.trace.ChurnTrace` and the monitoring oracle's batch
queries.  The named catalogue lives in
:mod:`repro.scenarios.registry`; ``repro scenario list`` prints it.
"""

from repro.scenarios.generators import (
    RampProfile,
    apply_blackout,
    apply_flash_crowd,
    markov_timeline,
    pareto_sessions,
    renewal_timeline,
    weibull_sessions,
)
from repro.scenarios.registry import (
    SCENARIOS,
    get_scenario,
    register,
    scenario_names,
)
from repro.scenarios.spec import (
    CHURN_MODELS,
    PERTURBATION_KINDS,
    ChurnModelSpec,
    CompiledScenario,
    PerturbationSpec,
    PopulationSpec,
    ScenarioSpec,
    WorkloadSpec,
)

__all__ = [
    "ScenarioSpec",
    "CompiledScenario",
    "ChurnModelSpec",
    "PopulationSpec",
    "PerturbationSpec",
    "WorkloadSpec",
    "CHURN_MODELS",
    "PERTURBATION_KINDS",
    "SCENARIOS",
    "register",
    "get_scenario",
    "scenario_names",
    "RampProfile",
    "markov_timeline",
    "renewal_timeline",
    "weibull_sessions",
    "pareto_sessions",
    "apply_flash_crowd",
    "apply_blackout",
]
