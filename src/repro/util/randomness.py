"""Seeded random-number streams.

Every stochastic component in the reproduction draws from its own named
stream derived from a single root seed.  This gives two properties the
experiments rely on:

* **Reproducibility** — a root seed fully determines a simulation run.
* **Isolation** — adding draws to one component (say, the churn generator)
  does not perturb the sequence seen by another (say, anycast forwarding),
  so experiments stay comparable across code revisions.

Streams are ``numpy.random.Generator`` instances keyed by a string name;
the child seed is derived by hashing ``(root_seed, name)`` through NumPy's
``SeedSequence`` spawning facility.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, Optional

import numpy as np

__all__ = ["RandomRouter", "derive_seed", "fallback_rng", "stream"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a deterministic 64-bit child seed from a root seed and a name.

    The derivation must be stable across processes and Python versions, so
    it uses CRC32 over the UTF-8 name rather than ``hash()`` (which is
    salted per process).
    """
    if root_seed < 0:
        raise ValueError(f"root_seed must be non-negative, got {root_seed}")
    tag = zlib.crc32(name.encode("utf-8"))
    mixed = (root_seed * 0x9E3779B97F4A7C15 + tag * 0xBF58476D1CE4E5B9) % (1 << 64)
    return mixed


def stream(root_seed: int, name: str) -> np.random.Generator:
    """Create an independent ``Generator`` for component ``name``."""
    return np.random.default_rng(derive_seed(root_seed, name))


def fallback_rng(seed: int = 0) -> np.random.Generator:
    """Deterministic stand-in generator for components built without one.

    Components that take an optional ``rng`` parameter (engine, network,
    overlays, monitors) default to this when constructed directly — unit
    tests and standalone scripts.  The full simulation wiring always
    passes a named :class:`RandomRouter` stream instead; this is the one
    sanctioned way to construct a generator outside that router (the
    ``np-random`` avmemlint rule flags any other construction site).

    Returns exactly ``np.random.default_rng(seed)`` — the historical
    per-component default — so seeded streams in existing tests are
    unchanged.
    """
    return np.random.default_rng(seed)


class RandomRouter:
    """Hands out named, memoized random streams derived from one root seed.

    >>> router = RandomRouter(seed=7)
    >>> a = router.get("churn")
    >>> b = router.get("churn")
    >>> a is b
    True
    >>> router.get("anycast") is a
    False
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the memoized stream for ``name``, creating it on demand."""
        if name not in self._streams:
            self._streams[name] = stream(self.seed, name)
        return self._streams[name]

    def fork(self, name: str) -> "RandomRouter":
        """Create a child router whose root seed is derived from ``name``.

        Useful to give each of several repeated experiment runs its own
        namespace of streams.
        """
        return RandomRouter(derive_seed(self.seed, name))

    def names(self) -> Iterable[str]:
        """Names of the streams created so far (for diagnostics)."""
        return tuple(self._streams)

    def reset(self, name: Optional[str] = None) -> None:
        """Forget one stream (or all of them), so the next ``get`` restarts it."""
        if name is None:
            self._streams.clear()
        else:
            self._streams.pop(name, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomRouter(seed={self.seed}, streams={sorted(self._streams)})"
