"""Numeric helpers: interval math, empirical CDFs, and summary statistics."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "clamp",
    "interval_overlap",
    "interval_distance",
    "point_to_interval_distance",
    "empirical_cdf",
    "quantile",
    "mean_or_nan",
    "log_at_least_one",
]


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into ``[lo, hi]``."""
    return lo if value < lo else hi if value > hi else value


def interval_overlap(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Length of the overlap between closed intervals ``a`` and ``b``."""
    lo = max(a[0], b[0])
    hi = min(a[1], b[1])
    return max(0.0, hi - lo)


def interval_distance(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Gap between two closed intervals (0 when they touch or overlap)."""
    if a[0] > b[1]:
        return a[0] - b[1]
    if b[0] > a[1]:
        return b[0] - a[1]
    return 0.0


def point_to_interval_distance(x: float, interval: Tuple[float, float]) -> float:
    """Distance from a point to a closed interval (0 when inside).

    This is the "Euclidean distance between the edge of R and the
    availability" used by the paper's greedy metric and its simulated
    annealing temperature.
    """
    lo, hi = interval
    if x < lo:
        return lo - x
    if x > hi:
        return x - hi
    return 0.0


def empirical_cdf(samples: Iterable[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(xs, ps)`` such that ``P[X <= xs[i]] = ps[i]``.

    The returned ``xs`` are the sorted unique sample values; ``ps`` is
    monotone non-decreasing and ends at 1.0.  Empty input yields two empty
    arrays.
    """
    data = np.asarray(sorted(samples), dtype=float)
    if data.size == 0:
        return np.array([]), np.array([])
    xs, counts = np.unique(data, return_counts=True)
    ps = np.cumsum(counts) / data.size
    return xs, ps


def quantile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile; NaN for empty input."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        return float("nan")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile level must be in [0, 1], got {q}")
    return float(np.quantile(data, q))


def mean_or_nan(samples: Sequence[float]) -> float:
    """Arithmetic mean, or NaN for empty input (never raises)."""
    data = list(samples)
    if not data:
        return float("nan")
    return float(np.mean(np.asarray(data, dtype=float)))


def log_at_least_one(value: float) -> float:
    """``max(ln(value), 1.0)`` — the paper's ``log(N*)`` factors are meant as
    neighbor-count scalers, so we floor them at 1 to stay meaningful for
    tiny test systems where ``ln(N) < 1``.
    """
    if value <= 1.0:
        return 1.0
    return max(1.0, math.log(value))


def cdf_report_rows(samples: Sequence[float], levels: Sequence[float] = (0.5, 0.9, 0.99, 1.0)) -> List[Tuple[float, float]]:
    """Convenience for reports: ``[(level, value_at_level), ...]``."""
    return [(lvl, quantile(samples, lvl)) for lvl in levels]


__all__.append("cdf_report_rows")
