"""Shared utilities: seeded randomness, validation, numeric helpers."""

from repro.util.mathx import (
    clamp,
    empirical_cdf,
    interval_distance,
    interval_overlap,
    log_at_least_one,
    mean_or_nan,
    point_to_interval_distance,
    quantile,
)
from repro.util.randomness import RandomRouter, derive_seed, stream
from repro.util.validation import (
    check_fraction_interval,
    check_non_negative,
    check_positive,
    check_probability,
    check_range,
    check_unit_interval,
)

__all__ = [
    "RandomRouter",
    "derive_seed",
    "stream",
    "clamp",
    "empirical_cdf",
    "interval_distance",
    "interval_overlap",
    "log_at_least_one",
    "mean_or_nan",
    "point_to_interval_distance",
    "quantile",
    "check_fraction_interval",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_range",
    "check_unit_interval",
]
