"""Small argument-validation helpers shared across the library.

These raise ``ValueError``/``TypeError`` with uniform, greppable messages.
They exist so that configuration mistakes fail loudly at construction time
instead of surfacing as silent mis-simulation hours later.
"""

from __future__ import annotations

import math
from typing import Tuple

__all__ = [
    "check_probability",
    "check_unit_interval",
    "check_positive",
    "check_non_negative",
    "check_range",
    "check_fraction_interval",
]


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` is a probability in [0, 1]."""
    value = float(value)
    if math.isnan(value) or not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return value


def check_unit_interval(value: float, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] (availabilities, hash outputs)."""
    return check_probability(value, name)


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and finite."""
    value = float(value)
    if math.isnan(value) or math.isinf(value) or value <= 0.0:
        raise ValueError(f"{name} must be positive and finite, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0 and finite."""
    value = float(value)
    if math.isnan(value) or math.isinf(value) or value < 0.0:
        raise ValueError(f"{name} must be non-negative and finite, got {value!r}")
    return value


def check_range(lo: float, hi: float, name: str) -> Tuple[float, float]:
    """Validate an ordered pair ``lo <= hi``, both finite."""
    lo, hi = float(lo), float(hi)
    if math.isnan(lo) or math.isnan(hi) or math.isinf(lo) or math.isinf(hi):
        raise ValueError(f"{name} bounds must be finite, got ({lo!r}, {hi!r})")
    if lo > hi:
        raise ValueError(f"{name} must satisfy lo <= hi, got ({lo!r}, {hi!r})")
    return lo, hi


def check_fraction_interval(lo: float, hi: float, name: str) -> Tuple[float, float]:
    """Validate an availability interval ``[lo, hi] ⊆ [0, 1]``."""
    lo, hi = check_range(lo, hi, name)
    if lo < 0.0 or hi > 1.0:
        raise ValueError(f"{name} must lie within [0, 1], got ({lo!r}, {hi!r})")
    return lo, hi
