"""Optional ``np.memmap`` spill storage for large flat arrays.

A 1M-node run carries array payloads that need not live in RAM — the
overlay CSR (~10^8 edges ≈ 1.7 GB of edge columns) and the churn
timeline's session arrays.  :func:`spill` copies an array into an
``.npy``-formatted memmap inside a storage directory and returns the
mapped view, letting the OS page it in and out; :func:`open_array` maps
an existing spill back.  The ``.npy`` container (via
``np.lib.format.open_memmap``) keeps the files self-describing — plain
``np.load`` reads them too.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.telemetry import current as current_telemetry

__all__ = ["spill", "open_array", "array_path"]


def array_path(directory: str, name: str) -> str:
    return os.path.join(directory, f"{name}.npy")


def spill(array: np.ndarray, directory: Optional[str], name: str) -> np.ndarray:
    """Copy ``array`` into ``directory/name.npy`` as a memmap and return
    the mapped view; with ``directory=None`` this is the identity (the
    in-RAM array passes through), so call sites need no branching."""
    if directory is None:
        return array
    telemetry = current_telemetry()
    with telemetry.span("overlay.spill"):
        os.makedirs(directory, exist_ok=True)
        array = np.ascontiguousarray(array)
        mapped = np.lib.format.open_memmap(
            array_path(directory, name), mode="w+", dtype=array.dtype, shape=array.shape
        )
        mapped[...] = array
        mapped.flush()
    if telemetry.enabled:
        telemetry.count("overlay.spilled_bytes", int(array.nbytes))
    return mapped


def open_array(directory: str, name: str, mode: str = "r") -> np.ndarray:
    """Map a previously spilled array back (read-only by default)."""
    return np.lib.format.open_memmap(array_path(directory, name), mode=mode)
