"""Discrete-event simulation engine.

The paper evaluated AVMEM with a C/C++ discrete-event simulation; this
module is our from-scratch Python equivalent.  It provides:

* :class:`Simulator` — a binary-heap event loop with deterministic
  tie-breaking (events at equal times fire in scheduling order).
* :class:`ScheduledEvent` — a cancellable handle for a scheduled callback.
* :class:`PeriodicTask` — a fixed-period repeating callback with optional
  start jitter, used for the paper's protocol periods (discovery every
  minute, refresh every 20 minutes, gossip every second).

Time is a ``float`` in **seconds** throughout the library.

Design notes
------------
Callbacks (rather than coroutines) are the primitive because the protocol
logic in :mod:`repro.core.node` and :mod:`repro.ops` is naturally
event-driven and callbacks keep the hot loop cheap.  A small
generator-based process layer is provided in :mod:`repro.sim.process` for
tests and examples that read better as sequential scripts.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.telemetry import current as current_telemetry

__all__ = ["Simulator", "ScheduledEvent", "PeriodicTask", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid interactions with the simulator (e.g. scheduling
    in the past)."""


@dataclass(order=True)
class _HeapEntry:
    time: float
    seq: int
    event: "ScheduledEvent" = field(compare=False)


class ScheduledEvent:
    """Handle for a scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and can be cancelled with
    :meth:`cancel` any time before they fire.
    """

    __slots__ = ("time", "callback", "args", "_cancelled", "_fired")

    def __init__(self, time: float, callback: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.callback = callback
        self.args = args
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """Whether the callback has already run."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still queued and will fire."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> bool:
        """Cancel the event.  Returns True if it was still pending."""
        if self.pending:
            self._cancelled = True
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"ScheduledEvent(t={self.time:.6f}, {name}, {state})"


class Simulator:
    """Heap-based discrete-event loop.

    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.schedule(2.0, order.append, "b")
    >>> _ = sim.schedule(1.0, order.append, "a")
    >>> sim.run()
    >>> order
    ['a', 'b']
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: List[_HeapEntry] = []
        self._counter = itertools.count()
        self._events_processed = 0
        self._running = False
        self._stop_requested = False
        # Captured once so the per-event hot path stays one attribute
        # check; a simulator built under telemetry.use_recorder() (a
        # service session) records into that session's recorder for its
        # whole lifetime.
        self._telemetry = current_telemetry()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending_count(self) -> int:
        """Number of queued events, including cancelled-but-unpopped ones."""
        return sum(1 for entry in self._queue if entry.event.pending)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        self._drop_cancelled_head()
        if not self._queue:
            return None
        return self._queue[0].time

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time!r} before current time t={self._now!r}"
            )
        if not callable(callback):
            raise TypeError(f"callback must be callable, got {callback!r}")
        event = ScheduledEvent(float(time), callback, args)
        heapq.heappush(self._queue, _HeapEntry(event.time, next(self._counter), event))
        return event

    def defer(self, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at the *current* instant.

        The event fires after every already-queued event at this time
        (equal-time events tie-break by scheduling order) — the hook the
        wavefront dispatcher uses to coalesce all work arriving at one
        simulated instant into a single flush.
        """
        return self.schedule_at(self._now, callback, *args)

    def schedule_at_many(
        self,
        times: Sequence[float],
        callback: Callable[..., Any],
        args_seq: Sequence[Tuple[Any, ...]],
    ) -> List[ScheduledEvent]:
        """Schedule ``callback(*args_seq[k])`` at ``times[k]`` for every k.

        The batched-dispatch sibling of :meth:`schedule_at`: validation
        runs once for the whole cohort and heap entries are pushed
        directly, so enqueueing a delivery cohort costs one Python call
        plus one push per event instead of one full ``schedule_at`` round
        trip each.  Events fire in time order with the same deterministic
        tie-breaking (scheduling order) as individually scheduled ones.
        """
        if len(times) != len(args_seq):
            raise ValueError(
                f"times and args_seq must be parallel, got {len(times)} vs {len(args_seq)}"
            )
        if not callable(callback):
            raise TypeError(f"callback must be callable, got {callback!r}")
        now = self._now
        # Validate the whole cohort before touching the heap, so a bad
        # entry cannot leave a partially-enqueued batch behind (the
        # per-event schedule_at is atomic; this call must be too).
        for time in times:
            if time < now:
                raise SimulationError(
                    f"cannot schedule event at t={time!r} before current time t={now!r}"
                )
        counter = self._counter
        queue = self._queue
        events: List[ScheduledEvent] = []
        for time, args in zip(times, args_seq):
            event = ScheduledEvent(float(time), callback, tuple(args))
            heapq.heappush(queue, _HeapEntry(event.time, next(counter), event))
            events.append(event)
        if self._telemetry.enabled:
            self._telemetry.observe("sim.schedule_cohort_size", len(events))
        return events

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next pending event.  Returns False if none remain."""
        entry = self._pop_next()
        if entry is None:
            return False
        self._now = entry.time
        event = entry.event
        event._fired = True
        event.callback(*event.args)
        self._events_processed += 1
        # The whole per-event cost of telemetry while disabled is this
        # one attribute check (overhead-guarded in tests/test_telemetry.py).
        if self._telemetry.enabled:
            self._telemetry.event_tick(self)
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` fire).

        Returns the number of events executed by this call.
        """
        executed = 0
        self._running, self._stop_requested = True, False
        try:
            while not self._stop_requested:
                if max_events is not None and executed >= max_events:
                    break
                if not self.step():
                    break
                executed += 1
        finally:
            self._running = False
        return executed

    def run_until(self, time: float) -> int:
        """Run all events with ``event.time <= time``; advance clock to ``time``.

        Returns the number of events executed.  The clock is advanced to
        exactly ``time`` even if the queue drains early, so periodic
        bookkeeping that reads :attr:`now` stays aligned.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run until t={time!r}, already at t={self._now!r}"
            )
        executed = 0
        self._running, self._stop_requested = True, False
        try:
            while not self._stop_requested:
                next_time = self.peek_time()
                if next_time is None or next_time > time:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        self._now = max(self._now, float(time))
        return executed

    def stop(self) -> None:
        """Request that a ``run``/``run_until`` in progress return after the
        current event."""
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drop_cancelled_head(self) -> None:
        while self._queue and not self._queue[0].event.pending:
            heapq.heappop(self._queue)

    def _pop_next(self) -> Optional[_HeapEntry]:
        self._drop_cancelled_head()
        if not self._queue:
            return None
        return heapq.heappop(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.3f}, pending={self.pending_count}, "
            f"processed={self._events_processed})"
        )


class PeriodicTask:
    """A callback re-scheduled every ``period`` seconds.

    The task fires first at ``start_delay`` (default: one period, with
    ``jitter`` applied like every later interval) and then every
    ``period`` ± ``jitter`` seconds until :meth:`stop` is called.
    Protocol loops (discovery, refresh, gossip rounds) are built on this.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], Any],
        start_delay: Optional[float] = None,
        jitter: float = 0.0,
        rng=None,
    ):
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period!r}")
        if jitter < 0:
            raise SimulationError(f"jitter must be non-negative, got {jitter!r}")
        if jitter > 0 and rng is None:
            raise SimulationError("jitter requires an rng")
        self._sim = sim
        self._period = float(period)
        self._callback = callback
        self._jitter = float(jitter)
        self._rng = rng
        self._stopped = False
        self._fire_count = 0
        # Without an explicit start_delay the first firing gets the same
        # jitter as every later one — otherwise an unstaggered population
        # that requested jitter still fires its first round in lockstep.
        first = self._next_delay() if start_delay is None else float(start_delay)
        self._handle: Optional[ScheduledEvent] = sim.schedule(first, self._fire)

    @property
    def period(self) -> float:
        return self._period

    @property
    def fire_count(self) -> int:
        """How many times the callback has run."""
        return self._fire_count

    @property
    def stopped(self) -> bool:
        return self._stopped

    def stop(self) -> None:
        """Stop the task; the pending occurrence (if any) is cancelled."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _next_delay(self) -> float:
        if self._jitter == 0:
            return self._period
        # Uniform jitter keeps the mean period intact.
        offset = (float(self._rng.random()) * 2.0 - 1.0) * self._jitter
        return max(1e-9, self._period + offset)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._fire_count += 1
        self._callback()
        if not self._stopped:
            self._handle = self._sim.schedule(self._next_delay(), self._fire)
