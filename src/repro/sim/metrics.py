"""Measurement primitives: counters, distributions, and time series.

Experiment drivers use a :class:`MetricsRegistry` so that figures can be
regenerated from one structured object rather than ad-hoc lists scattered
through protocol code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.util.mathx import empirical_cdf

__all__ = ["Counter", "Distribution", "TimeSeries", "MetricsRegistry"]


@dataclass
class Counter:
    """A monotone event counter."""

    value: int = 0

    def increment(self, by: int = 1) -> None:
        if by < 0:
            raise ValueError(f"counter increments must be non-negative, got {by}")
        self.value += by


class Distribution:
    """Collects float samples; answers mean/quantile/CDF queries.

    Samples are kept in insertion order (useful when a figure needs the
    raw scatter, e.g. Fig 2's per-node sliver sizes) in a doubling numpy
    buffer, so the statistics (mean, quantiles, fraction-below) are one
    vectorized pass instead of Python-level walks.
    """

    __slots__ = ("_buf", "_n")

    def __init__(self, samples: Optional[Iterable[float]] = None):
        self._buf = np.empty(16, dtype=float)
        self._n = 0
        if samples is not None:
            self.extend(samples)

    def _grow(self, need: int) -> None:
        size = self._buf.size
        while size < need:
            size *= 2
        buf = np.empty(size, dtype=float)
        buf[: self._n] = self._buf[: self._n]
        self._buf = buf

    def add(self, sample: float) -> None:
        if self._n == self._buf.size:
            self._grow(self._n + 1)
        self._buf[self._n] = sample
        self._n += 1

    def extend(self, samples: Iterable[float]) -> None:
        arr = np.asarray(
            samples if isinstance(samples, np.ndarray) else list(samples),
            dtype=float,
        ).ravel()
        if not arr.size:
            return
        need = self._n + arr.size
        if need > self._buf.size:
            self._grow(need)
        self._buf[self._n : need] = arr
        self._n = need

    def values(self) -> np.ndarray:
        """The samples as a numpy view (insertion order; do not mutate)."""
        return self._buf[: self._n]

    @property
    def count(self) -> int:
        return self._n

    @property
    def samples(self) -> Tuple[float, ...]:
        return tuple(self.values().tolist())

    def mean(self) -> float:
        return float(self.values().mean()) if self._n else float("nan")

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile level must be in [0, 1], got {q}")
        if not self._n:
            return float("nan")
        return float(np.quantile(self.values(), q))

    def median(self) -> float:
        return self.quantile(0.5)

    def min(self) -> float:
        return float(self.values().min()) if self._n else float("nan")

    def max(self) -> float:
        return float(self.values().max()) if self._n else float("nan")

    def cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        """Empirical CDF as ``(xs, ps)`` arrays."""
        return empirical_cdf(self.values())

    def fraction_below(self, threshold: float) -> float:
        """Fraction of samples ``<= threshold`` (NaN when empty)."""
        if not self._n:
            return float("nan")
        return float(np.count_nonzero(self.values() <= threshold)) / self._n

    def histogram(self, bins: int = 10, lo: float = 0.0, hi: float = 1.0) -> Tuple[np.ndarray, np.ndarray]:
        """Fixed-range histogram — availability axes are always [0, 1]."""
        counts, edges = np.histogram(self.values(), bins=bins, range=(lo, hi))
        return counts, edges

    def summary(self) -> Dict[str, float]:
        if not self._n:
            nan = float("nan")
            return {
                "count": 0.0, "mean": nan, "median": nan,
                "p90": nan, "min": nan, "max": nan,
            }
        values = self.values()
        median, p90 = np.quantile(values, (0.5, 0.9))
        return {
            "count": float(self._n),
            "mean": float(values.mean()),
            "median": float(median),
            "p90": float(p90),
            "min": float(values.min()),
            "max": float(values.max()),
        }

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Distribution(n={self.count}, mean={self.mean():.4g})"


@dataclass
class TimeSeries:
    """(time, value) samples, e.g. online-population over the trace."""

    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def add(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time series must be appended in order; {time} < {self.times[-1]}"
            )
        self.times.append(float(time))
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.times)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.values)

    def last(self) -> Tuple[float, float]:
        if not self.times:
            raise IndexError("empty time series")
        return self.times[-1], self.values[-1]


class MetricsRegistry:
    """Named counters, distributions, and time series for one experiment."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._distributions: Dict[str, Distribution] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter()
        return self._counters[name]

    def distribution(self, name: str) -> Distribution:
        if name not in self._distributions:
            self._distributions[name] = Distribution()
        return self._distributions[name]

    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries()
        return self._series[name]

    def counter_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._counters))

    def distribution_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._distributions))

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict dump of everything, for reports and debugging."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "distributions": {k: d.summary() for k, d in sorted(self._distributions.items())},
            "series": {k: s.count for k, s in sorted(self._series.items())},
        }

    def export(self, recorder=None, prefix: str = "metrics.") -> None:
        """Bridge this registry into the telemetry recorder.

        Counters land as telemetry counters and non-empty distributions
        as summarized telemetry distributions, all under ``prefix`` —
        so an experiment's registry shows up in the same
        :class:`~repro.telemetry.snapshot.TelemetrySnapshot` as the
        engine's own instrumentation.  Empty distributions are skipped
        (their all-NaN summaries carry no information and would not
        survive JSON equality).  No-op while the recorder is disabled.
        """
        if recorder is None:
            from repro.telemetry import current

            recorder = current()
        if not recorder.enabled:
            return
        for name, counter in sorted(self._counters.items()):
            recorder.count(f"{prefix}{name}", counter.value)
        for name, dist in sorted(self._distributions.items()):
            if len(dist):
                recorder.distribution(f"{prefix}{name}", dist.summary())
