"""Measurement primitives: counters, distributions, and time series.

Experiment drivers use a :class:`MetricsRegistry` so that figures can be
regenerated from one structured object rather than ad-hoc lists scattered
through protocol code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.util.mathx import empirical_cdf, mean_or_nan, quantile

__all__ = ["Counter", "Distribution", "TimeSeries", "MetricsRegistry"]


@dataclass
class Counter:
    """A monotone event counter."""

    value: int = 0

    def increment(self, by: int = 1) -> None:
        if by < 0:
            raise ValueError(f"counter increments must be non-negative, got {by}")
        self.value += by


class Distribution:
    """Collects float samples; answers mean/quantile/CDF queries.

    Samples are kept in insertion order (useful when a figure needs the
    raw scatter, e.g. Fig 2's per-node sliver sizes).
    """

    __slots__ = ("_samples",)

    def __init__(self, samples: Optional[Iterable[float]] = None):
        self._samples: List[float] = (
            [float(s) for s in samples] if samples is not None else []
        )

    def add(self, sample: float) -> None:
        self._samples.append(float(sample))

    def extend(self, samples: Iterable[float]) -> None:
        self._samples.extend(float(s) for s in samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> Tuple[float, ...]:
        return tuple(self._samples)

    def mean(self) -> float:
        return mean_or_nan(self._samples)

    def quantile(self, q: float) -> float:
        return quantile(self._samples, q)

    def median(self) -> float:
        return self.quantile(0.5)

    def min(self) -> float:
        return min(self._samples) if self._samples else float("nan")

    def max(self) -> float:
        return max(self._samples) if self._samples else float("nan")

    def cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        """Empirical CDF as ``(xs, ps)`` arrays."""
        return empirical_cdf(self._samples)

    def fraction_below(self, threshold: float) -> float:
        """Fraction of samples ``<= threshold`` (NaN when empty)."""
        if not self._samples:
            return float("nan")
        return sum(1 for s in self._samples if s <= threshold) / len(self._samples)

    def histogram(self, bins: int = 10, lo: float = 0.0, hi: float = 1.0) -> Tuple[np.ndarray, np.ndarray]:
        """Fixed-range histogram — availability axes are always [0, 1]."""
        counts, edges = np.histogram(np.asarray(self._samples, dtype=float), bins=bins, range=(lo, hi))
        return counts, edges

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "median": self.median(),
            "p90": self.quantile(0.9) if self._samples else float("nan"),
            "min": self.min(),
            "max": self.max(),
        }

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Distribution(n={self.count}, mean={self.mean():.4g})"


@dataclass
class TimeSeries:
    """(time, value) samples, e.g. online-population over the trace."""

    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def add(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time series must be appended in order; {time} < {self.times[-1]}"
            )
        self.times.append(float(time))
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.times)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.values)

    def last(self) -> Tuple[float, float]:
        if not self.times:
            raise IndexError("empty time series")
        return self.times[-1], self.values[-1]


class MetricsRegistry:
    """Named counters, distributions, and time series for one experiment."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._distributions: Dict[str, Distribution] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter()
        return self._counters[name]

    def distribution(self, name: str) -> Distribution:
        if name not in self._distributions:
            self._distributions[name] = Distribution()
        return self._distributions[name]

    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries()
        return self._series[name]

    def counter_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._counters))

    def distribution_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._distributions))

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict dump of everything, for reports and debugging."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "distributions": {k: d.summary() for k, d in sorted(self._distributions.items())},
            "series": {k: s.count for k, s in sorted(self._series.items())},
        }
