"""Generator-based processes on top of the callback engine.

A process is a Python generator that ``yield``s delays (in seconds).  The
scheduler resumes it after each delay.  This layer exists for tests,
examples, and scripted scenarios where a sequential narrative is clearer
than chained callbacks; the protocol hot paths use callbacks directly.

>>> sim = Simulator()
>>> log = []
>>> def proc():
...     log.append(("start", sim.now))
...     yield 5.0
...     log.append(("later", sim.now))
>>> _ = spawn(sim, proc())
>>> sim.run()
>>> log
[('start', 0.0), ('later', 5.0)]
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.sim.engine import ScheduledEvent, SimulationError, Simulator

__all__ = ["Process", "spawn"]

ProcessGenerator = Generator[float, None, Any]


class Process:
    """A running generator process.

    The generator yields non-negative float delays.  ``StopIteration``
    terminates the process and captures its return value in
    :attr:`result`.  Exceptions raised inside the generator propagate out
    of the simulator's ``run`` call — silent failure would corrupt
    experiments.
    """

    __slots__ = ("_sim", "_gen", "_done", "result", "_pending", "_on_done")

    def __init__(
        self,
        sim: Simulator,
        gen: ProcessGenerator,
        delay: float = 0.0,
        on_done: Optional[Callable[["Process"], None]] = None,
    ):
        self._sim = sim
        self._gen = gen
        self._done = False
        self.result: Any = None
        self._on_done = on_done
        self._pending: Optional[ScheduledEvent] = sim.schedule(delay, self._resume)

    @property
    def done(self) -> bool:
        """Whether the generator has finished (or been interrupted)."""
        return self._done

    def interrupt(self) -> None:
        """Stop the process; the generator's ``close()`` is invoked so its
        ``finally`` blocks run."""
        if self._done:
            return
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self._gen.close()
        self._finish(None)

    def _resume(self) -> None:
        if self._done:
            return
        self._pending = None
        try:
            delay = next(self._gen)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None))
            return
        if not isinstance(delay, (int, float)) or delay < 0:
            self._gen.close()
            self._finish(None)
            raise SimulationError(
                f"process must yield a non-negative delay, got {delay!r}"
            )
        self._pending = self._sim.schedule(float(delay), self._resume)

    def _finish(self, result: Any) -> None:
        self._done = True
        self.result = result
        if self._on_done is not None:
            self._on_done(self)


def spawn(
    sim: Simulator,
    gen: ProcessGenerator,
    delay: float = 0.0,
    on_done: Optional[Callable[[Process], None]] = None,
) -> Process:
    """Start a generator process ``delay`` seconds from now."""
    return Process(sim, gen, delay=delay, on_done=on_done)
