"""Discrete-event simulation substrate: engine, processes, network, metrics."""

from repro.sim.engine import PeriodicTask, ScheduledEvent, SimulationError, Simulator
from repro.sim.latency import (
    PAPER_HOP_LATENCY,
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.sim.metrics import Counter, Distribution, MetricsRegistry, TimeSeries
from repro.sim.network import (
    AlwaysOnline,
    DropReason,
    Envelope,
    Network,
    NetworkStats,
    PresenceOracle,
)
from repro.sim.process import Process, spawn

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "PeriodicTask",
    "SimulationError",
    "Process",
    "spawn",
    "LatencyModel",
    "UniformLatency",
    "ConstantLatency",
    "LogNormalLatency",
    "PAPER_HOP_LATENCY",
    "Network",
    "NetworkStats",
    "Envelope",
    "DropReason",
    "PresenceOracle",
    "AlwaysOnline",
    "Counter",
    "Distribution",
    "TimeSeries",
    "MetricsRegistry",
]
