"""Per-message latency models for the simulated network.

The paper draws each virtual-hop latency uniformly from [20 ms, 80 ms]
(Section 4.2, retried-greedy experiments).  :class:`UniformLatency` with
the default bounds reproduces that; the other models support sensitivity
studies.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.util.validation import check_non_negative, check_positive

__all__ = [
    "LatencyModel",
    "UniformLatency",
    "ConstantLatency",
    "LogNormalLatency",
    "PAPER_HOP_LATENCY",
]


class LatencyModel(abc.ABC):
    """Strategy producing a one-way delivery latency per message, in seconds.

    Models implement the vectorized :meth:`sample_array` (the batched
    dispatch layer draws whole send cohorts in one call); the scalar
    :meth:`sample` delegates to it, so a cohort of ``n`` draws consumes
    the rng stream exactly like ``n`` successive scalar draws — the
    invariant the batched-vs-per-hop dispatch parity tests rely on.
    """

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one latency (seconds, > 0)."""
        return float(self.sample_array(rng, 1)[0])

    @abc.abstractmethod
    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` latencies in one vectorized pass (seconds, > 0)."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected latency in seconds (used by tests and reports)."""


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``value`` seconds (handy in unit tests)."""

    def __init__(self, value: float):
        self.value = check_positive(value, "latency value")

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # Deterministic: consumes no randomness, like the scalar path.
        return np.full(n, self.value, dtype=float)

    def mean(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"ConstantLatency({self.value!r})"


class UniformLatency(LatencyModel):
    """Uniform latency on ``[low, high]`` seconds.

    Defaults are the paper's per-hop bounds: 20 ms to 80 ms.
    """

    def __init__(self, low: float = 0.020, high: float = 0.080):
        self.low = check_positive(low, "latency low bound")
        self.high = check_positive(high, "latency high bound")
        if self.high < self.low:
            raise ValueError(f"high must be >= low, got [{low!r}, {high!r}]")

    def sample(self, rng: np.random.Generator) -> float:
        # Value- and stream-identical to sample_array(rng, 1)[0], without
        # the per-call array allocation (singles are the anycast/ack hot
        # path).
        return float(rng.uniform(self.low, self.high))

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"UniformLatency({self.low!r}, {self.high!r})"


class LogNormalLatency(LatencyModel):
    """Log-normal latency — heavier-tailed model for WAN sensitivity studies.

    Parameterized by the desired ``median`` (seconds) and the log-space
    standard deviation ``sigma``.
    """

    def __init__(self, median: float = 0.045, sigma: float = 0.5):
        self.median = check_positive(median, "latency median")
        self.sigma = check_non_negative(sigma, "latency sigma")
        self._mu = math.log(self.median)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self._mu, self.sigma))

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(self._mu, self.sigma, size=n)

    def mean(self) -> float:
        return self.median * math.exp(self.sigma**2 / 2.0)

    def __repr__(self) -> str:
        return f"LogNormalLatency(median={self.median!r}, sigma={self.sigma!r})"


#: The paper's per-hop model: uniform on [20 ms, 80 ms].
PAPER_HOP_LATENCY = UniformLatency(0.020, 0.080)
