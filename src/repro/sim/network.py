"""Simulated message-passing network with presence-gated delivery.

Messages between nodes take a latency drawn from a
:class:`~repro.sim.latency.LatencyModel`.  Delivery only succeeds if the
destination is online at the arrival instant (per the churn trace); a
message to an offline node is silently dropped — exactly the failure mode
that the paper's retried-greedy anycast (Section 3.2) exists to mask.

Single messages go through :meth:`Network.send` — one latency draw, one
simulator event.  Fan-out cohorts (multicast floods, gossip rounds) go
through :meth:`Network.send_batch`, which samples the whole cohort's
latencies in one vectorized draw, answers destination presence *at the
per-message arrival instants* with one batched oracle query, and
enqueues one simulator event per arrival-time cohort instead of one per
message.  Both paths deliver identically (same rng stream consumption,
same handler invocation order) — property-tested in
``tests/test_dispatch.py`` — and ``batched=False`` degrades
``send_batch`` to the per-hop loop for parity baselines.

The network layer is deliberately dumb: no acknowledgements, no retries.
Those are protocol behaviours and live in :mod:`repro.ops`, built from
plain messages plus simulator timeouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Protocol, Sequence

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.latency import LatencyModel, UniformLatency
from repro.telemetry import current as current_telemetry
from repro.util.randomness import fallback_rng

__all__ = ["Network", "NetworkStats", "PresenceOracle", "Envelope", "DropReason"]

NodeKey = Hashable
Handler = Callable[["Envelope"], None]


class PresenceOracle(Protocol):
    """Answers whether a node is online at a given simulation time.

    Implemented by :class:`repro.churn.trace.ChurnTrace` and by the
    always-on oracle used in unit tests.  Presence must be a pure
    function of ``(node, time)`` — the batched dispatch path evaluates
    arrival-instant presence at send time, which is only equivalent to
    an arrival-time query for oracles that answer consistently.  Oracles
    may optionally provide a vectorized
    ``is_online_array(nodes, times) -> bool array`` (as
    :class:`~repro.churn.trace.ChurnTrace` does); the network batches
    through it when present and falls back to scalar queries otherwise.
    """

    def is_online(self, node: NodeKey, time: float) -> bool:  # pragma: no cover
        ...


class AlwaysOnline:
    """Presence oracle that reports every node online (for tests/examples)."""

    def is_online(self, node: NodeKey, time: float) -> bool:
        return True


@dataclass(frozen=True)
class Envelope:
    """A message in flight (or delivered)."""

    src: NodeKey
    dst: NodeKey
    payload: Any
    sent_at: float
    delivered_at: float


class DropReason:
    """Enumerates why a message failed to deliver (plain strings for cheap
    counter keys)."""

    SRC_OFFLINE = "src_offline"
    DST_OFFLINE = "dst_offline"
    NO_HANDLER = "no_handler"


@dataclass
class NetworkStats:
    """Running message accounting for a :class:`Network`."""

    sent: int = 0
    delivered: int = 0
    dropped: Dict[str, int] = field(default_factory=dict)

    @property
    def dropped_total(self) -> int:
        return sum(self.dropped.values())

    def record_drop(self, reason: str, count: int = 1) -> None:
        self.dropped[reason] = self.dropped.get(reason, 0) + count

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict copy for reports."""
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": dict(self.dropped),
            "dropped_total": self.dropped_total,
        }


class Network:
    """Latency- and presence-aware message router.

    Parameters
    ----------
    sim:
        The driving simulator.
    latency:
        Per-message one-way latency model.  Defaults to the paper's
        uniform [20 ms, 80 ms].
    presence:
        Oracle deciding who is online when.  Defaults to always-online.
    rng:
        Random stream for latency sampling.
    check_sender:
        When True (default), a message from a node that is offline at send
        time is dropped immediately — a crashed node cannot transmit.
    batched:
        When True (default), :meth:`send_batch` dispatches cohorts with
        vectorized latency/presence and per-arrival-cohort events; when
        False it degrades to a loop of scalar :meth:`send` calls — the
        preserved per-hop path used as the parity/benchmark baseline.
    batch_threshold:
        Cohorts smaller than this go through the scalar loop even when
        ``batched`` — below roughly a dozen messages the fixed cost of
        the vectorized draws/presence query exceeds the scalar path
        (measured in ``benchmarks/bench_dispatch.py``).  Both paths are
        behaviourally identical (same rng consumption, same delivery
        order), so the threshold is purely a performance knob; parity
        tests pin it to 1 to force the vector path.
    """

    #: cohort size below which send_batch takes the scalar loop
    DEFAULT_BATCH_THRESHOLD = 12

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        presence: Optional[PresenceOracle] = None,
        rng: Optional[np.random.Generator] = None,
        check_sender: bool = True,
        batched: bool = True,
        batch_threshold: Optional[int] = None,
    ):
        self.sim = sim
        self.latency = latency if latency is not None else UniformLatency()
        self.presence = presence if presence is not None else AlwaysOnline()
        self.rng = rng if rng is not None else fallback_rng()
        self.check_sender = check_sender
        self.batched = batched
        self.batch_threshold = (
            self.DEFAULT_BATCH_THRESHOLD if batch_threshold is None else int(batch_threshold)
        )
        self.stats = NetworkStats()
        # Captured once (see Simulator): a network built under
        # telemetry.use_recorder() records into that session's recorder.
        self._telemetry = current_telemetry()
        self._handlers: Dict[NodeKey, Handler] = {}
        #: optional (begin, end) callbacks bracketing every multi-message
        #: delivery cohort — the operation engine hangs its wavefront
        #: hold/release here so all receptions at one simulated instant
        #: dispatch their forwards as a single cohort.
        self.cohort_hooks: Optional["tuple[Callable[[], None], Callable[[], None]]"] = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def attach(self, node: NodeKey, handler: Handler) -> None:
        """Register the message handler for ``node`` (one per node)."""
        if node in self._handlers:
            raise ValueError(f"node {node!r} already attached")
        self._handlers[node] = handler

    def detach(self, node: NodeKey) -> None:
        """Remove a node's handler; in-flight messages to it will be dropped."""
        self._handlers.pop(node, None)

    def is_attached(self, node: NodeKey) -> bool:
        return node in self._handlers

    @property
    def node_count(self) -> int:
        return len(self._handlers)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: NodeKey, dst: NodeKey, payload: Any) -> bool:
        """Send ``payload`` from ``src`` to ``dst``.

        Returns True if the message was put on the wire (it may still be
        dropped at arrival if the destination has gone offline by then).
        Returns False if the sender itself was offline.
        """
        now = self.sim.now
        if self.check_sender and not self.presence.is_online(src, now):
            self.stats.record_drop(DropReason.SRC_OFFLINE)
            return False
        self.stats.sent += 1
        delay = self.latency.sample(self.rng)
        deliver_at = now + delay
        envelope = Envelope(src=src, dst=dst, payload=payload, sent_at=now, delivered_at=deliver_at)
        self.sim.schedule(delay, self._deliver, envelope)
        return True

    def send_batch(self, src: NodeKey, dsts: Sequence[NodeKey], payload: Any) -> int:
        """Send one ``payload`` from ``src`` to every node in ``dsts``.

        The batched equivalent of one :meth:`send` per destination, with
        identical semantics and accounting totals: the cohort's latencies
        come from one vectorized :meth:`~repro.sim.latency.LatencyModel.
        sample_array` draw (consuming the rng stream exactly like
        per-destination scalar draws, in ``dsts`` order), destination
        presence at the per-message arrival instants is answered by one
        batched oracle query, and deliveries are enqueued as **one
        simulator event per arrival-time cohort** — a
        :meth:`_deliver_batch` that walks the cohort's envelopes in send
        order, preserving the handler invocation order the per-message
        events would have produced.

        Messages whose destination is offline at arrival record their
        ``DST_OFFLINE`` drop immediately (the per-hop path records it at
        the arrival instant; totals are identical, only the counter
        timing differs) and schedule no event at all.  Returns the number
        of messages put on the wire (0 when the sender is offline — no
        latency is drawn, matching the scalar path).
        """
        sent, _ = self.send_batch_suppressing(src, dsts, payload, None)
        return sent

    def send_batch_suppressing(
        self,
        src: NodeKey,
        dsts: Sequence[NodeKey],
        payload: Any,
        suppress: Optional[np.ndarray],
    ) -> "tuple[int, int]":
        """:meth:`send_batch` with a per-destination suppression mask.

        ``suppress[k]`` marks a destination whose reception is already
        known to be a no-op for the protocol (e.g. a multicast duplicate:
        the seen-set only grows, so seen-at-send implies seen-at-arrival).
        A suppressed message is accounted exactly as if it had traveled —
        its latency draw still happens in ``dsts`` order (stream parity
        with the per-hop path), an offline-at-arrival destination still
        records ``DST_OFFLINE``, a missing handler still records
        ``NO_HANDLER``, and an otherwise-deliverable one still counts in
        ``stats.delivered`` — but **no simulator event is scheduled** for
        it.  Returns ``(on_wire, suppressed_delivered)`` where the second
        element is how many suppressed messages would have reached their
        handler (the caller credits those as duplicate receptions).

        On the scalar fallback (``batched`` off or cohort below the
        threshold) every message is sent normally and
        ``suppressed_delivered`` is 0 — the receiver-side seen-set check
        then accounts the duplicates, so totals agree on both paths.
        """
        n = len(dsts)
        if n == 0:
            return 0, 0
        if not self.batched or n < self.batch_threshold:
            sent = 0
            for dst in dsts:
                sent += bool(self.send(src, dst, payload))
            return sent, 0
        now = self.sim.now
        if self._telemetry.enabled:
            self._telemetry.observe("net.batch_cohort_size", n)
        if self.check_sender and not self.presence.is_online(src, now):
            self.stats.record_drop(DropReason.SRC_OFFLINE, count=n)
            return 0, 0
        self.stats.sent += n
        arrivals = now + self.latency.sample_array(self.rng, n)
        online = self._presence_array(dsts, arrivals)
        offline_count = int(n - np.count_nonzero(online))
        if offline_count:
            self.stats.record_drop(DropReason.DST_OFFLINE, count=offline_count)
            if self._telemetry.enabled:
                self._telemetry.count("net.drop.dst_offline", offline_count)
        if suppress is not None:
            deliver_mask = online & ~suppress
            suppressed_live = np.flatnonzero(online & suppress)
            suppressed_delivered = 0
            for i in suppressed_live.tolist():
                # Handler resolution mirrors delivery time: a detached
                # destination drops exactly as _deliver_batch would.
                if dsts[i] in self._handlers:
                    self.stats.delivered += 1
                    suppressed_delivered += 1
                else:
                    self.stats.record_drop(DropReason.NO_HANDLER)
        else:
            deliver_mask = online
            suppressed_delivered = 0
        if suppress is not None and self._telemetry.enabled:
            self._telemetry.count(
                "net.suppressed_duplicates", int(np.count_nonzero(suppress))
            )
        live = np.flatnonzero(deliver_mask)
        if not live.size:
            return n, suppressed_delivered
        live_times = arrivals[live]
        # Unique arrival times define the cohorts; walking the live
        # indices in send order keeps each cohort's envelope list in the
        # order the per-message events would have fired (equal-time
        # events tie-break by scheduling order).
        unique_times, inverse = np.unique(live_times, return_inverse=True)
        cohorts: List[List[Envelope]] = [[] for _ in range(unique_times.size)]
        for k, i in zip(inverse.tolist(), live.tolist()):
            cohorts[k].append(
                Envelope(
                    src=src,
                    dst=dsts[i],
                    payload=payload,
                    sent_at=now,
                    delivered_at=float(arrivals[i]),
                )
            )
        self.sim.schedule_at_many(
            unique_times.tolist(),
            self._deliver_batch,
            [(cohort,) for cohort in cohorts],
        )
        return n, suppressed_delivered

    def send_many(
        self, items: Sequence["tuple[NodeKey, NodeKey, Any]"]
    ) -> List[bool]:
        """Dispatch a heterogeneous cohort of ``(src, dst, payload)`` sends.

        The wavefront sibling of :meth:`send_batch`: one vectorized
        sender-presence query at the current instant, one latency draw
        for the live-sender messages (in item order — an offline sender
        draws nothing, exactly like scalar :meth:`send`), one batched
        destination-presence query at the per-message arrival instants,
        and one simulator event per arrival-time cohort.  Returns the
        per-item on-wire flags (``False`` ⇔ the sender was offline), in
        item order — callers arm ack timeouts only for wired items, as
        they would off scalar :meth:`send` return values.

        Degrades to a loop of scalar sends when ``batched`` is off or the
        cohort is below the threshold; both paths consume the latency
        stream identically and deliver in the same order.
        """
        n = len(items)
        wired = [False] * n
        if n == 0:
            return wired
        if not self.batched or n < self.batch_threshold:
            for k, (src, dst, payload) in enumerate(items):
                wired[k] = self.send(src, dst, payload)
            return wired
        now = self.sim.now
        if self._telemetry.enabled:
            self._telemetry.observe("net.wavefront_cohort_size", n)
        if self.check_sender:
            src_online = self._presence_array([item[0] for item in items], now)
        else:
            src_online = np.ones(n, dtype=bool)
        live_src = np.flatnonzero(src_online)
        if live_src.size < n:
            self.stats.record_drop(
                DropReason.SRC_OFFLINE, count=int(n - live_src.size)
            )
        if not live_src.size:
            return wired
        m = int(live_src.size)
        self.stats.sent += m
        arrivals = now + self.latency.sample_array(self.rng, m)
        live_items = [items[int(i)] for i in live_src]
        for i in live_src.tolist():
            wired[i] = True
        online = self._presence_array([item[1] for item in live_items], arrivals)
        deliverable = np.flatnonzero(online)
        if deliverable.size < m:
            self.stats.record_drop(
                DropReason.DST_OFFLINE, count=int(m - deliverable.size)
            )
            if self._telemetry.enabled:
                self._telemetry.count(
                    "net.drop.dst_offline", int(m - deliverable.size)
                )
        if not deliverable.size:
            return wired
        live_times = arrivals[deliverable]
        unique_times, inverse = np.unique(live_times, return_inverse=True)
        cohorts: List[List[Envelope]] = [[] for _ in range(unique_times.size)]
        for k, j in zip(inverse.tolist(), deliverable.tolist()):
            src, dst, payload = live_items[j]
            cohorts[k].append(
                Envelope(
                    src=src,
                    dst=dst,
                    payload=payload,
                    sent_at=now,
                    delivered_at=float(arrivals[j]),
                )
            )
        self.sim.schedule_at_many(
            unique_times.tolist(),
            self._deliver_batch,
            [(cohort,) for cohort in cohorts],
        )
        return wired

    def is_online(self, node: NodeKey) -> bool:
        """Convenience: is ``node`` online right now?"""
        return self.presence.is_online(node, self.sim.now)

    def online_array(self, nodes: Sequence[NodeKey]) -> np.ndarray:
        """Presence of many nodes right now — one batched oracle query."""
        return self._presence_array(nodes, self.sim.now)

    def _presence_array(self, nodes: Sequence[NodeKey], times) -> np.ndarray:
        """Boolean presence of ``nodes[k]`` at ``times`` (scalar or
        parallel array), batched through the oracle when it can."""
        batch = getattr(self.presence, "is_online_array", None)
        if batch is not None:
            try:
                return np.asarray(batch(nodes, times), dtype=bool)
            except KeyError:
                # A node the oracle doesn't know: the scalar protocol
                # answers False for unknowns, so fall through to it.
                pass
        times_arr = np.broadcast_to(np.asarray(times, dtype=float), (len(nodes),))
        return np.fromiter(
            (self.presence.is_online(node, float(t)) for node, t in zip(nodes, times_arr)),
            dtype=bool,
            count=len(nodes),
        )

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _deliver(self, envelope: Envelope) -> None:
        if not self.presence.is_online(envelope.dst, self.sim.now):
            self.stats.record_drop(DropReason.DST_OFFLINE)
            return
        handler = self._handlers.get(envelope.dst)
        if handler is None:
            self.stats.record_drop(DropReason.NO_HANDLER)
            return
        self.stats.delivered += 1
        handler(envelope)

    def _deliver_batch(self, envelopes: List[Envelope]) -> None:
        """Deliver one arrival-time cohort.

        Presence was already checked (for the arrival instant) at send
        time; handlers are still resolved here, at fire time, so a node
        detached mid-flight drops its messages exactly as the per-hop
        path would.

        Multi-message cohorts are bracketed by :attr:`cohort_hooks` when
        set: everything the handlers enqueue at this instant (anycast
        forwards, flood fan-outs) flushes as one wavefront after the
        last reception.
        """
        handlers = self._handlers
        stats = self.stats
        hooks = self.cohort_hooks if len(envelopes) > 1 else None
        if hooks is not None:
            hooks[0]()
        try:
            for envelope in envelopes:
                handler = handlers.get(envelope.dst)
                if handler is None:
                    stats.record_drop(DropReason.NO_HANDLER)
                    continue
                stats.delivered += 1
                handler(envelope)
        finally:
            if hooks is not None:
                hooks[1]()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(nodes={self.node_count}, sent={self.stats.sent}, "
            f"delivered={self.stats.delivered}, dropped={self.stats.dropped_total})"
        )
