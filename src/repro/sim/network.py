"""Simulated message-passing network with presence-gated delivery.

Messages between nodes take a latency drawn from a
:class:`~repro.sim.latency.LatencyModel`.  Delivery only succeeds if the
destination is online at the arrival instant (per the churn trace); a
message to an offline node is silently dropped — exactly the failure mode
that the paper's retried-greedy anycast (Section 3.2) exists to mask.

The network layer is deliberately dumb: no acknowledgements, no retries.
Those are protocol behaviours and live in :mod:`repro.ops`, built from
plain messages plus simulator timeouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Optional, Protocol

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.latency import LatencyModel, UniformLatency

__all__ = ["Network", "NetworkStats", "PresenceOracle", "Envelope", "DropReason"]

NodeKey = Hashable
Handler = Callable[["Envelope"], None]


class PresenceOracle(Protocol):
    """Answers whether a node is online at a given simulation time.

    Implemented by :class:`repro.churn.trace.ChurnTrace` and by the
    always-on oracle used in unit tests.
    """

    def is_online(self, node: NodeKey, time: float) -> bool:  # pragma: no cover
        ...


class AlwaysOnline:
    """Presence oracle that reports every node online (for tests/examples)."""

    def is_online(self, node: NodeKey, time: float) -> bool:
        return True


@dataclass(frozen=True)
class Envelope:
    """A message in flight (or delivered)."""

    src: NodeKey
    dst: NodeKey
    payload: Any
    sent_at: float
    delivered_at: float


class DropReason:
    """Enumerates why a message failed to deliver (plain strings for cheap
    counter keys)."""

    SRC_OFFLINE = "src_offline"
    DST_OFFLINE = "dst_offline"
    NO_HANDLER = "no_handler"


@dataclass
class NetworkStats:
    """Running message accounting for a :class:`Network`."""

    sent: int = 0
    delivered: int = 0
    dropped: Dict[str, int] = field(default_factory=dict)

    @property
    def dropped_total(self) -> int:
        return sum(self.dropped.values())

    def record_drop(self, reason: str) -> None:
        self.dropped[reason] = self.dropped.get(reason, 0) + 1

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict copy for reports."""
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": dict(self.dropped),
            "dropped_total": self.dropped_total,
        }


class Network:
    """Latency- and presence-aware message router.

    Parameters
    ----------
    sim:
        The driving simulator.
    latency:
        Per-message one-way latency model.  Defaults to the paper's
        uniform [20 ms, 80 ms].
    presence:
        Oracle deciding who is online when.  Defaults to always-online.
    rng:
        Random stream for latency sampling.
    check_sender:
        When True (default), a message from a node that is offline at send
        time is dropped immediately — a crashed node cannot transmit.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        presence: Optional[PresenceOracle] = None,
        rng: Optional[np.random.Generator] = None,
        check_sender: bool = True,
    ):
        self.sim = sim
        self.latency = latency if latency is not None else UniformLatency()
        self.presence = presence if presence is not None else AlwaysOnline()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.check_sender = check_sender
        self.stats = NetworkStats()
        self._handlers: Dict[NodeKey, Handler] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def attach(self, node: NodeKey, handler: Handler) -> None:
        """Register the message handler for ``node`` (one per node)."""
        if node in self._handlers:
            raise ValueError(f"node {node!r} already attached")
        self._handlers[node] = handler

    def detach(self, node: NodeKey) -> None:
        """Remove a node's handler; in-flight messages to it will be dropped."""
        self._handlers.pop(node, None)

    def is_attached(self, node: NodeKey) -> bool:
        return node in self._handlers

    @property
    def node_count(self) -> int:
        return len(self._handlers)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: NodeKey, dst: NodeKey, payload: Any) -> bool:
        """Send ``payload`` from ``src`` to ``dst``.

        Returns True if the message was put on the wire (it may still be
        dropped at arrival if the destination has gone offline by then).
        Returns False if the sender itself was offline.
        """
        now = self.sim.now
        if self.check_sender and not self.presence.is_online(src, now):
            self.stats.record_drop(DropReason.SRC_OFFLINE)
            return False
        self.stats.sent += 1
        delay = self.latency.sample(self.rng)
        deliver_at = now + delay
        envelope = Envelope(src=src, dst=dst, payload=payload, sent_at=now, delivered_at=deliver_at)
        self.sim.schedule(delay, self._deliver, envelope)
        return True

    def is_online(self, node: NodeKey) -> bool:
        """Convenience: is ``node`` online right now?"""
        return self.presence.is_online(node, self.sim.now)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _deliver(self, envelope: Envelope) -> None:
        if not self.presence.is_online(envelope.dst, self.sim.now):
            self.stats.record_drop(DropReason.DST_OFFLINE)
            return
        handler = self._handlers.get(envelope.dst)
        if handler is None:
            self.stats.record_drop(DropReason.NO_HANDLER)
            return
        self.stats.delivered += 1
        handler(envelope)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(nodes={self.node_count}, sent={self.stats.sent}, "
            f"delivered={self.stats.delivered}, dropped={self.stats.dropped_total})"
        )
