"""Per-operation outcome records.

Each anycast/multicast gets a mutable record the engine fills in as the
operation progresses; experiment drivers read the records after the
simulation settles.  The terminal-status taxonomy matches Fig 9's
categories (delivered / TTL expired / retry expired) plus the silent
failure modes a trace-driven simulation surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.ids import NodeId
from repro.ops.spec import TargetSpec

__all__ = ["AnycastStatus", "AnycastRecord", "MulticastRecord"]


class AnycastStatus:
    """Terminal states of an anycast."""

    PENDING = "pending"
    DELIVERED = "delivered"
    TTL_EXPIRED = "ttl_expired"
    RETRY_EXPIRED = "retry_expired"
    NO_NEIGHBOR = "no_neighbor"  # forwarding node had no usable candidate
    LOST = "lost"  # dropped in flight with no retry budget watching it
    INITIATOR_OFFLINE = "initiator_offline"

    TERMINAL = (
        DELIVERED,
        TTL_EXPIRED,
        RETRY_EXPIRED,
        NO_NEIGHBOR,
        LOST,
        INITIATOR_OFFLINE,
    )

    #: Non-delivered statuses a late genuine delivery may override.  A
    #: retried-greedy operation can have several copies of the message in
    #: flight at once (ack lost or late → the holder re-sends while the
    #: original is still traveling); the copy that dies first classifies
    #: the record terminally, but a surviving duplicate reaching the
    #: target is still a real delivery and must win.  LOST and
    #: INITIATOR_OFFLINE are excluded: both are only assigned when no
    #: message can still be in flight.
    DELIVERY_OVERRIDABLE = (PENDING, TTL_EXPIRED, RETRY_EXPIRED, NO_NEIGHBOR)


@dataclass
class AnycastRecord:
    """Outcome of one anycast operation."""

    op_id: int
    initiator: NodeId
    target: TargetSpec
    policy: str
    selector: str
    started_at: float
    status: str = AnycastStatus.PENDING
    delivered_at: Optional[float] = None
    delivery_node: Optional[NodeId] = None
    delivery_node_true_availability: Optional[float] = None
    hops: Optional[int] = None
    data_messages: int = 0
    ack_messages: int = 0
    retries_used: int = 0

    @property
    def delivered(self) -> bool:
        return self.status == AnycastStatus.DELIVERED

    @property
    def latency(self) -> Optional[float]:
        """Delivery latency in seconds (None if not delivered)."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.started_at

    def finalize(self) -> None:
        """Classify a still-pending record as LOST (called after the
        simulation has settled: nothing further can happen)."""
        if self.status == AnycastStatus.PENDING:
            self.status = AnycastStatus.LOST

    def as_row(self) -> Dict[str, object]:
        return {
            "op_id": self.op_id,
            "policy": self.policy,
            "selector": self.selector,
            "target": str(self.target),
            "status": self.status,
            "hops": self.hops,
            "latency": self.latency,
            "data_messages": self.data_messages,
            "retries_used": self.retries_used,
        }


@dataclass
class MulticastRecord:
    """Outcome of one multicast operation (both stages)."""

    op_id: int
    initiator: NodeId
    target: TargetSpec
    mode: str  # "flood" | "gossip"
    selector: str
    started_at: float
    anycast: Optional[AnycastRecord] = None
    #: nodes eligible at start: online with true availability in target
    eligible: Set[NodeId] = field(default_factory=set)
    #: node -> first delivery time (in-range receivers only)
    deliveries: Dict[NodeId, float] = field(default_factory=dict)
    #: (node, time) receptions by out-of-range nodes
    spam: List[Tuple[NodeId, float]] = field(default_factory=list)
    data_messages: int = 0
    duplicate_receptions: int = 0

    @property
    def reached_range(self) -> bool:
        """Did stage 1 get the message into the target range at all?"""
        return bool(self.deliveries)

    def reliability(self) -> float:
        """(number delivered) / (number that could have been delivered) —
        the Fig 13 metric.  NaN when nobody was eligible."""
        if not self.eligible:
            return float("nan")
        delivered_eligible = sum(1 for node in self.deliveries if node in self.eligible)
        return delivered_eligible / len(self.eligible)

    def spam_ratio(self) -> float:
        """(number spam) / (number could have been delivered) — Fig 12."""
        if not self.eligible:
            return float("nan")
        return len(self.spam) / len(self.eligible)

    def worst_latency(self) -> Optional[float]:
        """Time of the last in-range delivery, relative to start — Fig 11."""
        if not self.deliveries:
            return None
        return max(self.deliveries.values()) - self.started_at

    def as_row(self) -> Dict[str, object]:
        return {
            "op_id": self.op_id,
            "mode": self.mode,
            "selector": self.selector,
            "target": str(self.target),
            "eligible": len(self.eligible),
            "delivered": len(self.deliveries),
            "reliability": self.reliability(),
            "spam_ratio": self.spam_ratio(),
            "worst_latency": self.worst_latency(),
            "data_messages": self.data_messages,
        }
