"""Management operations: {threshold, range} × {anycast, multicast}."""

from repro.ops.anycast import (
    POLICY_NAMES,
    AnnealingPolicy,
    ForwardingPolicy,
    GreedyPolicy,
    RetriedGreedyPolicy,
    make_policy,
)
from repro.ops.engine import OperationEngine
from repro.ops.log import OperationLog, OperationLogBuilder
from repro.ops.messages import AnycastAck, AnycastMessage, MulticastMessage
from repro.ops.plan import (
    OPERATION_KINDS,
    TIMING_MODES,
    LaunchSchedule,
    OperationItem,
    OperationPlan,
    OperationTiming,
)
from repro.ops.results import AnycastRecord, AnycastStatus, MulticastRecord
from repro.ops.runner import OperationRunner, PlanExecution
from repro.ops.spec import PAPER_RANGES, PAPER_THRESHOLDS, InitiatorBand, TargetSpec

__all__ = [
    "TargetSpec",
    "InitiatorBand",
    "PAPER_RANGES",
    "PAPER_THRESHOLDS",
    "ForwardingPolicy",
    "GreedyPolicy",
    "RetriedGreedyPolicy",
    "AnnealingPolicy",
    "make_policy",
    "POLICY_NAMES",
    "AnycastMessage",
    "AnycastAck",
    "MulticastMessage",
    "AnycastRecord",
    "AnycastStatus",
    "MulticastRecord",
    "OperationEngine",
    "OperationItem",
    "OperationPlan",
    "OperationTiming",
    "OperationLog",
    "OperationLogBuilder",
    "OperationRunner",
    "PlanExecution",
    "LaunchSchedule",
    "TIMING_MODES",
    "OPERATION_KINDS",
]
