"""The management-operation engine: executes {threshold, range} ×
{anycast, multicast} over an AVMEM node population (Section 3.2).

One engine instance serves all nodes of a simulation.  It registers
handlers for the operation message types on every node, tracks one
record per operation, and implements:

* anycast forwarding under any :class:`~repro.ops.anycast.ForwardingPolicy`
  (greedy / retried-greedy / annealing × HS-only / VS-only / HS+VS);
* the ack/timeout retry machinery of retried-greedy forwarding;
* two-stage multicast — anycast into the range, then flooding or gossip
  dissemination within it.

Ground truth (who was *really* in range and online) comes from a truth
callable so spam and reliability metrics are measured against reality,
while all protocol decisions use the nodes' cached beliefs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.config import AvmemConfig
from repro.core.ids import NodeId
from repro.core.membership import SliverSelector
from repro.core.node import AvmemNode
from repro.ops.anycast import ForwardingPolicy, make_policy
from repro.ops.messages import AnycastAck, AnycastMessage, MulticastMessage
from repro.ops.results import AnycastRecord, AnycastStatus, MulticastRecord
from repro.ops.spec import TargetSpec
from repro.sim.engine import ScheduledEvent, Simulator
from repro.sim.network import Envelope, Network
from repro.telemetry import current as current_telemetry
from repro.util.randomness import fallback_rng

__all__ = ["OperationEngine"]

TruthFn = Callable[[NodeId], float]
TruthEligibleFn = Callable[[TargetSpec], Set[NodeId]]


@dataclass
class _PendingAttempt:
    """Retried-greedy state held at the forwarding node."""

    record: AnycastRecord
    holder: NodeId
    base_message: AnycastMessage  # the message as held (pre-hop)
    candidates: List[NodeId]
    next_index: int
    retry_remaining: int
    timeout: Optional[ScheduledEvent] = None


@dataclass
class _GossipState:
    """Per (op, node) gossip progress.

    ``resume_after`` is the last neighbor this node sent to: the next
    round resumes iteration right after it.  Tracking the position by
    node identity (not by list index) keeps resumption meaningful when
    refresh rounds mutate the membership lists between gossip rounds —
    the candidate list is recomputed every round, so an index would point
    at an arbitrary neighbor and could permanently skip some.

    Batched dispatch keeps the same cursor in digest space
    (``resume_digest``/``sent_digests``) so each round is one rotated
    mask over the columnar candidate arrays instead of a Python re-scan;
    digests name neighbors 1:1, so both cursors resume at the same
    position.
    """

    rounds_left: int
    sent_to: Set[NodeId]
    resume_after: Optional[NodeId] = None
    resume_digest: Optional[int] = None
    sent_digests: Optional[Set[int]] = None


class OperationEngine:
    """Runs management operations over a node population."""

    #: Minimum membership-table occupancy before a gossip round's target
    #: walk uses the rotated columnar mask instead of the scalar
    #: resume-cursor scan.  The two are pick-identical and rng-free, so
    #: — like ``Network.batch_threshold`` — this is purely a performance
    #: knob: below roughly this many neighbors the handful of small-array
    #: numpy ops cost more than the early-exit Python walk.
    GOSSIP_COLUMNAR_MIN = 64

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        nodes: Dict[NodeId, AvmemNode],
        config: AvmemConfig,
        truth_availability: TruthFn,
        rng: Optional[np.random.Generator] = None,
        verify_inbound: bool = False,
        truth_eligible: Optional[TruthEligibleFn] = None,
    ):
        self.sim = sim
        self.network = network
        self.nodes = nodes
        self.config = config
        self.truth_availability = truth_availability
        #: optional batched eligibility snapshot — "which online nodes are
        #: truly in this target right now" answered in one vectorized pass
        #: (the simulation answers straight from its churn timeline);
        #: None falls back to the scalar O(N) loop over truth_availability
        self.truth_eligible = truth_eligible
        self.rng = rng if rng is not None else fallback_rng()
        self.verify_inbound = verify_inbound
        # Captured once (see Simulator): per-session recorders route
        # through construction-time capture, not a process-wide global.
        self._telemetry = current_telemetry()
        self.anycasts: Dict[int, AnycastRecord] = {}
        self.multicasts: Dict[int, MulticastRecord] = {}
        self.rejected_inbound = 0
        self._policies: Dict[int, ForwardingPolicy] = {}
        self._next_op = 0
        self._next_attempt = 0
        self._pending: Dict[int, _PendingAttempt] = {}  # attempt -> state
        self._mcast_seen: Dict[int, Set[NodeId]] = {}  # op -> nodes that processed
        self._gossip: Dict[Tuple[int, NodeId], _GossipState] = {}
        # Wavefront dispatch state (batched networks only): same-instant
        # anycast forwards and flood cohorts accumulate here while a hold
        # is in effect and flush as one ordered pass — see
        # docs/architecture.md §"Anycast wavefront".
        self._wavefront: List[tuple] = []
        self._hold_depth = 0
        network.cohort_hooks = (self.hold_wavefront, self.release_wavefront)
        for node in nodes.values():
            node.register_handler(AnycastMessage, self._handle_anycast)
            node.register_handler(AnycastAck, self._handle_ack)
            node.register_handler(MulticastMessage, self._handle_multicast)

    # ------------------------------------------------------------------
    # Public API — anycast
    # ------------------------------------------------------------------
    def anycast(
        self,
        initiator: NodeId,
        target: TargetSpec,
        policy: str = "greedy",
        selector: str = SliverSelector.BOTH,
        ttl: Optional[int] = None,
        retry: Optional[int] = None,
        _multicast_payload: bool = False,
    ) -> AnycastRecord:
        """Launch an anycast; returns its (live) record immediately.

        Run the simulator forward to let it complete, then inspect the
        record (or call :meth:`finalize` to classify stragglers).
        """
        SliverSelector.validate(selector)
        policy_obj = make_policy(policy)
        op_id = self._next_op
        self._next_op += 1
        record = AnycastRecord(
            op_id=op_id,
            initiator=initiator,
            target=target,
            policy=policy,
            selector=selector,
            started_at=self.sim.now,
        )
        self.anycasts[op_id] = record
        self._policies[op_id] = policy_obj
        node = self.nodes[initiator]
        if not node.online:
            record.status = AnycastStatus.INITIATOR_OFFLINE
            return record
        message = AnycastMessage(
            op_id=op_id,
            target=target,
            ttl=ttl if ttl is not None else self.config.anycast.ttl,
            retry=retry if retry is not None else self.config.anycast.retry,
            attempt=self._new_attempt(),
            origin=initiator,
            sender=initiator,
            path=(initiator,),
            multicast_payload=_multicast_payload,
        )
        self._process_anycast_at(node, message)
        return record

    # ------------------------------------------------------------------
    # Public API — multicast
    # ------------------------------------------------------------------
    def multicast(
        self,
        initiator: NodeId,
        target: TargetSpec,
        mode: str = "flood",
        selector: str = SliverSelector.BOTH,
        anycast_policy: str = "retry-greedy",
        ttl: Optional[int] = None,
        retry: Optional[int] = None,
    ) -> MulticastRecord:
        """Launch a two-stage multicast; returns its (live) record.

        Stage 1 anycasts into the range (sharing the anycast machinery,
        including the ``ttl``/``retry`` budgets); stage 2 floods or
        gossips within it.
        """
        if mode not in ("flood", "gossip"):
            raise ValueError(f"mode must be 'flood' or 'gossip', got {mode!r}")
        SliverSelector.validate(selector)
        anycast_record = self.anycast(
            initiator,
            target,
            policy=anycast_policy,
            selector=selector,
            ttl=ttl,
            retry=retry,
            _multicast_payload=True,
        )
        op_id = anycast_record.op_id
        record = MulticastRecord(
            op_id=op_id,
            initiator=initiator,
            target=target,
            mode=mode,
            selector=selector,
            started_at=anycast_record.started_at,
            anycast=anycast_record,
            eligible=self._eligible_nodes(target),
        )
        self.multicasts[op_id] = record
        self._mcast_seen.setdefault(op_id, set())
        # The anycast may already have delivered synchronously (initiator
        # in range): start stage 2 now in that case.
        if anycast_record.delivered and anycast_record.delivery_node is not None:
            self._start_stage2(record, anycast_record.delivery_node)
        return record

    def _eligible_nodes(self, target: TargetSpec) -> Set[NodeId]:
        """Online nodes whose *true* availability is in the target — the
        Fig 12/13 denominator.

        With a ``truth_eligible`` snapshot function the whole question is
        answered in a few vectorized passes over the ground-truth
        timeline; the scalar loop is kept as the fallback (and the
        per-hop parity baseline) and produces the same set — truth is
        only consulted for online nodes on both paths.
        """
        if self.truth_eligible is not None:
            return set(self.truth_eligible(target))
        eligible: Set[NodeId] = set()
        for node_id in self.nodes:
            if self.network.is_online(node_id) and target.contains(
                self.truth_availability(node_id)
            ):
                eligible.add(node_id)
        return eligible

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Classify all still-pending anycasts as LOST (call once the
        simulation has settled)."""
        for record in self.anycasts.values():
            record.finalize()

    # ------------------------------------------------------------------
    # Anycast internals
    # ------------------------------------------------------------------
    def _new_attempt(self) -> int:
        self._next_attempt += 1
        return self._next_attempt

    def _handle_anycast(self, node: AvmemNode, envelope: Envelope) -> None:
        message: AnycastMessage = envelope.payload
        record = self.anycasts.get(message.op_id)
        if record is None:
            return
        record.data_messages += 1
        if self.verify_inbound and message.sender != node.id:
            if not node.verifier.accepts(message.sender):
                self.rejected_inbound += 1
                return  # no ack: the sender will treat this as a dead hop
        policy = self._policies[message.op_id]
        if policy.wants_ack and message.sender != node.id:
            node.send(message.sender, AnycastAck(message.op_id, message.attempt, node.id))
            record.ack_messages += 1
        self._process_anycast_at(node, message)

    def _process_anycast_at(self, node: AvmemNode, message: AnycastMessage) -> None:
        record = self.anycasts[message.op_id]
        believed = node.self_descriptor().availability
        if message.target.contains(believed):
            self._record_delivery(record, node, message)
            return
        if message.ttl <= 0:
            if record.status == AnycastStatus.PENDING:
                record.status = AnycastStatus.TTL_EXPIRED
            return
        if self.network.batched:
            # Wavefront path: the forward joins the current same-instant
            # cohort.  Without an active hold the cohort is just this
            # message and flushes synchronously — behaviourally the
            # scalar _forward_anycast, with columnar candidate ordering.
            self._wavefront.append(("fwd", node, message))
            if self._hold_depth == 0:
                self._flush_wavefront()
        else:
            self._forward_anycast(node, message)

    # -- wavefront dispatch ---------------------------------------------
    def hold_wavefront(self) -> None:
        """Begin collecting same-instant dispatch work instead of sending
        immediately.  Holds nest (the plan runner brackets launch
        instants; the network brackets multi-message delivery cohorts);
        the wavefront flushes when the last hold releases."""
        self._hold_depth += 1

    def release_wavefront(self) -> None:
        """Release one hold; flush the accumulated wavefront if it was
        the last."""
        if self._hold_depth > 0:
            self._hold_depth -= 1
        if self._hold_depth == 0 and self._wavefront:
            self._flush_wavefront()

    def _flush_wavefront(self) -> None:
        """Dispatch the accumulated same-instant cohort in arrival order.

        Consecutive anycast forwards coalesce into one
        :meth:`~repro.sim.network.Network.send_many` (one vectorized
        latency draw / presence query for the whole segment); a queued
        flood cohort is a segment boundary, so the ``"latency"`` stream
        is consumed in exactly the order the per-hop path would have —
        per-entry candidate ordering is replaced by the columnar policy
        path, which consumes the ``"ops"`` stream draw for draw like the
        scalar ordering (property-tested in ``tests/test_dispatch.py``).
        Ack timeouts are armed per segment, in operation order, so
        equal-deadline timeouts keep their per-hop tie-break order.
        """
        actions = self._wavefront
        if not actions:
            return
        self._wavefront = []
        if self._telemetry.enabled:
            self._telemetry.observe("dispatch.wavefront_actions", len(actions))
        with self._telemetry.span("dispatch.flush"):
            self._dispatch_wavefront(actions)

    def _dispatch_wavefront(self, actions: List[tuple]) -> None:
        items: List[tuple] = []
        armed: List[Tuple[int, int, _PendingAttempt]] = []

        def flush_forwards() -> None:
            if not items:
                return
            wired = self.network.send_many(items)
            for item_idx, attempt, state in armed:
                if not wired[item_idx]:
                    # Holder offline at send time: nothing hit the wire,
                    # so no ack timeout — the same dead-hop outcome as
                    # the scalar _try_next_candidate send failure.
                    continue
                self._pending[attempt] = state
                state.timeout = self.sim.schedule(
                    self.config.anycast.ack_timeout, self._on_ack_timeout, attempt
                )
            items.clear()
            armed.clear()

        for action in actions:
            if action[0] == "flood":
                _, src, targets, payload, record = action
                flush_forwards()
                self._dispatch_mcast_cohort(src, targets, payload, record)
                continue
            _, node, message = action
            record = self.anycasts[message.op_id]
            policy = self._policies[message.op_id]
            candidates = self._order_candidates_columnar(node, message, record, policy)
            if not candidates:
                if record.status == AnycastStatus.PENDING:
                    record.status = AnycastStatus.NO_NEIGHBOR
                continue
            if policy.wants_ack:
                if record.status != AnycastStatus.PENDING:
                    continue  # already resolved elsewhere
                state = _PendingAttempt(
                    record=record,
                    holder=node.id,
                    base_message=message,
                    candidates=candidates,
                    next_index=1,
                    retry_remaining=message.retry,
                )
                attempt = self._new_attempt()
                forwarded = message.hop(
                    node.id, candidates[0], attempt, retry=state.retry_remaining
                )
                armed.append((len(items), attempt, state))
                items.append((node.id, candidates[0], forwarded))
            else:
                next_hop = candidates[0]
                forwarded = message.hop(node.id, next_hop, self._new_attempt())
                items.append((node.id, next_hop, forwarded))
        flush_forwards()

    def _order_candidates_columnar(
        self,
        node: AvmemNode,
        message: AnycastMessage,
        record: AnycastRecord,
        policy: ForwardingPolicy,
    ) -> List[NodeId]:
        """Candidate ordering over the columnar membership snapshot.

        Selector masking over the :class:`~repro.core.membership.NeighborView`
        preserves the listing order ``entries(selector)`` yields, and the
        path exclusion compares precomputed ``digest64`` values instead
        of building a NodeId set — same candidates, same order, same rng
        consumption as :meth:`_forward_anycast`'s entry-list path.
        """
        view = node.lists.neighbor_arrays()
        nodes = view.nodes
        avail = view.availabilities
        digests = view.digests
        if record.selector == SliverSelector.HS_ONLY:
            sel = view.horizontal
            nodes, avail, digests = nodes[sel], avail[sel], digests[sel]
        elif record.selector == SliverSelector.VS_ONLY:
            sel = ~view.horizontal
            nodes, avail, digests = nodes[sel], avail[sel], digests[sel]
        exclude = np.fromiter(
            (hop.digest64 for hop in message.path),
            dtype=np.uint64,
            count=len(message.path),
        )
        return policy.order_candidates_arrays(
            nodes, avail, message.target, message.ttl, self.rng, exclude, digests
        )

    def _record_delivery(
        self, record: AnycastRecord, node: AvmemNode, message: AnycastMessage
    ) -> None:
        # Retried greedy can have several copies of one operation in
        # flight (ack lost or slower than the ack timeout): a stale copy
        # that dies first may have classified the record TTL_EXPIRED /
        # NO_NEIGHBOR / RETRY_EXPIRED while this duplicate was still
        # traveling.  A message reaching the target is a genuine delivery
        # regardless, so it overrides those premature classifications;
        # only an earlier DELIVERED (the first delivery wins) and the
        # nothing-in-flight statuses (LOST, INITIATOR_OFFLINE) stand.
        if record.status in AnycastStatus.DELIVERY_OVERRIDABLE:
            record.status = AnycastStatus.DELIVERED
            record.delivered_at = self.sim.now
            record.delivery_node = node.id
            record.delivery_node_true_availability = self.truth_availability(node.id)
            record.hops = message.hops_taken
        if message.multicast_payload:
            mcast = self.multicasts.get(message.op_id)
            if mcast is not None:
                self._start_stage2(mcast, node.id)

    def _forward_anycast(self, node: AvmemNode, message: AnycastMessage) -> None:
        record = self.anycasts[message.op_id]
        policy = self._policies[message.op_id]
        entries = node.lists.entries(record.selector)
        exclude = set(message.path)
        candidates = policy.order_candidates(
            entries, message.target, message.ttl, self.rng, exclude
        )
        if not candidates:
            if record.status == AnycastStatus.PENDING:
                record.status = AnycastStatus.NO_NEIGHBOR
            return
        if policy.wants_ack:
            state = _PendingAttempt(
                record=record,
                holder=node.id,
                base_message=message,
                candidates=candidates,
                next_index=0,
                retry_remaining=message.retry,
            )
            self._try_next_candidate(state)
        else:
            next_hop = candidates[0]
            forwarded = message.hop(node.id, next_hop, self._new_attempt())
            self.network.send(node.id, next_hop, forwarded)

    # -- retried-greedy machinery --------------------------------------
    def _try_next_candidate(self, state: _PendingAttempt) -> None:
        record = state.record
        if record.status != AnycastStatus.PENDING:
            return  # already resolved elsewhere
        if state.next_index >= len(state.candidates):
            record.status = AnycastStatus.NO_NEIGHBOR
            return
        candidate = state.candidates[state.next_index]
        state.next_index += 1
        attempt = self._new_attempt()
        forwarded = state.base_message.hop(
            state.holder, candidate, attempt, retry=state.retry_remaining
        )
        if not self.network.send(state.holder, candidate, forwarded):
            # The holder is offline at send time: nothing hit the wire,
            # so arming an ack timeout would later charge a retry for a
            # transmission that never happened.  The message dies here —
            # the same outcome _on_ack_timeout applies to a holder that
            # went offline while waiting.
            return
        self._pending[attempt] = state
        state.timeout = self.sim.schedule(
            self.config.anycast.ack_timeout, self._on_ack_timeout, attempt
        )

    def _handle_ack(self, node: AvmemNode, envelope: Envelope) -> None:
        ack: AnycastAck = envelope.payload
        state = self._pending.pop(ack.attempt, None)
        if state is not None and state.timeout is not None:
            state.timeout.cancel()

    def _on_ack_timeout(self, attempt: int) -> None:
        state = self._pending.pop(attempt, None)
        if state is None:
            return  # acked in the meantime
        record = state.record
        if record.status != AnycastStatus.PENDING:
            return
        if not self.network.is_online(state.holder):
            return  # the retrying node itself went offline: message dies
        # "Each forwarded message carries the value of retry" (§3.2): the
        # budget counts *retries*, so retry=R allows R re-transmissions
        # after the initial attempt — R+1 transmissions total.  A timeout
        # that performs no transmission (budget expired, or no candidate
        # left to retry with) must not count as a retry.
        if state.retry_remaining <= 0:
            record.status = AnycastStatus.RETRY_EXPIRED
            return
        if state.next_index >= len(state.candidates):
            record.status = AnycastStatus.NO_NEIGHBOR
            return
        state.retry_remaining -= 1
        record.retries_used += 1
        self._try_next_candidate(state)

    # ------------------------------------------------------------------
    # Multicast stage 2
    # ------------------------------------------------------------------
    def _start_stage2(self, record: MulticastRecord, root: NodeId) -> None:
        seen = self._mcast_seen.setdefault(record.op_id, set())
        if root in seen:
            return
        message = MulticastMessage(
            op_id=record.op_id,
            target=record.target,
            root=root,
            sender=root,
            mode=record.mode,
        )
        self._accept_multicast(self.nodes[root], message)

    def _handle_multicast(self, node: AvmemNode, envelope: Envelope) -> None:
        message: MulticastMessage = envelope.payload
        record = self.multicasts.get(message.op_id)
        if record is None:
            return
        if self.verify_inbound and message.sender != node.id:
            if not node.verifier.accepts(message.sender):
                self.rejected_inbound += 1
                return
        self._accept_multicast(node, message)

    def _accept_multicast(self, node: AvmemNode, message: MulticastMessage) -> None:
        record = self.multicasts[message.op_id]
        seen = self._mcast_seen[message.op_id]
        if node.id in seen:
            record.duplicate_receptions += 1
            return
        seen.add(node.id)
        true_av = self.truth_availability(node.id)
        if record.target.contains(true_av):
            record.deliveries[node.id] = self.sim.now
        else:
            record.spam.append((node.id, self.sim.now))
        if record.mode == "flood":
            self._flood_from(node, record, message)
        else:
            self._begin_gossip(node, record, message)

    def _in_range_neighbors(
        self, node: AvmemNode, record: MulticastRecord
    ) -> List[NodeId]:
        """Neighbors whose *cached* availability lies in the target —
        stale caches here are exactly what produces spam (Fig 12).

        Under batched dispatch this runs on the columnar membership
        snapshot (one mask over the availability column) instead of
        materializing ``MemberEntry`` objects per reception; the
        ``NeighborView`` listing order is the ``entries()`` order, so
        both paths yield the identical list.
        """
        if not self.network.batched:
            return [
                entry.node
                for entry in node.lists.entries(record.selector)
                if record.target.contains(entry.availability)
            ]
        view = node.lists.neighbor_arrays()
        mask = record.target.contains_array(view.availabilities)
        if record.selector == SliverSelector.HS_ONLY:
            mask &= view.horizontal
        elif record.selector == SliverSelector.VS_ONLY:
            mask &= ~view.horizontal
        return list(view.nodes[np.flatnonzero(mask)])

    def _flood_from(
        self, node: AvmemNode, record: MulticastRecord, message: MulticastMessage
    ) -> None:
        forwarded = message.forwarded(node.id)
        targets = [
            neighbor
            for neighbor in self._in_range_neighbors(node, record)
            if neighbor != message.sender
        ]
        if not targets:
            return
        if self._hold_depth > 0 and self.network.batched:
            # Mid-wavefront flood (a launch-instant stage-2 start, or a
            # reception inside a delivery cohort): queue it so its
            # latency draws land between the forwards queued before and
            # after it, exactly where the per-hop path drew them.
            self._wavefront.append(("flood", node.id, targets, forwarded, record))
        else:
            self._dispatch_mcast_cohort(node.id, targets, forwarded, record)

    def _dispatch_mcast_cohort(
        self,
        src: NodeId,
        targets: List[NodeId],
        payload: MulticastMessage,
        record: MulticastRecord,
    ) -> None:
        """One batched dispatch for a fan-out cohort; the message tally
        counts transmission attempts, exactly as the per-send increment
        did.  Destinations already in the operation's seen-set are
        suppressed at the dispatch layer — the seen-set only grows, so a
        duplicate identified at send time is certainly one at arrival;
        the network credits it delivered without scheduling an event and
        we tally ``duplicate_receptions`` here instead of in
        :meth:`_accept_multicast`.  Suppression stays off under inbound
        verification (a verifier could reject the duplicate, which must
        keep counting as a rejection, not a reception).
        """
        if (
            self.network.batched
            and not self.verify_inbound
            and len(targets) >= self.network.batch_threshold
        ):
            # Build the mask only for cohorts the network will actually
            # vectorize; sub-threshold cohorts take the scalar loop
            # where the receiver-side seen-set counts duplicates — same
            # totals, no wasted mask construction.
            seen = self._mcast_seen[payload.op_id]
            suppress = np.fromiter(
                (target in seen for target in targets),
                dtype=bool,
                count=len(targets),
            )
            _, duplicates = self.network.send_batch_suppressing(
                src, targets, payload, suppress
            )
            record.duplicate_receptions += duplicates
        else:
            self.network.send_batch(src, targets, payload)
        record.data_messages += len(targets)

    # -- gossip ---------------------------------------------------------
    def _begin_gossip(
        self, node: AvmemNode, record: MulticastRecord, message: MulticastMessage
    ) -> None:
        key = (record.op_id, node.id)
        if key in self._gossip:
            return
        state = _GossipState(
            rounds_left=self.config.gossip.rounds, sent_to=set(), sent_digests=set()
        )
        self._gossip[key] = state
        # First gossip round fires one period after reception.
        self.sim.schedule(
            self.config.gossip.period, self._gossip_round, record.op_id, node.id
        )

    def _gossip_round(self, op_id: int, node_id: NodeId) -> None:
        key = (op_id, node_id)
        state = self._gossip.get(key)
        record = self.multicasts.get(op_id)
        if state is None or record is None or state.rounds_left <= 0:
            return
        node = self.nodes[node_id]
        if node.online:
            message = MulticastMessage(
                op_id=op_id,
                target=record.target,
                root=record.anycast.delivery_node or node_id,
                sender=node_id,
                mode="gossip",
            )
            # Deterministic iteration through the candidate list (paper's
            # choice), resuming right after the last neighbor sent to.
            # The list is recomputed each round, so the position is
            # re-anchored by neighbor identity; if that neighbor was
            # evicted in the meantime, iteration restarts from the front
            # (the sent-set suppresses duplicates).  The selection
            # consumes no randomness, so the cohort's latency draws land
            # in the same stream order as the per-send loop's.  Batched
            # networks run the walk as one rotated mask over the
            # columnar candidate arrays; the per-hop baseline keeps the
            # scalar re-scan.
            if (
                self.network.batched
                and node.lists.total_count >= self.GOSSIP_COLUMNAR_MIN
            ):
                targets = self._gossip_targets_columnar(node, record, state)
            else:
                targets = self._gossip_targets_scan(node, record, state, node_id)
            if targets:
                self._dispatch_mcast_cohort(node_id, targets, message, record)
        state.rounds_left -= 1
        if state.rounds_left > 0:
            self.sim.schedule(
                self.config.gossip.period, self._gossip_round, op_id, node_id
            )

    def _gossip_targets_scan(
        self,
        node: AvmemNode,
        record: MulticastRecord,
        state: _GossipState,
        node_id: NodeId,
    ) -> List[NodeId]:
        """The scalar resume-cursor walk (per-hop parity baseline)."""
        candidates = self._in_range_neighbors(node, record)
        index = 0
        if state.resume_after is not None:
            try:
                index = candidates.index(state.resume_after) + 1
            except ValueError:
                index = 0  # evicted since last round: restart from the front
        scanned = 0
        targets: List[NodeId] = []
        while len(targets) < self.config.gossip.fanout and scanned < len(candidates):
            target_node = candidates[index % len(candidates)]
            index += 1
            scanned += 1
            if target_node in state.sent_to or target_node == node_id:
                continue
            state.sent_to.add(target_node)
            state.resume_after = target_node
            targets.append(target_node)
        # Mirror the digest-space cursor so later rounds can switch to
        # the columnar walk (table grown past GOSSIP_COLUMNAR_MIN)
        # without losing their place.
        if targets and state.sent_digests is not None:
            state.sent_digests.update(t.digest64 for t in targets)
            state.resume_digest = targets[-1].digest64
        return targets

    def _gossip_targets_columnar(
        self, node: AvmemNode, record: MulticastRecord, state: _GossipState
    ) -> List[NodeId]:
        """One round's picks as a rotated mask over the columnar view.

        Equivalent to :meth:`_gossip_targets_scan`: rotating the
        candidate index space to start one past the resume cursor visits
        each candidate exactly once in the same wrap order the scalar
        walk scans, and the sent/self exclusions are the same
        (digest-keyed) membership tests, so the first ``fanout`` valid
        positions are the identical picks.
        """
        view = node.lists.neighbor_arrays()
        mask = record.target.contains_array(view.availabilities)
        if record.selector == SliverSelector.HS_ONLY:
            mask &= view.horizontal
        elif record.selector == SliverSelector.VS_ONLY:
            mask &= ~view.horizontal
        idx = np.flatnonzero(mask)
        if not idx.size:
            return []
        cand_digests = view.digests[idx]
        start = 0
        if state.resume_digest is not None:
            pos = np.flatnonzero(cand_digests == np.uint64(state.resume_digest))
            if pos.size:
                start = int(pos[0]) + 1
        rotated = np.roll(np.arange(idx.size), -start)
        scan = cand_digests[rotated]
        valid = scan != np.uint64(node.id.digest64)
        if state.sent_digests:
            sent = np.fromiter(
                state.sent_digests, dtype=np.uint64, count=len(state.sent_digests)
            )
            valid &= ~np.isin(scan, sent)
        picks = rotated[np.flatnonzero(valid)[: self.config.gossip.fanout]]
        if not picks.size:
            return []
        pick_digests = cand_digests[picks]
        state.resume_digest = int(pick_digests[-1])
        state.sent_digests.update(int(d) for d in pick_digests)
        targets = list(view.nodes[idx[picks]])
        # Mirror the identity-space cursor too: the picks are already
        # materialized, and introspection (tests, reports) reads the
        # same fields whichever dispatch mode ran.
        state.sent_to.update(targets)
        state.resume_after = targets[-1]
        return targets
