"""Operation target specifications and initiator bands (Section 4.2).

The four management operations all address an *availability region*:

* **Range** operations target ``[b, b+δ] ⊆ [0, 1]``.
* **Threshold** operations target ``(b, 1.0]`` — "all nodes with
  availability > b".

The evaluation picks initiators from three availability bands —
LOW ∈ [0, 1/3), MID ∈ [1/3, 2/3), HIGH ∈ [2/3, 1.0] — and uses the
target ranges/thresholds catalogued in docs/reproducing-figures.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.util.mathx import point_to_interval_distance
from repro.util.validation import check_fraction_interval

__all__ = ["TargetSpec", "InitiatorBand", "PAPER_RANGES", "PAPER_THRESHOLDS"]


@dataclass(frozen=True)
class TargetSpec:
    """An availability target region ``[lo, hi]``.

    Build with :meth:`range` or :meth:`threshold`; ``kind`` records which
    flavor of operation this is (they differ only in how ``lo``/``hi``
    were derived, but reports keep them distinct).
    """

    lo: float
    hi: float
    kind: str = "range"

    def __post_init__(self):
        check_fraction_interval(self.lo, self.hi, "target")
        if self.kind not in ("range", "threshold"):
            raise ValueError(f"kind must be 'range' or 'threshold', got {self.kind!r}")

    @classmethod
    def range(cls, lo: float, hi: float) -> "TargetSpec":
        """Range operation target ``[lo, hi]``."""
        return cls(lo=lo, hi=hi, kind="range")

    @classmethod
    def threshold(cls, b: float) -> "TargetSpec":
        """Threshold operation target ``(b, 1.0]`` — "availability > b"."""
        check_fraction_interval(b, b, "threshold")
        return cls(lo=b, hi=1.0, kind="threshold")

    def contains(self, availability: float) -> bool:
        """Is an availability inside the target region?

        Threshold targets are exclusive at ``lo`` (strictly greater, per
        the paper's "availability > b"); range targets are closed.
        """
        if self.kind == "threshold":
            return self.lo < availability <= self.hi
        return self.lo <= availability <= self.hi

    def contains_array(self, availabilities) -> "np.ndarray":
        """Vectorized :meth:`contains` over an availability array — the
        same closed-range / exclusive-threshold branch semantics."""
        values = np.asarray(availabilities, dtype=float)
        if self.kind == "threshold":
            return (self.lo < values) & (values <= self.hi)
        return (self.lo <= values) & (values <= self.hi)

    def distance(self, availability: float) -> float:
        """The greedy metric: Euclidean distance from the availability to
        the edge of the region (0 inside)."""
        return point_to_interval_distance(availability, (self.lo, self.hi))

    def distance_array(self, availabilities) -> "np.ndarray":
        """Vectorized :meth:`distance` over an availability array.

        Mirrors :func:`~repro.util.mathx.point_to_interval_distance`
        branch for branch (``lo - x`` below, ``x - hi`` above, 0 inside)
        so columnar candidate ordering sees bit-identical distances to
        the scalar path.
        """
        values = np.asarray(availabilities, dtype=float)
        return np.where(
            values < self.lo,
            self.lo - values,
            np.where(values > self.hi, values - self.hi, 0.0),
        )

    def describe(self) -> str:
        if self.kind == "threshold":
            return f"av > {self.lo:g}"
        return f"[{self.lo:g}, {self.hi:g}]"

    def __str__(self) -> str:
        return self.describe()


class InitiatorBand:
    """The paper's LOW/MID/HIGH initiator availability bands."""

    LOW = "low"
    MID = "mid"
    HIGH = "high"

    BOUNDS: Dict[str, Tuple[float, float]] = {
        LOW: (0.0, 1.0 / 3.0),
        MID: (1.0 / 3.0, 2.0 / 3.0),
        HIGH: (2.0 / 3.0, 1.0 + 1e-12),  # inclusive of availability 1.0
    }

    @classmethod
    def validate(cls, band: str) -> str:
        if band not in cls.BOUNDS:
            raise ValueError(
                f"band must be one of {tuple(cls.BOUNDS)}, got {band!r}"
            )
        return band

    @classmethod
    def contains(cls, band: str, availability: float) -> bool:
        lo, hi = cls.BOUNDS[cls.validate(band)]
        return lo <= availability < hi

    @classmethod
    def contains_array(cls, band: str, availabilities) -> "np.ndarray":
        """Vectorized :meth:`contains` — the same half-open bounds."""
        lo, hi = cls.BOUNDS[cls.validate(band)]
        values = np.asarray(availabilities, dtype=float)
        return (values >= lo) & (values < hi)


#: The paper's range-operation targets (Section 4.2).
PAPER_RANGES: Tuple[Tuple[float, float], ...] = (
    (0.2, 0.3),
    (0.44, 0.54),
    (0.85, 0.95),
)

#: The paper's threshold-operation targets.
PAPER_THRESHOLDS: Tuple[float, ...] = (0.25, 0.49, 0.90)
