"""Anycast forwarding policies (Section 3.2).

Three policies, each usable with HS-only, VS-only, or HS+VS neighbor
sets (nine algorithm variants total):

* **Greedy** — forward to a neighbor inside the target range; if none,
  to the neighbor whose (cached) availability is closest to the range.
* **Retried greedy** — greedy candidate order, but transmissions are
  acknowledged; on timeout the previous hop decrements the ``retry``
  budget and tries its next-best neighbor.  (The retry machinery lives
  in :mod:`repro.ops.engine`; the policy contributes the ordering.)
* **Simulated annealing** — with probability ``p = e^(−Δ/ttl)`` pick a
  uniformly random neighbor instead of the greedy one, where Δ is the
  distance from the greedy candidate to the range edge and ttl the
  remaining hop budget.  Early hops explore; late hops exploit.

All decisions use **cached** neighbor availabilities (the entries'
``availability`` fields) — Section 3.2 is explicit that forwarding does
not re-query the monitoring service.
"""

from __future__ import annotations

import abc
import math
from typing import List, Sequence, Set

import numpy as np

from repro.core.ids import NodeId
from repro.core.membership import MemberEntry
from repro.ops.spec import TargetSpec

__all__ = [
    "ForwardingPolicy",
    "GreedyPolicy",
    "RetriedGreedyPolicy",
    "AnnealingPolicy",
    "make_policy",
    "POLICY_NAMES",
]


class ForwardingPolicy(abc.ABC):
    """Produces an ordered candidate list (best first) for one hop."""

    #: registry name
    name: str = "abstract"

    #: whether the engine should run ack/timeout retries for this policy
    wants_ack: bool = False

    @abc.abstractmethod
    def order_candidates(
        self,
        entries: Sequence[MemberEntry],
        target: TargetSpec,
        ttl_remaining: int,
        rng: np.random.Generator,
        exclude: Set[NodeId],
    ) -> List[NodeId]:
        """Candidate next-hops, best first; excluded nodes are omitted."""

    def order_candidates_arrays(
        self,
        nodes: np.ndarray,
        availabilities: np.ndarray,
        target: TargetSpec,
        ttl_remaining: int,
        rng: np.random.Generator,
        exclude_digests: np.ndarray,
        digests: np.ndarray,
    ) -> List[NodeId]:
        """Columnar :meth:`order_candidates` over parallel neighbor arrays.

        ``nodes``/``availabilities``/``digests`` are parallel slices of a
        :class:`~repro.core.membership.NeighborView` in listing order (the
        ``entries()`` order), with exclusion expressed as a ``uint64``
        digest array.  Consumes the rng stream *identically* to the
        per-entry path — shuffles and tie-break draws land in the same
        order — so wavefront and per-hop dispatch stay record-identical
        (property-tested in ``tests/test_dispatch.py``).
        """
        ordered, _ = _greedy_order_arrays(
            nodes, availabilities, digests, target, rng, exclude_digests
        )
        return ordered


def _greedy_order(
    entries: Sequence[MemberEntry],
    target: TargetSpec,
    rng: np.random.Generator,
    exclude: Set[NodeId],
) -> List[NodeId]:
    """In-range candidates first (shuffled), then by distance to the range."""
    in_range: List[NodeId] = []
    outside: List[tuple] = []
    for entry in entries:
        if entry.node in exclude:
            continue
        distance = target.distance(entry.availability)
        if distance == 0.0:
            in_range.append(entry.node)
        else:
            outside.append((distance, entry.node))
    rng.shuffle(in_range)
    # Random tiebreak for equal distances, then sort by distance.
    keyed = [(d, float(rng.random()), node) for d, node in outside]
    keyed.sort(key=lambda item: (item[0], item[1]))
    return in_range + [node for _, _, node in keyed]


def _greedy_order_arrays(
    nodes: np.ndarray,
    availabilities: np.ndarray,
    digests: np.ndarray,
    target: TargetSpec,
    rng: np.random.Generator,
    exclude_digests: np.ndarray,
) -> tuple:
    """Columnar :func:`_greedy_order`; returns ``(ordered, first_delta)``.

    ``first_delta`` is the greedy best's distance to the range (0.0 when
    an in-range candidate exists, or when there are no candidates) — the
    annealing temperature input, computed here so the policy needn't
    re-derive it from entry objects.

    RNG parity with the scalar path holds draw for draw: shuffling a
    list of the in-range candidates consumes exactly what shuffling the
    scalar path's list does (equal length), and one ``rng.random(k)``
    vector draw consumes exactly like ``k`` scalar ``rng.random()``
    calls in listing order.  The outside sort is a stable lexsort on
    (distance, tiebreak), matching the scalar stable tuple sort.
    """
    if exclude_digests.size:
        keep = ~np.isin(digests, exclude_digests)
        nodes = nodes[keep]
        availabilities = availabilities[keep]
    distances = target.distance_array(availabilities)
    in_sel = distances == 0.0
    in_range = list(nodes[in_sel])
    rng.shuffle(in_range)
    out_idx = np.flatnonzero(~in_sel)
    tiebreak = rng.random(out_idx.size)
    out_dist = distances[out_idx]
    order = np.lexsort((tiebreak, out_dist))
    ordered = in_range + list(nodes[out_idx[order]])
    if in_range or not order.size:
        first_delta = 0.0
    else:
        first_delta = float(out_dist[order[0]])
    return ordered, first_delta


class GreedyPolicy(ForwardingPolicy):
    """Plain greedy forwarding — single shot, no acknowledgements."""

    name = "greedy"
    wants_ack = False

    def order_candidates(self, entries, target, ttl_remaining, rng, exclude):
        return _greedy_order(entries, target, rng, exclude)


class RetriedGreedyPolicy(ForwardingPolicy):
    """Greedy ordering with ack/timeout retries down the candidate list."""

    name = "retry-greedy"
    wants_ack = True

    def order_candidates(self, entries, target, ttl_remaining, rng, exclude):
        return _greedy_order(entries, target, rng, exclude)


class AnnealingPolicy(ForwardingPolicy):
    """Simulated annealing (Section 3.2).

    "The probability of choosing a random next-hop is high initially …
    but decreases as the anycast proceeds": a neighbor that (per its
    cached availability) already lies inside the range is always chosen
    — every variant delivers when it can.  Otherwise, with probability
    ``p = e^(−Δ/ttl)`` — Δ being the greedy candidate's distance to the
    range edge and ttl the remaining hop budget — a uniformly random
    neighbor is explored instead of the greedy one.  Large remaining TTL
    ⇒ p close to 1 ⇒ exploration; as TTL burns down, p falls and the
    walk turns greedy.
    """

    name = "anneal"
    wants_ack = False

    def acceptance_probability(self, delta: float, ttl_remaining: int) -> float:
        """``p = e^(−Δ/ttl)``."""
        if ttl_remaining <= 0:
            return 0.0
        return math.exp(-delta / ttl_remaining)

    def order_candidates(self, entries, target, ttl_remaining, rng, exclude):
        ordered = _greedy_order(entries, target, rng, exclude)
        if len(ordered) < 2:
            return ordered
        by_node = {e.node: e for e in entries}
        delta = target.distance(by_node[ordered[0]].availability)
        if delta == 0.0:
            return ordered  # greedy best already in range: deliver
        if rng.random() < self.acceptance_probability(delta, ttl_remaining):
            pick = 1 + int(rng.integers(len(ordered) - 1))
            ordered[0], ordered[pick] = ordered[pick], ordered[0]
        return ordered

    def order_candidates_arrays(
        self, nodes, availabilities, target, ttl_remaining, rng, exclude_digests, digests
    ):
        ordered, delta = _greedy_order_arrays(
            nodes, availabilities, digests, target, rng, exclude_digests
        )
        # Same decision sequence (and rng draws) as the entry-list path:
        # the length guard and the in-range short-circuit both precede
        # any randomness, so the acceptance draw happens iff it would
        # have scalar-side.
        if len(ordered) < 2:
            return ordered
        if delta == 0.0:
            return ordered
        if rng.random() < self.acceptance_probability(delta, ttl_remaining):
            pick = 1 + int(rng.integers(len(ordered) - 1))
            ordered[0], ordered[pick] = ordered[pick], ordered[0]
        return ordered


_POLICIES = {
    GreedyPolicy.name: GreedyPolicy,
    RetriedGreedyPolicy.name: RetriedGreedyPolicy,
    AnnealingPolicy.name: AnnealingPolicy,
}

POLICY_NAMES = tuple(sorted(_POLICIES))


def make_policy(name: str) -> ForwardingPolicy:
    """Instantiate a forwarding policy by registry name."""
    cls = _POLICIES.get(name)
    if cls is None:
        raise ValueError(f"unknown policy {name!r}; pick from {POLICY_NAMES}")
    return cls()
