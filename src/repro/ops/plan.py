"""Declarative operation plans.

The paper's whole evaluation is "launch {threshold, range} × {anycast,
multicast} operations, measure reliability/spam/latency" (Sections 3.2,
4.2).  An :class:`OperationPlan` makes that workload a *value*: a tuple
of :class:`OperationItem` entries — each naming the operation kind, the
availability target, who initiates (a band or an explicit node), the
forwarding policy/selector, a count, and a :class:`OperationTiming` —
plus a trailing settle window.  Plans are executed by
:class:`~repro.ops.runner.OperationRunner` (``sim.ops.run(plan)``) and
their outcomes land in a columnar :class:`~repro.ops.log.OperationLog`.

Timing modes:

* ``"batch"``    — all ``count`` launches at the item's phase offset;
* ``"interval"`` — launches ``spacing`` seconds apart (the seed batch
  drivers' shape; the schedule horizon includes one trailing spacing,
  matching the historical ``run_*_batch`` behaviour exactly);
* ``"poisson"``  — exponential inter-arrival gaps at ``rate`` arrivals
  per second (mixed anycast+multicast Poisson streams interleave by
  launch time).

Phase offsets shift an item's whole schedule, so multi-item plans can
express staggered runs or overlapping streams.  Compilation
(:meth:`OperationPlan.compile`) is deterministic given an rng, and plans
round-trip through plain dicts / JSON files for the ``repro ops run``
CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.membership import SliverSelector
from repro.ops.anycast import POLICY_NAMES
from repro.ops.spec import InitiatorBand, TargetSpec
from repro.util.validation import check_positive

__all__ = [
    "OperationTiming",
    "OperationItem",
    "OperationPlan",
    "LaunchSchedule",
    "TIMING_MODES",
    "OPERATION_KINDS",
]

TIMING_MODES = ("batch", "interval", "poisson")
OPERATION_KINDS = ("anycast", "multicast")

#: default inter-launch spacing per kind (the seed batch drivers' values)
DEFAULT_SPACING = {"anycast": 2.0, "multicast": 5.0}
#: default stage-1 forwarding policy per kind (seed ``run_*`` defaults)
DEFAULT_POLICY = {"anycast": "greedy", "multicast": "retry-greedy"}


def sequential_multicast_phase(
    anycasts: int, settle: float, anycast_spacing: Optional[float] = None
) -> float:
    """Where an interval-timed multicast stream starts when it follows a
    sequential anycast stream: after the anycast stream's trailing
    spacing plus one settle window (the historical sequential driver
    shape).  Shared by :meth:`WorkloadSpec.to_plan` and the ``repro ops
    run`` flag builder so the rule has one home.
    """
    if anycasts <= 0:
        return 0.0
    spacing = anycast_spacing if anycast_spacing is not None else DEFAULT_SPACING["anycast"]
    return anycasts * spacing + settle


@dataclass(frozen=True)
class OperationTiming:
    """When an item's ``count`` launches happen, relative to plan start.

    ``spacing`` applies to ``"interval"`` mode, ``rate`` (arrivals per
    second) to ``"poisson"``; ``phase`` shifts the whole schedule.
    """

    mode: str = "interval"
    spacing: Optional[float] = None  # None -> the kind's default spacing
    rate: float = 1.0
    phase: float = 0.0

    def __post_init__(self):
        if self.mode not in TIMING_MODES:
            raise ValueError(f"mode must be one of {TIMING_MODES}, got {self.mode!r}")
        if self.spacing is not None and self.spacing < 0:
            raise ValueError(f"spacing must be >= 0, got {self.spacing}")
        if self.mode == "poisson":
            check_positive(self.rate, "rate")
        if self.phase < 0:
            raise ValueError(f"phase must be >= 0, got {self.phase}")

    def offsets(
        self, count: int, kind: str, rng: Optional[np.random.Generator]
    ) -> Tuple[np.ndarray, float]:
        """``(launch_offsets, horizon)`` for ``count`` launches.

        The horizon is where the item's schedule *ends* — interval mode
        includes one trailing spacing (the historical batch drivers ran
        the simulator one spacing past the last launch before settling).
        Poisson mode draws from ``rng``; the other modes consume none.
        """
        if count == 0:
            return np.zeros(0), self.phase
        if self.mode == "batch":
            return np.full(count, self.phase), self.phase
        if self.mode == "interval":
            spacing = self.spacing if self.spacing is not None else DEFAULT_SPACING[kind]
            offsets = self.phase + spacing * np.arange(count, dtype=float)
            return offsets, self.phase + spacing * count
        if rng is None:
            raise ValueError("poisson timing needs an rng to compile")
        gaps = rng.exponential(1.0 / self.rate, size=count)
        offsets = self.phase + np.cumsum(gaps)
        return offsets, float(offsets[-1])

    def as_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "spacing": self.spacing,
            "rate": self.rate,
            "phase": self.phase,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "OperationTiming":
        return cls(
            mode=str(data.get("mode", "interval")),
            spacing=None if data.get("spacing") is None else float(data["spacing"]),
            rate=float(data.get("rate", 1.0)),
            phase=float(data.get("phase", 0.0)),
        )


@dataclass(frozen=True)
class OperationItem:
    """One operation stream of a plan.

    ``initiator`` may be an explicit :class:`~repro.core.ids.NodeId` (or,
    in JSON plans, an integer index into the simulation's node list);
    when ``None`` a fresh online node is drawn from ``band`` per launch.
    ``policy`` is the anycast forwarding policy (stage 1 for multicasts;
    ``None`` resolves to the kind's default), ``mode`` the multicast
    dissemination mode (ignored for anycasts).
    """

    kind: str
    target: TargetSpec
    count: int = 1
    band: str = InitiatorBand.MID
    initiator: Optional[object] = None
    policy: Optional[str] = None
    selector: str = SliverSelector.BOTH
    mode: str = "flood"
    ttl: Optional[int] = None
    retry: Optional[int] = None
    timing: OperationTiming = field(default_factory=OperationTiming)
    label: Optional[str] = None

    def __post_init__(self):
        if self.kind not in OPERATION_KINDS:
            raise ValueError(f"kind must be one of {OPERATION_KINDS}, got {self.kind!r}")
        if not isinstance(self.target, TargetSpec):
            raise TypeError(f"target must be a TargetSpec, got {type(self.target)}")
        if self.count < 0:
            raise ValueError(f"count must be >= 0, got {self.count}")
        InitiatorBand.validate(self.band)
        if self.policy is not None and self.policy not in POLICY_NAMES:
            raise ValueError(f"unknown policy {self.policy!r}; pick from {POLICY_NAMES}")
        SliverSelector.validate(self.selector)
        if self.mode not in ("flood", "gossip"):
            raise ValueError(f"mode must be 'flood' or 'gossip', got {self.mode!r}")

    @property
    def resolved_policy(self) -> str:
        return self.policy if self.policy is not None else DEFAULT_POLICY[self.kind]

    def as_dict(self) -> Dict[str, object]:
        initiator = self.initiator
        if initiator is not None and not isinstance(initiator, int):
            # NodeIds serialize by endpoint; the runner resolves either form.
            initiator = getattr(initiator, "endpoint", str(initiator))
        return {
            "kind": self.kind,
            "target": {
                "lo": self.target.lo,
                "hi": self.target.hi,
                "kind": self.target.kind,
            },
            "count": self.count,
            "band": self.band,
            "initiator": initiator,
            "policy": self.policy,
            "selector": self.selector,
            "mode": self.mode,
            "ttl": self.ttl,
            "retry": self.retry,
            "timing": self.timing.as_dict(),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "OperationItem":
        target = data["target"]
        if isinstance(target, dict):
            spec = TargetSpec(
                lo=float(target["lo"]),
                hi=float(target.get("hi", 1.0)),
                kind=str(target.get("kind", "range")),
            )
        elif isinstance(target, (list, tuple)):
            spec = TargetSpec.range(float(target[0]), float(target[1]))
        else:
            spec = TargetSpec.threshold(float(target))
        timing = data.get("timing", {})
        return cls(
            kind=str(data["kind"]),
            target=spec,
            count=int(data.get("count", 1)),
            band=str(data.get("band", InitiatorBand.MID)),
            initiator=data.get("initiator"),
            policy=data.get("policy"),
            selector=str(data.get("selector", SliverSelector.BOTH)),
            mode=str(data.get("mode", "flood")),
            ttl=None if data.get("ttl") is None else int(data["ttl"]),
            retry=None if data.get("retry") is None else int(data["retry"]),
            timing=timing if isinstance(timing, OperationTiming)
            else OperationTiming.from_dict(timing),
            label=data.get("label"),
        )


@dataclass(frozen=True)
class LaunchSchedule:
    """A compiled plan: one row per launch, sorted by time.

    ``times`` are offsets relative to plan start; ``item_index`` maps
    each launch back to its plan item; ``seq`` is the launch's index
    within its item.  ``horizon`` is where the schedule ends (the drain
    point before the plan's settle window).
    """

    times: np.ndarray
    item_index: np.ndarray
    seq: np.ndarray
    horizon: float

    def __len__(self) -> int:
        return int(self.times.size)


@dataclass(frozen=True)
class OperationPlan:
    """A schedule of management operations plus a settle window."""

    items: Tuple[OperationItem, ...]
    settle: float = 30.0
    name: str = "plan"

    def __post_init__(self):
        object.__setattr__(self, "items", tuple(self.items))
        if not self.items:
            raise ValueError("a plan needs at least one item")
        if self.settle < 0:
            raise ValueError(f"settle must be >= 0, got {self.settle}")

    @property
    def total_operations(self) -> int:
        return sum(item.count for item in self.items)

    def compile(self, rng: Optional[np.random.Generator] = None) -> LaunchSchedule:
        """Flatten the items into one time-sorted launch schedule.

        Deterministic timing modes consume no randomness, so compiling a
        deterministic plan twice yields identical schedules; Poisson
        items draw their gaps from ``rng`` in item order.
        """
        times: List[np.ndarray] = []
        item_idx: List[np.ndarray] = []
        seqs: List[np.ndarray] = []
        horizon = 0.0
        for i, item in enumerate(self.items):
            offsets, item_horizon = item.timing.offsets(item.count, item.kind, rng)
            horizon = max(horizon, item_horizon)
            times.append(offsets)
            item_idx.append(np.full(offsets.size, i, dtype=np.int32))
            seqs.append(np.arange(offsets.size, dtype=np.int32))
        all_times = np.concatenate(times) if times else np.zeros(0)
        all_items = np.concatenate(item_idx) if item_idx else np.zeros(0, np.int32)
        all_seqs = np.concatenate(seqs) if seqs else np.zeros(0, np.int32)
        # Stable sort: ties launch in item order, then per-item sequence
        # order (the concatenation order), so deterministic plans map
        # one-to-one onto the historical scalar batch loops.
        order = np.argsort(all_times, kind="stable")
        return LaunchSchedule(
            times=all_times[order],
            item_index=all_items[order],
            seq=all_seqs[order],
            horizon=float(horizon),
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def single(cls, item: OperationItem, settle: float = 30.0, name: str = "plan"):
        return cls(items=(item,), settle=settle, name=name)

    def with_items(self, *items: OperationItem) -> "OperationPlan":
        return replace(self, items=self.items + tuple(items))

    # ------------------------------------------------------------------
    # Serialization (the ``repro ops run --plan file.json`` format)
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "settle": self.settle,
            "items": [item.as_dict() for item in self.items],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "OperationPlan":
        return cls(
            items=tuple(OperationItem.from_dict(d) for d in data.get("items", ())),
            settle=float(data.get("settle", 30.0)),
            name=str(data.get("name", "plan")),
        )

    def to_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=2)
            fh.write("\n")

    @classmethod
    def from_json(cls, path: str) -> "OperationPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))
