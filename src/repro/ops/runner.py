"""Plan execution: ``sim.ops.run(plan)``.

:class:`OperationRunner` is the single entry point through which every
management-operation workload flows — the figure drivers, the scenario
harness, the ``repro ops run`` CLI, and the legacy
``AvmemSimulation.run_*`` shims all compile down to an
:class:`~repro.ops.plan.OperationPlan` executed here.

Execution walks the compiled launch schedule in time order: advance the
simulator to each launch offset, resolve the initiator (explicit node,
node index, or a fresh draw from the item's band), hand the operation to
the :class:`~repro.ops.engine.OperationEngine`, then drain to the
schedule horizon, run the settle window, finalize the records, and
freeze everything into a columnar :class:`~repro.ops.log.OperationLog`.

Band-addressed launches sharing one launch instant form a natural
cohort: the per-band candidate set is a pure function of (band, sim
time), so it is computed once per (band, instant) — one vectorized
presence + availability pass — and every same-offset slot draws its
initiator from the shared list, consuming the ``"initiators"`` stream
exactly as the per-slot recomputation did.

Deterministic plans consume randomness from exactly the same streams in
exactly the same order as the historical scalar batch loops, so a seeded
shim call and its explicit-plan equivalent produce identical records
(property-tested in ``tests/test_ops_plan.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.core.ids import NodeId
from repro.ops.log import OperationLog
from repro.ops.plan import OperationItem, OperationPlan
from repro.ops.results import AnycastRecord, MulticastRecord
from repro.telemetry import current as current_telemetry

__all__ = ["OperationRunner", "PlanExecution"]

Record = Union[AnycastRecord, MulticastRecord]


@dataclass(frozen=True)
class PlanExecution:
    """What one :meth:`OperationRunner.run` call produced.

    ``log`` is the columnar outcome table (one row per launch slot,
    including skipped slots); ``records`` the live per-operation records
    in launch order (``None`` where a slot was skipped) for callers that
    still need record-level access (the deprecation shims, equivalence
    tests).
    """

    plan: OperationPlan
    log: OperationLog
    records: Tuple[Optional[Record], ...]

    @property
    def launched(self) -> List[Record]:
        return [record for record in self.records if record is not None]


class OperationRunner:
    """Executes :class:`~repro.ops.plan.OperationPlan`\\ s on a simulation."""

    #: rng stream names (on the simulation's router)
    TIMING_STREAM = "ops-plan-timing"
    INITIATOR_STREAM = "initiators"

    def __init__(self, simulation):
        self._simulation = simulation
        # The simulation's captured recorder (falling back to the active
        # context for stub simulations in tests) — plan execution records
        # into the same per-session recorder as the engine beneath it.
        self._telemetry = getattr(simulation, "telemetry", None)
        if self._telemetry is None:
            self._telemetry = current_telemetry()
        self._by_endpoint: Optional[dict] = None
        # Per-launch-instant cache of band -> initiator candidate row
        # arrays (valid only while sim.now is unchanged; see
        # _pick_from_band).
        self._band_cache: Dict[str, "np.ndarray"] = {}
        self._band_cache_time: Optional[float] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, plan: OperationPlan) -> OperationLog:
        """Execute ``plan`` and return its :class:`OperationLog`."""
        return self.execute(plan).log

    def execute(self, plan: OperationPlan) -> PlanExecution:
        """Execute ``plan``, keeping record-level results too."""
        with self._telemetry.span("ops.execute"):
            return self._execute(plan)

    def _execute(self, plan: OperationPlan) -> PlanExecution:
        simulation = self._simulation
        simulation._require_ready()
        # The endpoint index is rebuilt per execution: the population may
        # have changed since the last plan ran, and a stale index would
        # resolve endpoint-addressed initiators against nodes that no
        # longer exist (or miss ones that now do).
        self._by_endpoint = None
        self._band_cache = {}
        self._band_cache_time = None
        schedule = plan.compile(rng=simulation._router.get(self.TIMING_STREAM))
        sim = simulation.sim
        engine = simulation.engine
        start = sim.now
        outcomes: List[Tuple[int, float, Optional[Record]]] = []
        # Launch slots sharing one instant form a wavefront cohort: the
        # engine holds their first-hop dispatches while the cohort
        # launches and flushes them as one batch when the clock is about
        # to advance (identical records to per-slot dispatch — the
        # ordering and latency streams are consumed in the same
        # per-stream order; see docs/architecture.md §"Anycast
        # wavefront").
        holding = False
        telemetry = self._telemetry
        for k in range(len(schedule)):
            launch_at = start + float(schedule.times[k])
            if launch_at > sim.now:
                if holding:
                    engine.release_wavefront()
                    holding = False
                with telemetry.span("ops.advance"):
                    sim.run_until(launch_at)
            if not holding:
                engine.hold_wavefront()
                holding = True
            item_index = int(schedule.item_index[k])
            item = plan.items[item_index]
            initiator = self._resolve_initiator(item)
            if initiator is None:
                if telemetry.enabled:
                    telemetry.count("ops.skipped")
                outcomes.append((item_index, sim.now, None))
                continue
            if telemetry.enabled:
                telemetry.count("ops.launched")
                telemetry.count(f"ops.launched.{item.kind}")
            if item.kind == "anycast":
                record: Record = engine.anycast(
                    initiator,
                    item.target,
                    policy=item.resolved_policy,
                    selector=item.selector,
                    ttl=item.ttl,
                    retry=item.retry,
                )
            else:
                record = engine.multicast(
                    initiator,
                    item.target,
                    mode=item.mode,
                    selector=item.selector,
                    anycast_policy=item.resolved_policy,
                    ttl=item.ttl,
                    retry=item.retry,
                )
            outcomes.append((item_index, record.started_at, record))
        if holding:
            engine.release_wavefront()
        drain_until = start + schedule.horizon
        if drain_until > sim.now:
            sim.run_until(drain_until)
        if plan.settle > 0:
            sim.run_until(sim.now + plan.settle)
        builder = OperationLog.builder()
        records: List[Optional[Record]] = []
        for item_index, at, record in outcomes:
            item = plan.items[item_index]
            band = item.band if item.initiator is None else None
            if record is None:
                builder.append_skipped(item, item=item_index, at=at)
            elif isinstance(record, MulticastRecord):
                if record.anycast is not None:
                    record.anycast.finalize()
                builder.append_multicast(record, band=band, item=item_index)
            else:
                record.finalize()
                builder.append_anycast(record, band=band, item=item_index)
            records.append(record)
        return PlanExecution(plan=plan, log=builder.finalize(), records=tuple(records))

    # ------------------------------------------------------------------
    # Initiator resolution
    # ------------------------------------------------------------------
    def _resolve_initiator(self, item: OperationItem) -> Optional[NodeId]:
        simulation = self._simulation
        initiator = item.initiator
        if initiator is None:
            return self._pick_from_band(item.band)
        if isinstance(initiator, NodeId):
            return initiator
        if isinstance(initiator, bool):
            raise TypeError("initiator must be a NodeId, index, or endpoint")
        if isinstance(initiator, int):
            return simulation.node_ids[initiator]
        if isinstance(initiator, str):
            if self._by_endpoint is None:
                self._by_endpoint = {
                    node.endpoint: node for node in simulation.node_ids
                }
            node = self._by_endpoint.get(initiator)
            if node is None:
                raise ValueError(f"unknown initiator endpoint {initiator!r}")
            return node
        raise TypeError(f"cannot resolve initiator {initiator!r}")

    def _pick_from_band(self, band: str) -> Optional[NodeId]:
        """Draw a band initiator, sharing the candidate set across every
        launch slot at the current instant.

        The candidate set is deterministic given (band, sim.now), so
        same-offset slots reuse one vectorized computation while drawing
        from the ``"initiators"`` stream exactly like per-slot
        :meth:`~repro.simulation.AvmemSimulation.pick_initiator` calls.
        Candidates are cached as a population-row array — only the one
        drawn row is translated back to a :class:`NodeId` (trace order is
        row order, so ``rows[j]`` names the node scalar candidate lists
        held at position ``j``, and the rng consumption is unchanged).
        """
        simulation = self._simulation
        now = simulation.sim.now
        if self._band_cache_time != now:
            self._band_cache = {}
            self._band_cache_time = now
        rows = self._band_cache.get(band)
        if rows is None:
            rows = simulation.band_initiator_rows(band)
            self._band_cache[band] = rows
        if not rows.size:
            return None
        rng = simulation._router.get(self.INITIATOR_STREAM)
        return simulation.trace.nodes[int(rows[int(rng.integers(rows.size))])]
