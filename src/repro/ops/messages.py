"""Wire messages for the management operations (Section 3.2).

Payloads are small frozen dataclasses dispatched by type through
:meth:`repro.core.node.AvmemNode.register_handler`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.core.ids import NodeId
from repro.ops.spec import TargetSpec

__all__ = ["AnycastMessage", "AnycastAck", "MulticastMessage"]


@dataclass(frozen=True)
class AnycastMessage:
    """An in-flight anycast (also the first stage of a multicast).

    ``retry`` is the remaining retried-greedy budget carried with the
    message ("each forwarded message carries the value of retry");
    ``attempt`` uniquely identifies one transmission for acking.
    """

    op_id: int
    target: TargetSpec
    ttl: int
    retry: int
    attempt: int
    origin: NodeId
    sender: NodeId
    path: Tuple[NodeId, ...]
    multicast_payload: bool = False  # stage-1 carrier for a multicast?

    def hop(
        self, sender: NodeId, next_hop: NodeId, attempt: int, retry: Optional[int] = None
    ) -> "AnycastMessage":
        """The message as forwarded by ``sender`` to ``next_hop``.

        TTL is decremented; the next hop joins the path (so loops are
        avoidable by excluding path members); ``retry`` optionally
        updates the remaining retry budget.
        """
        return replace(
            self,
            ttl=self.ttl - 1,
            sender=sender,
            attempt=attempt,
            retry=self.retry if retry is None else retry,
            path=self.path + (next_hop,),
        )

    @property
    def hops_taken(self) -> int:
        """Virtual hops traversed so far (path includes the origin)."""
        return len(self.path) - 1


@dataclass(frozen=True)
class AnycastAck:
    """Receipt acknowledgement for one anycast transmission attempt."""

    op_id: int
    attempt: int
    acker: NodeId


@dataclass(frozen=True)
class MulticastMessage:
    """Stage-2 multicast dissemination inside the target range."""

    op_id: int
    target: TargetSpec
    root: NodeId  # the in-range node where stage 2 started
    sender: NodeId
    mode: str  # "flood" | "gossip"
    hop_count: int = 0

    def forwarded(self, sender: NodeId) -> "MulticastMessage":
        return replace(self, sender=sender, hop_count=self.hop_count + 1)
