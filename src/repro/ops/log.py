"""Columnar operation outcomes: the :class:`OperationLog`.

One row per *launch slot* of an executed
:class:`~repro.ops.plan.OperationPlan` (including slots skipped because
no initiator was online in the requested band), stored struct-of-arrays:
status codes, hop counts, transmissions, latencies, target bounds, band/
policy/selector/mode codes, launch times, and the multicast tallies
(eligible / delivered / spam / duplicates).  All the evaluation metrics
the figure drivers and the scenario harness need — success rate, status
fractions, latency percentiles, spam ratio, reliability, grouped by any
combination of code columns — are vectorized numpy reductions over these
arrays; no per-record Python loops remain downstream.

Logs are built through :class:`OperationLogBuilder` (append rows, then
:meth:`~OperationLogBuilder.finalize`), round-trip through JSON and CSV
(:meth:`OperationLog.to_json` / :meth:`OperationLog.from_json`,
:meth:`OperationLog.to_csv` / :meth:`OperationLog.from_csv`), and can be
synthesized from legacy record lists with :meth:`OperationLog.from_records`.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.membership import SliverSelector
from repro.ops.anycast import POLICY_NAMES
from repro.ops.results import AnycastRecord, AnycastStatus, MulticastRecord
from repro.ops.spec import InitiatorBand

__all__ = ["OperationLog", "OperationLogBuilder", "STATUSES", "KINDS"]

#: status vocabulary: the anycast terminal taxonomy plus the log-only
#: "skipped" (launch slot with no eligible initiator) and "pending"
#: (never present after a finalized run; kept for completeness)
STATUSES: Tuple[str, ...] = (
    "skipped",
    AnycastStatus.PENDING,
    AnycastStatus.DELIVERED,
    AnycastStatus.TTL_EXPIRED,
    AnycastStatus.RETRY_EXPIRED,
    AnycastStatus.NO_NEIGHBOR,
    AnycastStatus.LOST,
    AnycastStatus.INITIATOR_OFFLINE,
)
KINDS: Tuple[str, ...] = ("anycast", "multicast")
BANDS: Tuple[str, ...] = (InitiatorBand.LOW, InitiatorBand.MID, InitiatorBand.HIGH)
SELECTORS: Tuple[str, ...] = (
    SliverSelector.HS_ONLY,
    SliverSelector.VS_ONLY,
    SliverSelector.BOTH,
)
MODES: Tuple[str, ...] = ("flood", "gossip")
TARGET_KINDS: Tuple[str, ...] = ("range", "threshold")

_STATUS_CODE = {name: i for i, name in enumerate(STATUSES)}
_BAND_CODE = {name: i for i, name in enumerate(BANDS)}
_POLICY_CODE = {name: i for i, name in enumerate(POLICY_NAMES)}
_SELECTOR_CODE = {name: i for i, name in enumerate(SELECTORS)}
_MODE_CODE = {name: i for i, name in enumerate(MODES)}
_TARGET_KIND_CODE = {name: i for i, name in enumerate(TARGET_KINDS)}

#: (column, dtype) schema — the single source of truth for exports.
_SCHEMA: Tuple[Tuple[str, type], ...] = (
    ("op_id", np.int64),
    ("item", np.int32),
    ("kind", np.int8),
    ("status", np.int8),
    ("band", np.int8),
    ("policy", np.int8),
    ("selector", np.int8),
    ("mode", np.int8),
    ("target_lo", np.float64),
    ("target_hi", np.float64),
    ("target_kind", np.int8),
    ("launched_at", np.float64),
    ("hops", np.int32),
    ("transmissions", np.int32),
    ("acks", np.int32),
    ("retries", np.int32),
    ("latency", np.float64),
    ("eligible", np.int32),
    ("delivered_count", np.int32),
    ("spam_count", np.int32),
    ("duplicates", np.int32),
    ("worst_latency", np.float64),
)
COLUMN_NAMES: Tuple[str, ...] = tuple(name for name, _ in _SCHEMA)
_FLOAT_COLUMNS = frozenset(n for n, d in _SCHEMA if d is np.float64)

#: columns whose codes decode through a vocabulary (for grouping labels)
_DECODERS: Dict[str, Tuple[str, ...]] = {
    "kind": KINDS,
    "status": STATUSES,
    "band": BANDS,
    "policy": POLICY_NAMES,
    "selector": SELECTORS,
    "mode": MODES,
    "target_kind": TARGET_KINDS,
}


def _decode(column: str, code: int) -> object:
    vocabulary = _DECODERS.get(column)
    if vocabulary is None:
        return int(code)
    return vocabulary[code] if 0 <= code < len(vocabulary) else None


class OperationLogBuilder:
    """Accumulates log rows; :meth:`finalize` freezes them columnar."""

    def __init__(self):
        self._rows: List[Tuple] = []

    def __len__(self) -> int:
        return len(self._rows)

    def _append(
        self,
        *,
        op_id: int,
        item: int,
        kind: str,
        status: str,
        band: Optional[str],
        policy: Optional[str],
        selector: str,
        mode: Optional[str],
        target,
        launched_at: float,
        hops: Optional[int],
        transmissions: int,
        acks: int,
        retries: int,
        latency: Optional[float],
        eligible: int,
        delivered_count: int,
        spam_count: int,
        duplicates: int,
        worst_latency: Optional[float],
    ) -> None:
        self._rows.append((
            op_id,
            item,
            KINDS.index(kind),
            _STATUS_CODE[status],
            -1 if band is None else _BAND_CODE[band],
            -1 if policy is None else _POLICY_CODE[policy],
            _SELECTOR_CODE[selector],
            -1 if mode is None else _MODE_CODE[mode],
            float(target.lo),
            float(target.hi),
            _TARGET_KIND_CODE[target.kind],
            launched_at,
            -1 if hops is None else int(hops),
            int(transmissions),
            int(acks),
            int(retries),
            math.nan if latency is None else float(latency),
            int(eligible),
            int(delivered_count),
            int(spam_count),
            int(duplicates),
            math.nan if worst_latency is None else float(worst_latency),
        ))

    def append_anycast(
        self,
        record: AnycastRecord,
        *,
        band: Optional[str] = None,
        item: int = -1,
    ) -> None:
        """One finalized anycast record becomes one row."""
        self._append(
            op_id=record.op_id,
            item=item,
            kind="anycast",
            status=record.status,
            band=band,
            policy=record.policy,
            selector=record.selector,
            mode=None,
            target=record.target,
            launched_at=record.started_at,
            hops=record.hops,
            transmissions=record.data_messages,
            acks=record.ack_messages,
            retries=record.retries_used,
            latency=record.latency,
            eligible=-1,
            delivered_count=-1,
            spam_count=-1,
            duplicates=-1,
            worst_latency=None,
        )

    def append_multicast(
        self,
        record: MulticastRecord,
        *,
        band: Optional[str] = None,
        item: int = -1,
    ) -> None:
        """One multicast record (both stages) becomes one row.

        The row's status/hops/latency/retries come from the stage-1
        anycast; transmissions count both stages' data messages.
        """
        stage1 = record.anycast
        self._append(
            op_id=record.op_id,
            item=item,
            kind="multicast",
            status=stage1.status if stage1 is not None else AnycastStatus.PENDING,
            band=band,
            policy=stage1.policy if stage1 is not None else None,
            selector=record.selector,
            mode=record.mode,
            target=record.target,
            launched_at=record.started_at,
            hops=stage1.hops if stage1 is not None else None,
            transmissions=record.data_messages
            + (stage1.data_messages if stage1 is not None else 0),
            acks=stage1.ack_messages if stage1 is not None else 0,
            retries=stage1.retries_used if stage1 is not None else 0,
            latency=stage1.latency if stage1 is not None else None,
            eligible=len(record.eligible),
            delivered_count=len(record.deliveries),
            spam_count=len(record.spam),
            duplicates=record.duplicate_receptions,
            worst_latency=record.worst_latency(),
        )

    def append_skipped(self, item_spec, *, item: int = -1, at: float = math.nan) -> None:
        """A launch slot whose band had no online initiator."""
        self._append(
            op_id=-1,
            item=item,
            kind=item_spec.kind,
            status="skipped",
            band=item_spec.band,
            policy=item_spec.resolved_policy,
            selector=item_spec.selector,
            mode=item_spec.mode if item_spec.kind == "multicast" else None,
            target=item_spec.target,
            launched_at=at,
            hops=None,
            transmissions=0,
            acks=0,
            retries=0,
            latency=None,
            eligible=-1,
            delivered_count=-1,
            spam_count=-1,
            duplicates=-1,
            worst_latency=None,
        )

    def finalize(self) -> "OperationLog":
        """Freeze the appended rows into a columnar :class:`OperationLog`."""
        if self._rows:
            transposed = list(zip(*self._rows))
        else:
            transposed = [[] for _ in _SCHEMA]
        columns = {
            name: np.asarray(values, dtype=dtype)
            for (name, dtype), values in zip(_SCHEMA, transposed)
        }
        return OperationLog(columns)


@dataclass(frozen=True, eq=False)
class OperationLog:
    """Immutable columnar outcomes of one executed plan (see module doc)."""

    columns: Dict[str, np.ndarray]

    def __post_init__(self):
        sizes = {c.size for c in self.columns.values()}
        if set(self.columns) != set(COLUMN_NAMES):
            missing = set(COLUMN_NAMES) - set(self.columns)
            extra = set(self.columns) - set(COLUMN_NAMES)
            raise ValueError(f"bad column set (missing={missing}, extra={extra})")
        if len(sizes) > 1:
            raise ValueError(f"ragged columns: sizes {sorted(sizes)}")

    # -- plumbing -------------------------------------------------------
    def __len__(self) -> int:
        return int(self.columns["op_id"].size)

    def __getattr__(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise AttributeError(name) from None

    @classmethod
    def builder(cls) -> OperationLogBuilder:
        return OperationLogBuilder()

    @classmethod
    def concat(cls, logs: Sequence["OperationLog"]) -> "OperationLog":
        """Stack several logs into one, preserving row order.

        A session that ran three plans holds three logs; its combined
        aggregations (success rate, latency percentiles, …) are computed
        over ``concat(logs)`` exactly as if one plan had produced every
        row.  ``op_id``/``item`` values are kept verbatim — they are
        per-plan identifiers, disambiguated by row position.
        """
        logs = list(logs)
        if not logs:
            return cls.builder().finalize()
        if len(logs) == 1:
            return logs[0]
        return cls(
            {
                name: np.concatenate([log.columns[name] for log in logs])
                for name in COLUMN_NAMES
            }
        )

    @classmethod
    def from_records(
        cls,
        anycasts: Sequence[AnycastRecord] = (),
        multicasts: Sequence[MulticastRecord] = (),
        band: Optional[str] = None,
    ) -> "OperationLog":
        """Adapt legacy record lists (benchmarks, tests, old pipelines)."""
        builder = cls.builder()
        for record in anycasts:
            builder.append_anycast(record, band=band)
        for record in multicasts:
            builder.append_multicast(record, band=band)
        return builder.finalize()

    # -- masks ----------------------------------------------------------
    @property
    def launched(self) -> np.ndarray:
        """Rows that actually launched (op_id assigned)."""
        return self.columns["status"] != _STATUS_CODE["skipped"]

    @property
    def anycasts(self) -> np.ndarray:
        return self.columns["kind"] == KINDS.index("anycast")

    @property
    def multicasts(self) -> np.ndarray:
        return self.columns["kind"] == KINDS.index("multicast")

    @property
    def delivered(self) -> np.ndarray:
        """Stage-1 delivery (anycast delivered / multicast reached range)."""
        return self.columns["status"] == _STATUS_CODE[AnycastStatus.DELIVERED]

    def _mask(self, mask: Optional[np.ndarray]) -> np.ndarray:
        if mask is None:
            return np.ones(len(self), dtype=bool)
        return np.asarray(mask, dtype=bool)

    # -- scalar aggregates ----------------------------------------------
    def success_rate(self, mask: Optional[np.ndarray] = None) -> float:
        """Delivered fraction over the *launched* rows under ``mask``."""
        mask = self._mask(mask) & self.launched
        n = int(mask.sum())
        if n == 0:
            return float("nan")
        return float((self.delivered & mask).sum() / n)

    def status_fractions(self, mask: Optional[np.ndarray] = None) -> Dict[str, float]:
        """Terminal-status fractions over launched rows (Fig 9's bars)."""
        mask = self._mask(mask) & self.launched
        n = int(mask.sum())
        if n == 0:
            return {}
        counts = np.bincount(self.columns["status"][mask], minlength=len(STATUSES))
        return {status: counts[_STATUS_CODE[status]] / n for status in AnycastStatus.TERMINAL}

    def latencies(self, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Stage-1 delivery latencies (seconds) of delivered rows."""
        mask = self._mask(mask) & self.delivered
        values = self.columns["latency"][mask]
        return values[np.isfinite(values)]

    def latency_percentiles(
        self, qs: Sequence[float] = (50.0, 90.0, 99.0), mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Latency percentiles in *milliseconds* (NaNs when undefined)."""
        values = self.latencies(mask)
        if values.size == 0:
            return np.full(len(qs), np.nan)
        return 1000.0 * np.percentile(values, qs)

    def mean_latency_ms(self, mask: Optional[np.ndarray] = None) -> float:
        values = self.latencies(mask)
        return float(1000.0 * values.mean()) if values.size else float("nan")

    def hops_delivered(self, mask: Optional[np.ndarray] = None) -> np.ndarray:
        return self.columns["hops"][self._mask(mask) & self.delivered]

    def hop_fraction_within(self, limit: int, mask: Optional[np.ndarray] = None) -> float:
        """Fraction of delivered rows that took ``<= limit`` hops."""
        hops = self.hops_delivered(mask)
        return float((hops <= limit).mean()) if hops.size else float("nan")

    # -- multicast metrics ----------------------------------------------
    def reliability_values(self, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-multicast delivered/eligible (Fig 13); NaN when nobody
        was eligible; rows without tallies (anycasts, skips) dropped."""
        mask = self._mask(mask) & self.launched & (self.columns["eligible"] >= 0)
        eligible = self.columns["eligible"][mask].astype(float)
        delivered = self.columns["delivered_count"][mask].astype(float)
        out = np.full(eligible.size, np.nan)
        np.divide(delivered, eligible, out=out, where=eligible > 0)
        return out

    def spam_ratio_values(self, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-multicast spam/eligible (Fig 12), NaN when undefined."""
        mask = self._mask(mask) & self.launched & (self.columns["eligible"] >= 0)
        eligible = self.columns["eligible"][mask].astype(float)
        spam = self.columns["spam_count"][mask].astype(float)
        out = np.full(eligible.size, np.nan)
        np.divide(spam, eligible, out=out, where=eligible > 0)
        return out

    def worst_latencies(self, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Finite last-delivery latencies (seconds) of multicast rows."""
        values = self.columns["worst_latency"][self._mask(mask)]
        return values[np.isfinite(values)]

    # -- grouped aggregation --------------------------------------------
    def aggregate(
        self, by: Sequence[str] = ("kind",), mask: Optional[np.ndarray] = None
    ) -> List[Dict[str, object]]:
        """Grouped metrics, one dict per distinct ``by``-tuple.

        ``by`` may name any code column (``kind``, ``band``, ``policy``,
        ``selector``, ``mode``, ``item``, ``target_kind``) or ``"target"``
        (grouping on the exact ``(lo, hi, kind)`` region).  Each group
        reports launched/delivered counts, success rate, mean hops and
        transmissions, latency p50/p90, and — where multicast tallies
        exist — mean reliability and spam ratio.  Groups are keyed by the
        decoded labels and returned sorted by key.
        """
        mask = self._mask(mask)
        keys: List[np.ndarray] = []
        decoders: List[Tuple[str, Optional[np.ndarray]]] = []
        for field in by:
            if field == "target":
                stacked = np.stack(
                    [
                        self.columns["target_lo"],
                        self.columns["target_hi"],
                        self.columns["target_kind"].astype(float),
                    ],
                    axis=1,
                )
                uniq, codes = np.unique(stacked, axis=0, return_inverse=True)
                keys.append(codes.reshape(-1))
                decoders.append((field, uniq))
            elif field in COLUMN_NAMES and field not in _FLOAT_COLUMNS:
                keys.append(self.columns[field].astype(np.int64))
                decoders.append((field, None))
            else:
                raise ValueError(f"cannot group by {field!r}")
        if not keys:
            raise ValueError("aggregate needs at least one field")
        stacked_keys = np.stack(keys, axis=1)[mask]
        if stacked_keys.shape[0] == 0:
            return []
        # Factorize once: np.unique gives each masked row its group code;
        # a stable argsort of the codes then makes every group one
        # contiguous slice of row indices (still in ascending row order,
        # so per-group value sequences — and hence every mean/percentile
        # below — match the per-group boolean-mask extraction exactly).
        groups, inverse = np.unique(stacked_keys, axis=0, return_inverse=True)
        indices = np.flatnonzero(mask)
        order = np.argsort(inverse.reshape(-1), kind="stable")
        sorted_rows = indices[order]
        bounds = np.searchsorted(
            inverse.reshape(-1)[order], np.arange(groups.shape[0] + 1)
        )
        launched_col = self.launched
        delivered_col = self.delivered
        latency_col = self.columns["latency"]
        hops_col = self.columns["hops"]
        transmissions_col = self.columns["transmissions"]
        eligible_col = self.columns["eligible"]
        delivered_count_col = self.columns["delivered_count"]
        spam_col = self.columns["spam_count"]
        out: List[Dict[str, object]] = []
        for g in range(groups.shape[0]):
            rows = sorted_rows[bounds[g] : bounds[g + 1]]
            entry: Dict[str, object] = {}
            for (field, uniq), code in zip(decoders, groups[g]):
                if uniq is not None:  # "target"
                    lo, hi, kind_code = uniq[code]
                    entry[field] = {
                        "lo": float(lo),
                        "hi": float(hi),
                        "kind": TARGET_KINDS[int(kind_code)],
                    }
                else:
                    entry[field] = _decode(field, int(code))
            launched = launched_col[rows]
            delivered = delivered_col[rows]
            n_launched = int(launched.sum())
            n_delivered_launched = int((delivered & launched).sum())
            latencies = latency_col[rows[delivered]]
            latencies = latencies[np.isfinite(latencies)]
            if latencies.size:
                p50, p90 = 1000.0 * np.percentile(latencies, (50.0, 90.0))
            else:
                p50 = p90 = float("nan")
            hops = hops_col[rows[delivered]]
            tallied = rows[launched & (eligible_col[rows] >= 0)]
            eligible = eligible_col[tallied].astype(float)
            reliability = np.full(eligible.size, np.nan)
            np.divide(
                delivered_count_col[tallied].astype(float),
                eligible,
                out=reliability,
                where=eligible > 0,
            )
            spam = np.full(eligible.size, np.nan)
            np.divide(
                spam_col[tallied].astype(float), eligible, out=spam, where=eligible > 0
            )
            entry.update(
                rows=int(rows.size),
                launched=n_launched,
                delivered=int(delivered.sum()),
                success_rate=(
                    float(n_delivered_launched / n_launched)
                    if n_launched
                    else float("nan")
                ),
                mean_hops=float(hops.mean()) if hops.size else float("nan"),
                mean_transmissions=(
                    float(transmissions_col[rows[launched]].mean())
                    if n_launched
                    else float("nan")
                ),
                latency_p50_ms=float(p50),
                latency_p90_ms=float(p90),
                mean_reliability=(
                    float(np.nanmean(reliability))
                    if np.isfinite(reliability).any()
                    else float("nan")
                ),
                mean_spam_ratio=(
                    float(np.nanmean(spam))
                    if np.isfinite(spam).any()
                    else float("nan")
                ),
            )
            out.append(entry)
        out.sort(key=lambda e: tuple(str(e[f]) for f in by))
        return out

    def summary(self) -> Dict[str, object]:
        """One flat overall record (the CLI prints this)."""
        p50, p90, p99 = self.latency_percentiles((50.0, 90.0, 99.0))
        reliability = self.reliability_values()
        spam = self.spam_ratio_values()
        hops = self.hops_delivered()
        return {
            "operations": len(self),
            "launched": int(self.launched.sum()),
            "skipped": int((~self.launched).sum()),
            "anycasts": int((self.anycasts & self.launched).sum()),
            "multicasts": int((self.multicasts & self.launched).sum()),
            "delivered": int(self.delivered.sum()),
            "success_rate": self.success_rate(),
            "mean_hops": float(hops.mean()) if hops.size else float("nan"),
            "latency_p50_ms": float(p50),
            "latency_p90_ms": float(p90),
            "latency_p99_ms": float(p99),
            "transmissions": int(self.columns["transmissions"].sum()),
            "acks": int(self.columns["acks"].sum()),
            "retries": int(self.columns["retries"].sum()),
            "mean_reliability": (
                float(np.nanmean(reliability))
                if np.isfinite(reliability).any()
                else float("nan")
            ),
            "mean_spam_ratio": (
                float(np.nanmean(spam)) if np.isfinite(spam).any() else float("nan")
            ),
            "status_fractions": self.status_fractions(),
        }

    # -- row access / export --------------------------------------------
    def row(self, i: int) -> Dict[str, object]:
        """Row ``i`` decoded to labels (debugging / CSV export)."""
        out: Dict[str, object] = {}
        for name in COLUMN_NAMES:
            value = self.columns[name][i]
            if name in _DECODERS:
                out[name] = _decode(name, int(value))
            elif name in _FLOAT_COLUMNS:
                out[name] = float(value)
            else:
                out[name] = int(value)
        return out

    def iter_rows(self) -> Iterable[Dict[str, object]]:
        for i in range(len(self)):
            yield self.row(i)

    def to_json(self, path: str) -> None:
        """Columns as JSON (NaN encoded as null — strict-parser safe).

        The categorical code vocabularies are embedded and verified on
        reload, so an archived log cannot silently mis-decode after a
        vocabulary change (e.g. a newly registered forwarding policy
        reordering ``POLICY_NAMES``).  The CSV export stores bare codes
        and carries no such guard.
        """
        payload = {
            "schema": 1,
            "rows": len(self),
            "vocabularies": {name: list(vocab) for name, vocab in _DECODERS.items()},
            "columns": {},
        }
        for name in COLUMN_NAMES:
            column = self.columns[name]
            if name in _FLOAT_COLUMNS:
                values = [None if not math.isfinite(v) else v for v in column.tolist()]
            else:
                values = column.tolist()
            payload["columns"][name] = values
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
            fh.write("\n")

    @classmethod
    def from_json(cls, path: str) -> "OperationLog":
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        stored = payload.get("vocabularies")
        if stored is not None:
            current = {name: list(vocab) for name, vocab in _DECODERS.items()}
            if stored != current:
                drift = sorted(
                    name for name in current
                    if stored.get(name) != current[name]
                )
                raise ValueError(
                    f"log was written with different code vocabularies for "
                    f"{drift}; its codes would decode to the wrong labels"
                )
        columns = {}
        for name, dtype in _SCHEMA:
            values = payload["columns"][name]
            if name in _FLOAT_COLUMNS:
                values = [math.nan if v is None else v for v in values]
            columns[name] = np.asarray(values, dtype=dtype)
        return cls(columns)

    def to_csv(self, path: str) -> None:
        """One encoded row per line (codes, not labels; NaN as empty)."""
        with open(path, "w", encoding="utf-8", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(COLUMN_NAMES)
            for i in range(len(self)):
                row = []
                for name in COLUMN_NAMES:
                    value = self.columns[name][i]
                    if name in _FLOAT_COLUMNS:
                        row.append("" if not math.isfinite(value) else repr(float(value)))
                    else:
                        row.append(int(value))
                writer.writerow(row)

    @classmethod
    def from_csv(cls, path: str) -> "OperationLog":
        with open(path, "r", encoding="utf-8", newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader)
            if tuple(header) != COLUMN_NAMES:
                raise ValueError(f"unexpected CSV header {header}")
            raw: List[List[str]] = list(reader)
        columns = {}
        for j, (name, dtype) in enumerate(_SCHEMA):
            cells = [row[j] for row in raw]
            if name in _FLOAT_COLUMNS:
                values = [math.nan if cell == "" else float(cell) for cell in cells]
            else:
                values = [int(cell) for cell in cells]
            columns[name] = np.asarray(values, dtype=dtype)
        return cls(columns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OperationLog(rows={len(self)}, launched={int(self.launched.sum())}, "
            f"delivered={int(self.delivered.sum())})"
        )
