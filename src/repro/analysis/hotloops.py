"""Row-space hot-loop rule.

The 1M-node roadmap item is blocked on residual per-node Python loops:
anything O(N) in interpreter bytecode dominates once the columnar
substrate made everything else O(N) in C.  This rule enumerates those
loops in the designated hot modules — the committed baseline *is* the
burn-down list (``repro lint --rules hot-loop``).

Detection is name-based and deliberately over-approximate within the
hot modules: a ``for`` statement (or comprehension) whose iterable is a
population-shaped name — ``nodes``, ``node_ids``, ``population``, … per
:attr:`LintConfig.population_names` — possibly behind ``.values()`` /
``.items()`` / ``.keys()`` or an ``enumerate`` / ``sorted`` / ``list``
/ ``tuple`` / ``reversed`` / ``zip`` / ``range(len(...))`` wrapper.
k-sized loops (per-neighbor membership walks) use different names and
stay silent.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis.base import ModuleContext, Rule, attribute_chain
from repro.analysis.findings import Finding

__all__ = ["HotLoopRule"]

_WRAPPERS = ("enumerate", "sorted", "list", "tuple", "reversed", "set", "frozenset")
_VIEW_METHODS = ("values", "items", "keys")


class HotLoopRule(Rule):
    id = "hot-loop"
    summary = "per-node Python loop over a population-sized iterable"

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.config.in_scope(ctx.rel, ctx.config.hot_modules):
            return ()
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                described = self._population_iterable(it, ctx)
                if described is not None:
                    findings.append(ctx.finding(
                        self.id, it,
                        f"per-node Python loop over `{described}`; "
                        "operate on the Population row space "
                        "(vectorized columns) instead",
                    ))
        return findings

    def _population_iterable(self, node: ast.expr, ctx: ModuleContext) -> Optional[str]:
        """The source text of a population-sized iterable, or None."""
        core = self._unwrap(node)
        if core is None:
            return None
        name = self._terminal_name(core)
        if name is None or name not in ctx.config.population_names:
            return None
        return ast.unparse(node)

    def _unwrap(self, node: ast.expr) -> Optional[ast.expr]:
        """Peel wrapper calls down to the underlying iterable."""
        while True:
            if isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if chain is None:
                    return None
                # x.values() / x.items() / x.keys() -> x
                if len(chain) >= 2 and chain[-1] in _VIEW_METHODS:
                    node = node.func.value  # type: ignore[union-attr]
                    continue
                # enumerate(x), sorted(x), zip(a, b) ... -> first matching arg
                if chain[-1] in _WRAPPERS or chain == ("zip",):
                    if not node.args:
                        return None
                    node = node.args[0]
                    continue
                # range(len(x)) -> x
                if chain == ("range",) and len(node.args) == 1:
                    inner = node.args[0]
                    if (
                        isinstance(inner, ast.Call)
                        and attribute_chain(inner.func) == ("len",)
                        and inner.args
                    ):
                        node = inner.args[0]
                        continue
                return None
            return node

    def _terminal_name(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None
