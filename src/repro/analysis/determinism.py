"""Determinism rule family.

Everything stochastic must flow through named
:class:`~repro.util.randomness.RandomRouter` streams, and engine code
must never read wall clocks or iterate unordered sets into RNG draws or
operation records — those are exactly the leaks that would break the
seeded record-identity parity suites and journal-replay durability.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.base import ModuleContext, Rule, attribute_chain
from repro.analysis.findings import Finding

__all__ = [
    "NpRandomRule",
    "RandomModuleRule",
    "SetIterationRule",
    "WallClockRule",
]


class RandomModuleRule(Rule):
    """The stdlib ``random`` module is banned everywhere.

    Its global Mersenne state is process-wide and unseedable per
    component, so one stray draw perturbs every stream after it.
    """

    id = "random-module"
    summary = "stdlib `random` used instead of a RandomRouter stream"

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        findings.append(ctx.finding(
                            self.id, node,
                            "import of stdlib `random`; draw from a "
                            "RandomRouter stream instead",
                        ))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    findings.append(ctx.finding(
                        self.id, node,
                        "import from stdlib `random`; draw from a "
                        "RandomRouter stream instead",
                    ))
            elif isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if chain and chain[0] == "random" and len(chain) > 1:
                    findings.append(ctx.finding(
                        self.id, node,
                        f"call to `{'.'.join(chain)}` uses the global "
                        "Mersenne state; use a RandomRouter stream",
                    ))
        return findings


class NpRandomRule(Rule):
    """`np.random.*` construction outside ``util/randomness.py``.

    Constructing generators ad hoc (especially ``default_rng()`` with
    no seed) forks anonymous streams the seeded parity suites cannot
    reproduce; the router module is the single sanctioned choke point.
    """

    id = "np-random"
    summary = "numpy RNG constructed outside util/randomness.py"

    _ROOTS = ("np", "numpy")

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.config.in_scope(ctx.rel, ctx.config.randomness_modules):
            return ()
        findings: List[Finding] = []
        direct_names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "numpy.random",
            ):
                for alias in node.names:
                    direct_names.add(alias.asname or alias.name)
                findings.append(ctx.finding(
                    self.id, node,
                    "import from numpy.random; route streams through "
                    "util/randomness.py (RandomRouter / stream / fallback_rng)",
                ))
            elif isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if chain is None:
                    continue
                if (
                    len(chain) >= 3
                    and chain[0] in self._ROOTS
                    and chain[1] == "random"
                ):
                    findings.append(ctx.finding(
                        self.id, node,
                        f"`{'.'.join(chain)}(...)` constructs an unrouted "
                        "stream; use util/randomness.py "
                        "(RandomRouter / stream / fallback_rng)",
                    ))
                elif len(chain) == 1 and chain[0] in direct_names:
                    findings.append(ctx.finding(
                        self.id, node,
                        f"`{chain[0]}(...)` (imported from numpy.random) "
                        "constructs an unrouted stream",
                    ))
        return findings


class WallClockRule(Rule):
    """Wall-clock reads inside engine modules.

    Engine behavior may depend only on simulated time; real-clock reads
    make replay (and the journal-replay durability property) diverge.
    Duration probes (``perf_counter``) are allowed — they measure the
    run, they don't steer it.
    """

    id = "wall-clock"
    summary = "wall-clock read in a deterministic engine path"

    _BANNED: Tuple[Tuple[str, ...], ...] = (
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "localtime"),
        ("time", "gmtime"),
        ("time", "ctime"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("date", "today"),
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.config.in_scope(ctx.rel, ctx.config.engine_scope):
            return ()
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if chain is None:
                continue
            if any(chain[-len(b):] == b for b in self._BANNED if len(chain) >= len(b)):
                findings.append(ctx.finding(
                    self.id, node,
                    f"`{'.'.join(chain)}()` reads the wall clock inside an "
                    "engine path; engine state may depend only on "
                    "simulated time",
                ))
        return findings


class SetIterationRule(Rule):
    """Iteration over unordered sets in functions that draw randomness
    or record operations.

    ``set`` iteration order is salted per process; feeding it into RNG
    draws or :class:`OperationLog` records silently breaks seeded
    record identity.  Iterate a sorted copy (or keep an ordered
    structure) instead.
    """

    id = "set-iteration"
    summary = "unordered-set iteration feeding RNG draws or op records"

    _RECORD_ATTRS = ("journal", "log", "logs", "records", "anycasts", "multicasts")

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.config.in_scope(ctx.rel, ctx.config.engine_scope):
            return ()
        findings: List[Finding] = []
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._touches_rng_or_records(func):
                continue
            for node in ast.walk(func):
                iters: List[ast.expr] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    reason = self._set_expression(it)
                    if reason is not None:
                        findings.append(ctx.finding(
                            self.id, it,
                            f"iterating {reason} in a function that "
                            "draws randomness or records operations; "
                            "iterate `sorted(...)` instead",
                        ))
        return findings

    def _touches_rng_or_records(self, func: ast.AST) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Name) and node.id == "rng":
                return True
            if isinstance(node, ast.Attribute) and node.attr == "rng":
                return True
            if isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if chain and len(chain) >= 2 and chain[-1] in ("append", "record"):
                    if chain[-2] in self._RECORD_ATTRS:
                        return True
        return False

    def _set_expression(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.Call):
            chain = attribute_chain(node.func)
            if chain == ("set",) or chain == ("frozenset",):
                return f"`{chain[0]}(...)`"
            # x.intersection(...) / x.union(...) etc. return sets too,
            # but only flag the unambiguous constructors and .keys() on
            # set-typed dicts is indistinguishable — keep it precise.
        return None
