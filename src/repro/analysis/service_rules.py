"""Service-layer discipline rules: lock coverage and journal coverage.

Both are *project* rules — they need every service module at once,
because the thing being verified is reachability: a mutating method
with no lock of its own is fine exactly when every call site holds the
lock for it (the orchestrator's ``run_command`` pattern).

**lock-discipline** — for each class that creates a ``threading.Lock``/
``RLock`` attribute in ``__init__`` (a *guarded* class), every method
that mutates ``self`` state must either

* acquire a lock itself (``with self._lock``, ``with session.lock``,
  ``….lock.acquire(…)``), or
* be reachable only from lock-holding contexts: lock-acquiring
  functions, ``__init__``/classmethod constructors (the instance is not
  yet published to other threads), or callables passed to a configured
  lock entry point (:attr:`LintConfig.lock_entrypoints`, by default
  ``run_command``, which runs its function argument under the session
  lock).

Reachability is a fixpoint over the intra-package call graph, matched
by method *name* (the honest limit of name-based static analysis; two
same-named methods share a verdict).

**journal-coverage** — for each class that owns a ``self.journal`` list,
every method that mutates simulation state (``….run(plan)``,
``….run_until(…)``, ``….step()``, or appends to ``self.logs``) must
append a journal entry somewhere in its intra-class call closure —
otherwise a replayed journal silently diverges from the live run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.base import ModuleContext, Rule, attribute_chain
from repro.analysis.findings import Finding

__all__ = ["LockDisciplineRule", "JournalCoverageRule"]

#: attribute names that read as locks when acquired via ``with``/``acquire``
_LOCK_NAME_HINTS = ("lock", "_lock")

_MUTATING_CALLS = (
    "append", "extend", "insert", "remove", "pop", "clear", "update",
    "add", "discard", "setdefault", "popitem",
)

_ENGINE_MUTATORS = ("run", "run_until", "step")


@dataclass
class _FunctionInfo:
    key: str  # module-rel + qualname, unique
    name: str  # bare name ("advance", "<lambda>")
    node: ast.AST
    ctx: ModuleContext
    cls: Optional[str]  # owning class name, if a method
    is_constructor: bool = False
    protected: bool = False  # acquires a lock itself / constructor / entry arg
    tainted: bool = False  # reachable from a context that holds no lock
    mutated_attrs: Tuple[str, ...] = ()
    call_sites: List[str] = field(default_factory=list)  # keys of callers


def _is_lock_attr(name: str, known: Set[str]) -> bool:
    return name in known or any(name.endswith(h) for h in _LOCK_NAME_HINTS)


def _acquires_lock(func: ast.AST, known_locks: Set[str]) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.With) or isinstance(node, ast.AsyncWith):
            for item in node.items:
                chain = attribute_chain(item.context_expr)
                if chain and _is_lock_attr(chain[-1], known_locks):
                    return True
        elif isinstance(node, ast.Call):
            chain = attribute_chain(node.func)
            if (
                chain
                and len(chain) >= 2
                and chain[-1] == "acquire"
                and _is_lock_attr(chain[-2], known_locks)
            ):
                return True
    return False


def _self_mutations(func: ast.AST, lock_attrs: Set[str]) -> Tuple[str, ...]:
    """Names of ``self`` attributes this function mutates."""
    mutated: List[str] = []

    def target_attr(target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            if target.value.id == "self" and not _is_lock_attr(target.attr, lock_attrs):
                return target.attr
        return None

    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for t in targets:
                attr = target_attr(t)
                if attr is not None:
                    mutated.append(attr)
        elif isinstance(node, ast.Delete):
            for t in node.targets:
                attr = target_attr(t)
                if attr is not None:
                    mutated.append(attr)
        elif isinstance(node, ast.Call):
            chain = attribute_chain(node.func)
            if (
                chain
                and len(chain) >= 3
                and chain[0] == "self"
                and chain[-1] in _MUTATING_CALLS
            ):
                mutated.append(chain[1])
    return tuple(dict.fromkeys(mutated))


class _ServiceModel:
    """Shared structure: functions, guarded classes, call graph."""

    def __init__(self, contexts: List[ModuleContext]):
        self.contexts = [
            ctx
            for ctx in contexts
            if ctx.config.in_scope(ctx.rel, ctx.config.service_modules)
        ]
        self.lock_attrs: Dict[str, Set[str]] = {}  # class -> lock attr names
        self.journal_classes: Set[str] = set()
        self.functions: Dict[str, _FunctionInfo] = {}
        self._by_name: Dict[str, List[_FunctionInfo]] = {}
        self._entry_protected_names: Set[str] = set()
        for ctx in self.contexts:
            self._scan_classes(ctx)
        known_locks = set().union(*self.lock_attrs.values()) if self.lock_attrs else set()
        self.known_locks = known_locks
        for ctx in self.contexts:
            self._collect_functions(ctx)
        for ctx in self.contexts:
            self._collect_entry_args(ctx)
        self._collect_call_sites()
        self._fixpoint()

    # -- discovery -----------------------------------------------------
    def _scan_classes(self, ctx: ModuleContext) -> None:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            locks: Set[str] = set()
            has_journal = False
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name != "__init__":
                    continue
                for stmt in ast.walk(item):
                    if not isinstance(stmt, ast.Assign):
                        continue
                    for target in stmt.targets:
                        if not (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            continue
                        if isinstance(stmt.value, ast.Call):
                            chain = attribute_chain(stmt.value.func)
                            if chain and chain[-1] in ("Lock", "RLock"):
                                locks.add(target.attr)
                        if target.attr == "journal":
                            has_journal = True
            if locks:
                self.lock_attrs[node.name] = locks
            if has_journal:
                self.journal_classes.add(node.name)

    def _collect_functions(self, ctx: ModuleContext) -> None:
        model = self

        class Collector(ast.NodeVisitor):
            def __init__(self):
                self.class_stack: List[str] = []
                self.counter = 0

            def visit_ClassDef(self, node: ast.ClassDef) -> None:
                self.class_stack.append(node.name)
                self.generic_visit(node)
                self.class_stack.pop()

            def _add(self, node, name: str) -> None:
                cls = self.class_stack[-1] if self.class_stack else None
                self.counter += 1
                is_ctor = False
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    is_ctor = name == "__init__" or any(
                        isinstance(d, ast.Name) and d.id == "classmethod"
                        for d in node.decorator_list
                    )
                info = _FunctionInfo(
                    key=f"{ctx.rel}:{self.counter}:{name}",
                    name=name,
                    node=node,
                    ctx=ctx,
                    cls=cls,
                    is_constructor=is_ctor,
                )
                info.protected = is_ctor or _acquires_lock(node, model.known_locks)
                lock_attrs = model.lock_attrs.get(cls or "", set())
                info.mutated_attrs = _self_mutations(node, lock_attrs)
                model.functions[info.key] = info
                model._by_name.setdefault(name, []).append(info)

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                self._add(node, node.name)
                self.generic_visit(node)

            def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
                self._add(node, node.name)
                self.generic_visit(node)

            def visit_Lambda(self, node: ast.Lambda) -> None:
                self._add(node, "<lambda>")
                self.generic_visit(node)

        Collector().visit(ctx.tree)

    def _collect_entry_args(self, ctx: ModuleContext) -> None:
        """Callables handed to a lock entry point run under the lock."""
        entrypoints = ctx.config.lock_entrypoints
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if not chain or chain[-1] not in entrypoints:
                continue
            for arg in node.args:
                if isinstance(arg, ast.Lambda):
                    info = self._info_for_node(arg, ctx)
                    if info is not None:
                        info.protected = True
                elif isinstance(arg, ast.Name):
                    self._entry_protected_names.add(arg.id)
                elif isinstance(arg, ast.Attribute):
                    self._entry_protected_names.add(arg.attr)
        for name in self._entry_protected_names:
            for info in self._by_name.get(name, []):
                info.protected = True

    def _info_for_node(self, node: ast.AST, ctx: ModuleContext) -> Optional[_FunctionInfo]:
        for info in self.functions.values():
            if info.node is node and info.ctx is ctx:
                return info
        return None

    def _collect_call_sites(self) -> None:
        """Attribute-call sites, attributed to their enclosing function."""
        for ctx in self.contexts:
            by_node = {
                id(info.node): info.key
                for info in self.functions.values()
                if info.ctx is ctx
            }
            enclosing: Dict[int, str] = {}  # id(node) -> enclosing function key

            def mark(root: ast.AST, key: str) -> None:
                for child in ast.iter_child_nodes(root):
                    child_key = by_node.get(id(child), key)
                    enclosing[id(child)] = child_key
                    mark(child, child_key)

            mark(ctx.tree, "<module>")
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                chain = attribute_chain(node.func)
                if not chain:
                    continue
                targets = self._by_name.get(chain[-1])
                if not targets:
                    continue
                caller = enclosing.get(id(node), "<module>")
                for info in targets:
                    info.call_sites.append(caller)

    def _fixpoint(self) -> None:
        """Propagate *taint* — reachability from lock-free contexts.

        Roots are the contexts that demonstrably hold no lock: module
        level, and unprotected functions nobody in the scanned modules
        calls (their callers, if any, are outside the analysis — we
        cannot prove they hold the lock).  Taint flows caller→callee
        and stops at any protected function.  This is a greatest-
        fixpoint formulation on purpose: mutually recursive commands
        whose only external callers are protected stay clean, which the
        least-fixpoint "safe" direction would deadlock on.
        """
        for info in self.functions.values():
            info.tainted = not info.protected and (
                not info.call_sites or "<module>" in info.call_sites
            )
        changed = True
        while changed:
            changed = False
            for info in self.functions.values():
                if info.tainted or info.protected:
                    continue
                if any(
                    caller != "<module>" and self.functions[caller].tainted
                    for caller in info.call_sites
                ):
                    info.tainted = True
                    changed = True

    # -- journal helpers ----------------------------------------------
    def self_calls(self, func: ast.AST) -> Set[str]:
        out: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if chain and len(chain) == 2 and chain[0] == "self":
                    out.add(chain[1])
        return out

    def appends_journal(self, func: ast.AST) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if chain and chain[-2:] == ("journal", "append"):
                    return True
        return False

    def mutates_engine_state(self, func: ast.AST) -> Optional[str]:
        """A short description of the first engine mutation, or None."""
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if not chain:
                continue
            if chain[:2] == ("self", "logs") and chain[-1] in _MUTATING_CALLS:
                return "self.logs." + chain[-1]
            if (
                len(chain) >= 2
                and chain[-1] in _ENGINE_MUTATORS
                and not (len(chain) == 2 and chain[0] == "self")
            ):
                return ".".join(chain)
        return None


class LockDisciplineRule(Rule):
    id = "lock-discipline"
    summary = "guarded-class method mutates state without the lock"

    def check_project(self, contexts: List[ModuleContext]) -> Iterable[Finding]:
        model = _ServiceModel(contexts)
        findings: List[Finding] = []
        for info in model.functions.values():
            if info.cls not in model.lock_attrs:
                continue
            if info.is_constructor or not info.mutated_attrs:
                continue
            if not info.tainted:
                continue
            locks = ", ".join(sorted(model.lock_attrs[info.cls]))
            attrs = ", ".join(f"self.{a}" for a in info.mutated_attrs)
            reason = (
                "has call sites outside lock-holding contexts"
                if info.call_sites
                else "has no observed lock-holding caller"
            )
            findings.append(info.ctx.finding(
                self.id, info.node.lineno,
                f"{info.cls}.{info.name} mutates {attrs} without acquiring "
                f"{locks} and {reason}",
                column=info.node.col_offset,
            ))
        return findings


class JournalCoverageRule(Rule):
    id = "journal-coverage"
    summary = "state-mutating session command skips the journal"

    def check_project(self, contexts: List[ModuleContext]) -> Iterable[Finding]:
        model = _ServiceModel(contexts)
        findings: List[Finding] = []
        by_class: Dict[str, List[_FunctionInfo]] = {}
        for info in model.functions.values():
            if info.cls in model.journal_classes and isinstance(
                info.node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                by_class.setdefault(info.cls, []).append(info)
        for cls, methods in by_class.items():
            journaling = {m.name for m in methods if model.appends_journal(m.node)}
            calls = {m.name: model.self_calls(m.node) for m in methods}
            for info in methods:
                if info.is_constructor:
                    continue
                mutation = model.mutates_engine_state(info.node)
                if mutation is None:
                    continue
                if self._reaches_journal(info.name, journaling, calls):
                    continue
                findings.append(info.ctx.finding(
                    self.id, info.node.lineno,
                    f"{cls}.{info.name} mutates simulation state "
                    f"(`{mutation}`) but never appends to self.journal — "
                    "journal replay would diverge",
                    column=info.node.col_offset,
                ))
        return findings

    def _reaches_journal(
        self, name: str, journaling: Set[str], calls: Dict[str, Set[str]]
    ) -> bool:
        seen: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            if current in journaling:
                return True
            frontier.extend(calls.get(current, ()))
        return False
