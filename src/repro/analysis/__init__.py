"""avmemlint — project-specific static analysis for the AVMEM repo.

An AST-based invariant checker (``repro lint``) that makes the repo's
*dynamically* enforced properties machine-checked at review time:

* **determinism** — all randomness routes through
  :class:`~repro.util.randomness.RandomRouter` streams; no wall-clock
  reads or unordered-set iteration in engine paths
  (``random-module``, ``np-random``, ``wall-clock``, ``set-iteration``);
* **row-space hot loops** — per-node Python loops in hot modules are
  enumerated as the 1M-node burn-down list (``hot-loop``);
* **service lock discipline** — mutating methods of lock-guarded
  service classes hold the session lock or are only reachable from
  lock-holding callers (``lock-discipline``);
* **journal coverage** — state-mutating session commands append to the
  command journal, keeping journal-replay durability exact
  (``journal-coverage``).

Existing debt lives in the committed baseline (``lint-baseline.json``);
CI gates on *new* findings and on stale baseline entries.  See
``docs/static-analysis.md``.
"""

from repro.analysis.base import DEFAULT_CONFIG, LintConfig, ModuleContext, Rule
from repro.analysis.baseline import Baseline, BaselineComparison
from repro.analysis.findings import Finding, Suppression, parse_suppressions
from repro.analysis.runner import (
    build_registry,
    compare_to_baseline,
    render_json,
    render_text,
    run_lint,
)

__all__ = [
    "Baseline",
    "BaselineComparison",
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "ModuleContext",
    "Rule",
    "Suppression",
    "build_registry",
    "compare_to_baseline",
    "parse_suppressions",
    "render_json",
    "render_text",
    "run_lint",
]
