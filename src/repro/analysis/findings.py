"""Findings and inline suppressions for avmemlint.

A :class:`Finding` is one rule violation anchored to a source line; its
:meth:`~Finding.fingerprint` deliberately excludes the line *number* so
the committed baseline survives unrelated edits above a flagged line —
only the rule, file, enclosing symbol, and the flagged statement's text
identify a finding.

Suppressions are inline comments honored on the flagged line or the
line directly above it::

    self.rng = np.random.default_rng(0)  # avmemlint: disable=np-random -- test-only fallback

A reason (after ``--``) is mandatory: a suppression without one is
inert and itself reported as ``bad-suppression``; a suppression that
never matches a finding is reported as ``unused-suppression``.
"""

from __future__ import annotations

import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "BAD_SUPPRESSION",
    "Finding",
    "Suppression",
    "UNUSED_SUPPRESSION",
    "parse_suppressions",
]

#: meta rule ids emitted by the runner itself (not registered rules)
BAD_SUPPRESSION = "bad-suppression"
UNUSED_SUPPRESSION = "unused-suppression"

_SUPPRESS_RE = re.compile(
    r"#\s*avmemlint:\s*disable=([A-Za-z0-9_,\-]+)(?:\s*--\s*(.*\S))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at ``path:line``."""

    rule: str
    path: str  # forward-slash path relative to the lint root
    line: int
    column: int
    message: str
    symbol: str  # enclosing ``Class.method`` qualname, or "<module>"
    snippet: str  # the flagged source line, stripped

    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline."""
        payload = "|".join((self.rule, self.path, self.symbol, self.snippet))
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "symbol": self.symbol,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        where = f" [in {self.symbol}]" if self.symbol != "<module>" else ""
        return f"{self.path}:{self.line}: {self.rule}{where} {self.message}"

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.rule)


@dataclass
class Suppression:
    """One parsed ``# avmemlint: disable=…`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: Optional[str]
    used: bool = field(default=False, compare=False)

    def matches(self, rule: str) -> bool:
        return self.reason is not None and rule in self.rules


def parse_suppressions(source: str) -> List[Suppression]:
    """Extract suppression comments via the tokenizer.

    Tokenizing (rather than scanning raw lines) keeps string literals
    that merely *contain* the marker — docs, fixtures, this module —
    from being treated as live suppressions.
    """
    suppressions: List[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            rules = tuple(r for r in match.group(1).split(",") if r)
            reason = match.group(2)
            suppressions.append(
                Suppression(line=tok.start[0], rules=rules, reason=reason)
            )
    except tokenize.TokenError:  # pragma: no cover - unparseable tail
        pass
    return suppressions
