"""File walking, rule execution, suppression handling, and rendering.

:func:`run_lint` is the one entry point: it parses every ``.py`` file
under the given paths, runs the selected rules (module rules per file,
project rules once over the whole set), drops findings covered by a
justified inline suppression, and reports suppression hygiene
(``bad-suppression`` for reason-less markers, ``unused-suppression``
for markers that match nothing).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.base import (
    DEFAULT_CONFIG,
    LintConfig,
    ModuleContext,
    Rule,
    RuleRegistry,
)
from repro.analysis.baseline import Baseline, BaselineComparison
from repro.analysis.determinism import (
    NpRandomRule,
    RandomModuleRule,
    SetIterationRule,
    WallClockRule,
)
from repro.analysis.findings import BAD_SUPPRESSION, UNUSED_SUPPRESSION, Finding
from repro.analysis.hotloops import HotLoopRule
from repro.analysis.service_rules import JournalCoverageRule, LockDisciplineRule

__all__ = [
    "build_registry",
    "iter_source_files",
    "load_contexts",
    "render_json",
    "render_text",
    "run_lint",
]


def build_registry() -> RuleRegistry:
    registry = RuleRegistry()
    registry.register(RandomModuleRule())
    registry.register(NpRandomRule())
    registry.register(WallClockRule())
    registry.register(SetIterationRule())
    registry.register(HotLoopRule())
    registry.register(LockDisciplineRule())
    registry.register(JournalCoverageRule())
    return registry


def iter_source_files(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for name in sorted(filenames):
                if name.endswith(".py"):
                    out.append(os.path.join(dirpath, name))
    return sorted(dict.fromkeys(out))


def _rel_path(path: str, roots: Sequence[str]) -> str:
    """Path relative to the deepest containing root (lint scoping key)."""
    best: Optional[str] = None
    abspath = os.path.abspath(path)
    for root in roots:
        absroot = os.path.abspath(root)
        if os.path.isfile(absroot):
            absroot = os.path.dirname(absroot)
        if abspath == absroot or abspath.startswith(absroot + os.sep):
            if best is None or len(absroot) > len(best):
                best = absroot
    rel = os.path.relpath(abspath, best) if best else os.path.basename(abspath)
    return rel.replace(os.sep, "/")


def load_contexts(
    paths: Sequence[str], config: LintConfig = DEFAULT_CONFIG
) -> Tuple[List[ModuleContext], List[Finding]]:
    """Parse every source file; unparseable files become findings."""
    contexts: List[ModuleContext] = []
    errors: List[Finding] = []
    for path in iter_source_files(paths):
        rel = _rel_path(path, paths)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            contexts.append(ModuleContext(path, rel, source, config))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            errors.append(Finding(
                rule="parse-error",
                path=rel,
                line=int(line),
                column=0,
                message=f"cannot analyze: {type(exc).__name__}: {exc}",
                symbol="<module>",
                snippet="",
            ))
    return contexts, errors


def _apply_suppressions(
    contexts: List[ModuleContext], findings: List[Finding]
) -> List[Finding]:
    """Drop suppressed findings; emit suppression-hygiene findings."""
    by_rel: Dict[str, ModuleContext] = {ctx.rel: ctx for ctx in contexts}
    kept: List[Finding] = []
    for finding in findings:
        ctx = by_rel.get(finding.path)
        suppressed = False
        if ctx is not None:
            for supp in ctx.suppressions:
                if supp.line in (finding.line, finding.line - 1) and supp.matches(
                    finding.rule
                ):
                    supp.used = True
                    suppressed = True
                    break
        if not suppressed:
            kept.append(finding)
    for ctx in contexts:
        for supp in ctx.suppressions:
            if supp.reason is None:
                kept.append(ctx.finding(
                    BAD_SUPPRESSION, supp.line,
                    "suppression without a reason is inert; write "
                    "`# avmemlint: disable=RULE -- reason`",
                ))
            elif not supp.used:
                kept.append(ctx.finding(
                    UNUSED_SUPPRESSION, supp.line,
                    f"suppression for {', '.join(supp.rules)} matches no "
                    "finding; remove it",
                ))
    return kept


def run_lint(
    paths: Sequence[str],
    config: LintConfig = DEFAULT_CONFIG,
    rules: Optional[Sequence[str]] = None,
    registry: Optional[RuleRegistry] = None,
) -> List[Finding]:
    """Lint ``paths``; returns suppression-filtered, sorted findings."""
    registry = registry if registry is not None else build_registry()
    selected = registry.select(rules)
    contexts, findings = load_contexts(paths, config)
    for rule in selected:
        for ctx in contexts:
            findings.extend(rule.check_module(ctx))
        findings.extend(rule.check_project(contexts))
    findings = _apply_suppressions(contexts, findings)
    return sorted(findings, key=Finding.sort_key)


def render_text(
    comparison: BaselineComparison,
    show_baselined: bool = True,
) -> str:
    """Human-readable report: new findings first, then known debt."""
    lines: List[str] = []
    if comparison.new:
        lines.append(f"{len(comparison.new)} new finding(s):")
        lines.extend(f"  {f.render()}" for f in comparison.new)
    if comparison.baselined:
        if show_baselined:
            lines.append(f"{len(comparison.baselined)} baselined finding(s):")
            lines.extend(f"  {f.render()}" for f in comparison.baselined)
        else:
            lines.append(f"{len(comparison.baselined)} baselined finding(s) (known debt)")
    if comparison.stale:
        lines.append(
            f"{len(comparison.stale)} stale baseline entr"
            f"{'y' if len(comparison.stale) == 1 else 'ies'} "
            "(debt paid down — regenerate with --write-baseline):"
        )
        lines.extend(
            "  {rule} {path} [{symbol}] x{missing}: {snippet}".format(**entry)
            for entry in comparison.stale
        )
    if not (comparison.new or comparison.baselined or comparison.stale):
        lines.append("no findings")
    return "\n".join(lines)


def render_json(comparison: BaselineComparison) -> str:
    payload = {
        "new": [f.as_dict() for f in comparison.new],
        "baselined": [f.as_dict() for f in comparison.baselined],
        "stale": comparison.stale,
        "counts": {
            "new": len(comparison.new),
            "baselined": len(comparison.baselined),
            "stale": len(comparison.stale),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def compare_to_baseline(
    findings: List[Finding], baseline: Optional[Baseline]
) -> BaselineComparison:
    return (baseline or Baseline.empty()).compare(findings)
