"""The committed findings baseline: tracked debt, not ignored debt.

The baseline maps finding fingerprints (line-number independent; see
:meth:`~repro.analysis.findings.Finding.fingerprint`) to occurrence
counts.  Comparing a run against it splits findings three ways:

* **new** — fingerprints absent from the baseline, or present with more
  occurrences than recorded.  CI gates on these (``--fail-on-new``).
* **baselined** — known debt, reported but not failing.
* **stale** — baseline entries the tree no longer produces.  Paid-down
  debt must be *removed* from the baseline (``--write-baseline``), so
  the burn-down list stays honest (``--fail-on-stale``).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.findings import Finding

__all__ = ["Baseline", "BaselineComparison", "BASELINE_FORMAT"]

BASELINE_FORMAT = "avmemlint-baseline-v1"


@dataclass
class BaselineComparison:
    new: List[Finding]
    baselined: List[Finding]
    stale: List[Dict[str, object]]  # baseline entries no longer produced


class Baseline:
    """Fingerprint → {entry metadata, count} with exact JSON round-trip."""

    def __init__(self, entries: Dict[str, Dict[str, object]]):
        self.entries = entries

    @classmethod
    def empty(cls) -> "Baseline":
        return cls({})

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        entries: Dict[str, Dict[str, object]] = {}
        for finding in sorted(findings, key=Finding.sort_key):
            fp = finding.fingerprint()
            if fp in entries:
                entries[fp]["count"] = int(entries[fp]["count"]) + 1
            else:
                entries[fp] = {
                    "rule": finding.rule,
                    "path": finding.path,
                    "symbol": finding.symbol,
                    "snippet": finding.snippet,
                    "count": 1,
                }
        return cls(entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        if payload.get("format") != BASELINE_FORMAT:
            raise ValueError(
                f"{path}: not an avmemlint baseline "
                f"(format {payload.get('format')!r})"
            )
        return cls(dict(payload.get("entries", {})))

    def save(self, path: str) -> None:
        payload = {"format": BASELINE_FORMAT, "entries": self.entries}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def compare(self, findings: List[Finding]) -> BaselineComparison:
        """Split ``findings`` into new vs baselined, and list stale debt.

        With ``k`` occurrences of a fingerprint baselined and ``m``
        produced, the first ``min(k, m)`` (in source order) count as
        baselined and the excess as new; a shortfall marks the entry
        stale.
        """
        ordered = sorted(findings, key=Finding.sort_key)
        seen: Counter = Counter()
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in ordered:
            fp = finding.fingerprint()
            allowance = int(self.entries.get(fp, {}).get("count", 0))
            if seen[fp] < allowance:
                baselined.append(finding)
            else:
                new.append(finding)
            seen[fp] += 1
        stale: List[Dict[str, object]] = []
        for fp, entry in sorted(self.entries.items()):
            produced = seen.get(fp, 0)
            count = int(entry.get("count", 0))
            if produced < count:
                stale.append({**entry, "fingerprint": fp, "missing": count - produced})
        return BaselineComparison(new=new, baselined=baselined, stale=stale)
