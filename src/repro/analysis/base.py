"""Rule plumbing: lint configuration, per-module context, rule protocol.

Rules come in two shapes:

* **module rules** implement :meth:`Rule.check_module` and see one file
  at a time (the determinism and hot-loop families);
* **project rules** implement :meth:`Rule.check_project` and see every
  scanned module together (the service lock/journal families, which
  need cross-file call sites to decide reachability).

Scoping is path-prefix based and entirely data-driven through
:class:`LintConfig`, so the test fixtures exercise every rule against
synthetic trees without touching the real package layout.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding, Suppression, parse_suppressions

__all__ = ["LintConfig", "ModuleContext", "Rule", "attribute_chain", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class LintConfig:
    """Where each rule family applies, relative to the lint root.

    Prefixes ending in ``/`` match directories; other entries match one
    file exactly.  An empty-string prefix matches everything (useful in
    fixture tests).
    """

    #: the only modules allowed to construct numpy generators directly
    randomness_modules: Tuple[str, ...] = ("util/randomness.py",)
    #: deterministic-engine modules: wall-clock reads and unordered-set
    #: iteration feeding RNG/log state are flagged here
    engine_scope: Tuple[str, ...] = (
        "simulation.py",
        "core/",
        "sim/",
        "ops/",
        "overlays/",
        "churn/",
        "scenarios/",
        "monitor/",
        "attacks/",
        "experiments/",
    )
    #: row-space hot modules: per-node Python loops are the 1M-node
    #: burn-down list
    hot_modules: Tuple[str, ...] = ("simulation.py", "ops/", "core/", "sim/")
    #: iterable names treated as population-sized in hot modules
    population_names: Tuple[str, ...] = (
        "nodes",
        "node_ids",
        "node_keys",
        "population",
        "descriptors",
    )
    #: threaded service modules checked for lock/journal discipline
    service_modules: Tuple[str, ...] = ("service/",)
    #: callables that execute a function argument under the session lock
    lock_entrypoints: Tuple[str, ...] = ("run_command",)

    def in_scope(self, rel: str, prefixes: Sequence[str]) -> bool:
        for prefix in prefixes:
            if prefix == "" or rel == prefix:
                return True
            if prefix.endswith("/") and rel.startswith(prefix):
                return True
        return False


DEFAULT_CONFIG = LintConfig()


def attribute_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``np.random.default_rng`` → ``("np", "random", "default_rng")``.

    Returns None when the expression is not a pure Name/Attribute chain
    (calls, subscripts, …), which no chain-based rule should match.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class _ScopeIndexer(ast.NodeVisitor):
    """Maps line numbers to enclosing ``Class.method`` qualnames."""

    def __init__(self):
        self.stack: List[str] = []
        self.spans: List[Tuple[int, int, str]] = []

    def _enter(self, node) -> None:
        self.stack.append(node.name)
        end = getattr(node, "end_lineno", node.lineno) or node.lineno
        self.spans.append((node.lineno, end, ".".join(self.stack)))
        self.generic_visit(node)
        self.stack.pop()

    visit_FunctionDef = _enter
    visit_AsyncFunctionDef = _enter
    visit_ClassDef = _enter


class ModuleContext:
    """One parsed source file plus its lint metadata."""

    def __init__(self, path: str, rel: str, source: str, config: LintConfig):
        self.path = path
        self.rel = rel.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.config = config
        self.suppressions: List[Suppression] = parse_suppressions(source)
        indexer = _ScopeIndexer()
        indexer.visit(self.tree)
        # innermost scope wins: sort spans so later (narrower) entries
        # override earlier ones during lookup
        self._spans = sorted(indexer.spans, key=lambda s: (s[0], -s[1]))

    def symbol_at(self, line: int) -> str:
        best = "<module>"
        for start, end, name in self._spans:
            if start <= line <= end:
                best = name
        return best

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self, rule: str, node_or_line, message: str, column: Optional[int] = None
    ) -> Finding:
        if isinstance(node_or_line, int):
            line, col = node_or_line, 0 if column is None else column
        else:
            line = node_or_line.lineno
            col = node_or_line.col_offset if column is None else column
        return Finding(
            rule=rule,
            path=self.rel,
            line=line,
            column=col,
            message=message,
            symbol=self.symbol_at(line),
            snippet=self.line_text(line),
        )


class Rule:
    """Base class; subclasses set :attr:`id` and :attr:`summary`."""

    id: str = ""
    summary: str = ""

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        return ()

    def check_project(self, contexts: List[ModuleContext]) -> Iterable[Finding]:
        return ()


@dataclass
class RuleRegistry:
    """Ordered rule catalogue keyed by rule id."""

    rules: Dict[str, Rule] = field(default_factory=dict)

    def register(self, rule: Rule) -> Rule:
        if not rule.id:
            raise ValueError(f"rule {type(rule).__name__} has no id")
        if rule.id in self.rules:
            raise ValueError(f"duplicate rule id {rule.id!r}")
        self.rules[rule.id] = rule
        return rule

    def select(self, ids: Optional[Sequence[str]] = None) -> List[Rule]:
        if ids is None:
            return list(self.rules.values())
        unknown = [i for i in ids if i not in self.rules]
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(self.rules))}"
            )
        return [self.rules[i] for i in ids]
