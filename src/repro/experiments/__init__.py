"""Experiment harness: scales, snapshots, reports, per-figure drivers."""

from repro.experiments.figures import ALL_FIGURES
from repro.experiments.harness import SCALES, ExperimentScale, build_simulation, get_scale
from repro.experiments.report import FigureResult, format_cdf_summary, format_table
from repro.experiments.snapshot import OverlaySnapshot, take_snapshot

__all__ = [
    "ALL_FIGURES",
    "SCALES",
    "ExperimentScale",
    "build_simulation",
    "get_scale",
    "FigureResult",
    "format_table",
    "format_cdf_summary",
    "OverlaySnapshot",
    "take_snapshot",
]
