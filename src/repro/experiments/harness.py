"""Shared experiment scaffolding.

Every figure driver accepts a ``scale`` — ``"full"`` reproduces the
paper's setup (1442 hosts, 7-day trace, 24 h warm-up, 5 runs × 50
messages); ``"small"`` is a fast configuration for smoke tests and CI.
:func:`build_simulation` centralizes the mapping so figures stay
declarative, and accepts a ``scenario`` name so any registered churn/
workload scenario (:mod:`repro.scenarios`) can drive the same harness.
:func:`run_scenario` is the one-call driver the ``repro scenario`` CLI
and the CI smoke job use: build, warm up, run the spec's operation
workload, and report metrics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import AvmemConfig
from repro.sim.metrics import MetricsRegistry
from repro.simulation import AvmemSimulation, SimulationSettings
from repro.telemetry import current as current_telemetry

__all__ = [
    "ExperimentScale",
    "SCALES",
    "build_simulation",
    "run_scenario",
    "ScenarioRunReport",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Size/effort knobs for one experiment tier."""

    name: str
    hosts: int
    epochs: int
    warmup: float
    settle: float
    runs: int
    messages_per_run: int
    attack_max_targets: int

    @property
    def total_messages(self) -> int:
        return self.runs * self.messages_per_run


SCALES: Dict[str, ExperimentScale] = {
    # The paper's setup: 1442 hosts / 7 days / 24 h warm-up / 5 x 50 msgs.
    # Warm-ups sit mid-epoch (boundary + 600 s) so measurements do not
    # coincide with the instant a cohort of trace sessions flips state.
    "full": ExperimentScale(
        name="full",
        hosts=1442,
        epochs=504,
        warmup=87000.0,
        settle=7200.0,
        runs=5,
        messages_per_run=50,
        attack_max_targets=200,
    ),
    # Mid-size: same shape, ~4x cheaper (benchmark default).
    "medium": ExperimentScale(
        name="medium",
        hosts=700,
        epochs=240,
        warmup=43800.0,
        settle=4800.0,
        runs=3,
        messages_per_run=25,
        attack_max_targets=120,
    ),
    # Smoke-test size.
    "small": ExperimentScale(
        name="small",
        hosts=220,
        epochs=96,
        warmup=24600.0,
        settle=2400.0,
        runs=2,
        messages_per_run=8,
        attack_max_targets=60,
    ),
}


def get_scale(scale: str) -> ExperimentScale:
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; pick from {sorted(SCALES)}") from None


def build_simulation(
    scale: str = "full",
    seed: int = 0,
    predicate_kind: str = "paper",
    config: Optional[AvmemConfig] = None,
    monitor_noise_std: float = 0.02,
    setup: bool = True,
    scenario: Optional[str] = None,
    **settings_overrides,
) -> AvmemSimulation:
    """Construct (and by default warm up) a simulation for one experiment.

    ``scenario`` names a registered :class:`~repro.scenarios.spec.ScenarioSpec`
    whose compiled churn timeline replaces the default Overnet-like
    trace; ``None`` keeps the paper's baseline workload.
    """
    tier = get_scale(scale)
    settings = SimulationSettings(
        hosts=tier.hosts,
        epochs=tier.epochs,
        seed=seed,
        scenario=scenario,
        config=config if config is not None else AvmemConfig(),
        predicate_kind=predicate_kind,
        monitor_noise_std=monitor_noise_std,
        **settings_overrides,
    )
    simulation = AvmemSimulation(settings)
    if setup:
        simulation.setup(warmup=tier.warmup, settle=tier.settle)
    return simulation


@dataclass(frozen=True)
class ScenarioRunReport:
    """Metrics from one scenario run through the harness."""

    scenario: str
    scale: str
    seed: int
    hosts: int
    online_at_start: int
    mean_lifetime_availability: float
    anycasts: int = 0
    anycasts_delivered: int = 0
    anycast_mean_hops: float = float("nan")
    anycast_mean_latency: float = float("nan")
    anycast_data_messages: int = 0
    multicasts: int = 0
    multicast_mean_reliability: float = float("nan")
    multicast_mean_spam_ratio: float = float("nan")
    build_seconds: float = 0.0
    workload_seconds: float = 0.0
    notes: List[str] = field(default_factory=list)
    #: per-metric distribution summaries (count/mean/median/p90/min/max)
    #: from the run's MetricsRegistry — inline so a report JSON carries
    #: the distribution shape, not just point estimates
    distributions: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: the columnar per-operation outcomes (not part of :meth:`as_dict`;
    #: export it separately via ``log.to_json()`` / ``log.to_csv()``)
    log: Optional[object] = field(default=None, compare=False, repr=False)

    @property
    def anycast_success_rate(self) -> float:
        return self.anycasts_delivered / self.anycasts if self.anycasts else float("nan")

    def as_dict(self) -> Dict[str, object]:
        """A json-serializable flat record (the CLI emits this).

        Undefined metrics (NaN — e.g. mean hops with zero deliveries)
        become ``None`` so the output is *strictly* valid JSON;
        ``json.dump`` would otherwise emit the bare ``NaN`` token, which
        strict parsers reject.
        """

        def scrub(value: object) -> object:
            if isinstance(value, float) and value != value:
                return None
            if isinstance(value, dict):
                return {k: scrub(v) for k, v in value.items()}
            return value

        return {key: scrub(value) for key, value in {
            "scenario": self.scenario,
            "scale": self.scale,
            "seed": self.seed,
            "hosts": self.hosts,
            "online_at_start": self.online_at_start,
            "mean_lifetime_availability": self.mean_lifetime_availability,
            "anycasts": self.anycasts,
            "anycasts_delivered": self.anycasts_delivered,
            "anycast_success_rate": self.anycast_success_rate,
            "anycast_mean_hops": self.anycast_mean_hops,
            "anycast_mean_latency": self.anycast_mean_latency,
            "anycast_data_messages": self.anycast_data_messages,
            "multicasts": self.multicasts,
            "multicast_mean_reliability": self.multicast_mean_reliability,
            "multicast_mean_spam_ratio": self.multicast_mean_spam_ratio,
            "build_seconds": self.build_seconds,
            "workload_seconds": self.workload_seconds,
            "notes": list(self.notes),
            "distributions": {
                name: dict(summary)
                for name, summary in sorted(self.distributions.items())
            },
        }.items()}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ScenarioRunReport":
        """Rebuild a report from :meth:`as_dict` output (``None`` →
        NaN for the scrubbed undefined metrics).  ``anycast_success_rate``
        is derived, so it is ignored on input; the operation ``log`` is
        not part of the flat record and comes back ``None``.
        """

        def unscrub(value: object) -> float:
            return float("nan") if value is None else float(value)

        return cls(
            scenario=str(payload["scenario"]),
            scale=str(payload["scale"]),
            seed=int(payload["seed"]),
            hosts=int(payload["hosts"]),
            online_at_start=int(payload["online_at_start"]),
            mean_lifetime_availability=unscrub(payload["mean_lifetime_availability"]),
            anycasts=int(payload["anycasts"]),
            anycasts_delivered=int(payload["anycasts_delivered"]),
            anycast_mean_hops=unscrub(payload["anycast_mean_hops"]),
            anycast_mean_latency=unscrub(payload["anycast_mean_latency"]),
            anycast_data_messages=int(payload["anycast_data_messages"]),
            multicasts=int(payload["multicasts"]),
            multicast_mean_reliability=unscrub(payload["multicast_mean_reliability"]),
            multicast_mean_spam_ratio=unscrub(payload["multicast_mean_spam_ratio"]),
            build_seconds=float(payload["build_seconds"]),
            workload_seconds=float(payload["workload_seconds"]),
            notes=list(payload.get("notes", ())),
            distributions={
                name: {k: unscrub(v) for k, v in summary.items()}
                for name, summary in dict(payload.get("distributions", {})).items()
            },
        )


def run_scenario(
    name: str,
    scale: str = "small",
    seed: int = 0,
    **sim_kwargs,
) -> ScenarioRunReport:
    """Build a simulation for scenario ``name``, execute the spec's
    workload as an :class:`~repro.ops.plan.OperationPlan`, and summarize
    the resulting :class:`~repro.ops.log.OperationLog`.

    This is the single entry point behind ``repro scenario run`` and the
    CI smoke job — a scenario that compiles, warms up, and pushes its
    workload through here is runnable end to end.
    """
    from repro.ops.log import OperationLog
    from repro.scenarios.registry import get_scenario

    spec = get_scenario(name)
    workload = spec.workload
    started = time.perf_counter()
    telemetry = current_telemetry()
    with telemetry.span("scenario.build"):
        simulation = build_simulation(
            scale=scale, seed=seed, scenario=name, **sim_kwargs
        )
    build_seconds = time.perf_counter() - started
    notes: List[str] = []
    online = len(simulation.online_ids())
    started = time.perf_counter()
    with telemetry.span("scenario.workload"):
        plan = workload.to_plan(name=f"{name}-workload")
        if plan is not None:
            log = simulation.ops.run(plan)
        else:
            log = OperationLog.builder().finalize()
    workload_seconds = time.perf_counter() - started
    anycasts = log.anycasts & log.launched
    multicasts = log.multicasts & log.launched
    skipped_anycasts = int((log.anycasts & ~log.launched).sum())
    skipped_multicasts = int((log.multicasts & ~log.launched).sum())
    if skipped_anycasts:
        notes.append(
            f"only {int(anycasts.sum())}/{workload.anycasts} anycasts launched "
            f"(no online initiator in band {workload.anycast_band!r} at times)"
        )
    if skipped_multicasts:
        notes.append(
            f"only {int(multicasts.sum())}/{workload.multicasts} multicasts "
            f"launched (no online initiator in band {workload.multicast_band!r})"
        )
    hops = log.hops_delivered(anycasts)
    latencies = log.latencies(anycasts)
    reliability = log.reliability_values(multicasts)
    spam = log.spam_ratio_values(multicasts)
    targets = simulation.trace.timeline.lifetime_availability_array()
    # The run's sample distributions, registered so the report carries
    # shape (median/p90/min/max), not just the means — and exported into
    # the active telemetry recorder so a --telemetry snapshot holds the
    # same summaries alongside the engine's phase spans.
    registry = MetricsRegistry()
    registry.distribution("anycast.hops").extend(hops)
    registry.distribution("anycast.latency_ms").extend(1000.0 * latencies)
    registry.distribution("multicast.reliability").extend(
        reliability[np.isfinite(reliability)]
    )
    registry.distribution("multicast.spam_ratio").extend(spam[np.isfinite(spam)])
    registry.distribution("population.lifetime_availability").extend(targets)
    registry.export(recorder=telemetry, prefix="scenario.")
    distributions = {
        name: registry.distribution(name).summary()
        for name in registry.distribution_names()
        if len(registry.distribution(name))
    }
    return ScenarioRunReport(
        scenario=name,
        scale=scale,
        seed=seed,
        hosts=simulation.settings.hosts,
        online_at_start=online,
        mean_lifetime_availability=float(targets.mean()),
        anycasts=int(anycasts.sum()),
        anycasts_delivered=int((log.delivered & anycasts).sum()),
        anycast_mean_hops=float(hops.mean()) if hops.size else float("nan"),
        anycast_mean_latency=float(latencies.mean()) if latencies.size else float("nan"),
        anycast_data_messages=int(log.transmissions[anycasts].sum()),
        multicasts=int(multicasts.sum()),
        multicast_mean_reliability=(
            float(reliability.mean()) if reliability.size else float("nan")
        ),
        multicast_mean_spam_ratio=float(spam.mean()) if spam.size else float("nan"),
        build_seconds=build_seconds,
        workload_seconds=workload_seconds,
        notes=notes,
        distributions=distributions,
        log=log,
    )


__all__.append("get_scale")
