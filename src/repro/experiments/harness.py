"""Shared experiment scaffolding.

Every figure driver accepts a ``scale`` — ``"full"`` reproduces the
paper's setup (1442 hosts, 7-day trace, 24 h warm-up, 5 runs × 50
messages); ``"small"`` is a fast configuration for smoke tests and CI.
:func:`build_simulation` centralizes the mapping so figures stay
declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import AvmemConfig
from repro.simulation import AvmemSimulation, SimulationSettings

__all__ = ["ExperimentScale", "SCALES", "build_simulation"]


@dataclass(frozen=True)
class ExperimentScale:
    """Size/effort knobs for one experiment tier."""

    name: str
    hosts: int
    epochs: int
    warmup: float
    settle: float
    runs: int
    messages_per_run: int
    attack_max_targets: int

    @property
    def total_messages(self) -> int:
        return self.runs * self.messages_per_run


SCALES: Dict[str, ExperimentScale] = {
    # The paper's setup: 1442 hosts / 7 days / 24 h warm-up / 5 x 50 msgs.
    # Warm-ups sit mid-epoch (boundary + 600 s) so measurements do not
    # coincide with the instant a cohort of trace sessions flips state.
    "full": ExperimentScale(
        name="full",
        hosts=1442,
        epochs=504,
        warmup=87000.0,
        settle=7200.0,
        runs=5,
        messages_per_run=50,
        attack_max_targets=200,
    ),
    # Mid-size: same shape, ~4x cheaper (benchmark default).
    "medium": ExperimentScale(
        name="medium",
        hosts=700,
        epochs=240,
        warmup=43800.0,
        settle=4800.0,
        runs=3,
        messages_per_run=25,
        attack_max_targets=120,
    ),
    # Smoke-test size.
    "small": ExperimentScale(
        name="small",
        hosts=220,
        epochs=96,
        warmup=24600.0,
        settle=2400.0,
        runs=2,
        messages_per_run=8,
        attack_max_targets=60,
    ),
}


def get_scale(scale: str) -> ExperimentScale:
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; pick from {sorted(SCALES)}") from None


def build_simulation(
    scale: str = "full",
    seed: int = 0,
    predicate_kind: str = "paper",
    config: Optional[AvmemConfig] = None,
    monitor_noise_std: float = 0.02,
    setup: bool = True,
    **settings_overrides,
) -> AvmemSimulation:
    """Construct (and by default warm up) a simulation for one experiment."""
    tier = get_scale(scale)
    settings = SimulationSettings(
        hosts=tier.hosts,
        epochs=tier.epochs,
        seed=seed,
        config=config if config is not None else AvmemConfig(),
        predicate_kind=predicate_kind,
        monitor_noise_std=monitor_noise_std,
        **settings_overrides,
    )
    simulation = AvmemSimulation(settings)
    if setup:
        simulation.setup(warmup=tier.warmup, settle=tier.settle)
    return simulation


__all__.append("get_scale")
