"""Overlay snapshot analytics — the microbenchmark figures (Figs 2-4).

A snapshot captures, for every *online* node at the current sim time:
its measured availability, its sliver sizes (total entries and
currently-online entries — the theory of Section 2.2 predicts the online
counts), the number of online candidates within ±ε (Fig 3's x-axis), and
the number of incoming vertical-sliver references (Fig 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core.ids import NodeId
from repro.core.predicates import SliverKind
from repro.simulation import AvmemSimulation

__all__ = ["OverlaySnapshot", "take_snapshot"]


@dataclass
class OverlaySnapshot:
    """Per-node overlay measurements at one instant."""

    time: float
    #: snapshot population (online nodes), fixed order
    nodes: List[NodeId] = field(default_factory=list)
    availability: Dict[NodeId, float] = field(default_factory=dict)
    hs_size: Dict[NodeId, int] = field(default_factory=dict)
    vs_size: Dict[NodeId, int] = field(default_factory=dict)
    hs_online: Dict[NodeId, int] = field(default_factory=dict)
    vs_online: Dict[NodeId, int] = field(default_factory=dict)
    #: online nodes within ±ε availability of the node (Fig 3 x-axis)
    hs_candidates: Dict[NodeId, int] = field(default_factory=dict)
    #: incoming VS references from other online nodes (Fig 4)
    incoming_vs: Dict[NodeId, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def online_count(self) -> int:
        return len(self.nodes)

    def availability_histogram(self, bins: int = 10) -> Tuple[np.ndarray, np.ndarray]:
        """Fig 2(a): counts of online nodes per availability bin."""
        values = np.array([self.availability[n] for n in self.nodes])
        return np.histogram(values, bins=bins, range=(0.0, 1.0))

    def _per_band(self, per_node: Dict[NodeId, int], width: float = 0.1) -> Dict[float, float]:
        """Mean of a per-node quantity per availability band."""
        sums: Dict[float, List[float]] = {}
        for node in self.nodes:
            band = min(int(self.availability[node] / width), int(1.0 / width) - 1) * width
            sums.setdefault(round(band, 10), []).append(per_node[node])
        return {band: float(np.mean(vals)) for band, vals in sorted(sums.items())}

    def hs_by_band(self, online_only: bool = True) -> Dict[float, float]:
        """Fig 2(b): mean HS size per availability band."""
        return self._per_band(self.hs_online if online_only else self.hs_size)

    def vs_by_band(self, online_only: bool = True) -> Dict[float, float]:
        """Fig 2(c): mean VS size per availability band."""
        return self._per_band(self.vs_online if online_only else self.vs_size)

    def incoming_vs_by_band(self) -> Dict[float, float]:
        """Fig 4: mean incoming-VS references per availability band."""
        return self._per_band(self.incoming_vs)

    def hs_scaling_points(self) -> List[Tuple[int, int]]:
        """Fig 3: (candidates within ±ε, HS size) per node."""
        return [(self.hs_candidates[n], self.hs_online[n]) for n in self.nodes]

    def hs_scaling_exponent(self) -> float:
        """Log-log slope of HS size vs candidate count (< 1 ⇒ sublinear).

        Points with zero coordinates are shifted by 1 to keep logs finite.
        """
        points = self.hs_scaling_points()
        xs = np.log(np.array([p[0] for p in points], dtype=float) + 1.0)
        ys = np.log(np.array([p[1] for p in points], dtype=float) + 1.0)
        if xs.size < 2 or float(np.var(xs)) == 0.0:
            return float("nan")
        slope = float(np.cov(xs, ys, bias=True)[0, 1] / np.var(xs))
        return slope


def take_snapshot(simulation: AvmemSimulation) -> OverlaySnapshot:
    """Measure the overlay over the currently online population.

    The per-node ±ε candidate counts (Fig 3's x-axis) are computed as one
    sorted-array pass instead of an O(N²) comparison loop, matching the
    array-backed overlay construction this feeds (Figs 2-4 drivers).
    """
    now = simulation.sim.now
    online_ids = simulation.online_ids()
    online_set = set(online_ids)
    epsilon = simulation.predicate.epsilon
    snapshot = OverlaySnapshot(time=now, nodes=list(online_ids))
    availability = {
        node: simulation.true_availability(node) for node in online_ids
    }
    snapshot.availability = availability
    values = np.array([availability[n] for n in online_ids])
    # Candidates within ±ε, minus self: count via two binary searches
    # over the sorted availabilities rather than an N×N comparison.
    sorted_values = np.sort(values)
    in_band = (
        np.searchsorted(sorted_values, values + epsilon, side="left")
        - np.searchsorted(sorted_values, values - epsilon, side="right")
    )
    incoming: Dict[NodeId, int] = {node: 0 for node in online_ids}
    for node_id, band_count in zip(online_ids, in_band):
        node = simulation.nodes[node_id]
        lists = node.lists
        snapshot.hs_size[node_id] = lists.horizontal_count
        snapshot.vs_size[node_id] = lists.vertical_count
        snapshot.hs_online[node_id] = sum(
            1 for e in lists.horizontal if e.node in online_set
        )
        vs_online = 0
        for entry in lists.vertical:
            if entry.node in online_set:
                vs_online += 1
                incoming[entry.node] += 1
        snapshot.vs_online[node_id] = vs_online
        snapshot.hs_candidates[node_id] = int(band_count) - 1  # exclude self
    snapshot.incoming_vs = incoming
    return snapshot
