"""Shared anycast experiment machinery for Figs 7-10."""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.harness import ExperimentScale
from repro.ops.results import AnycastRecord, AnycastStatus
from repro.simulation import AvmemSimulation

__all__ = ["AnycastVariant", "run_variant", "status_fractions", "PAPER_VARIANTS"]


class AnycastVariant:
    """(policy, selector) pair with the paper's display name."""

    def __init__(self, label: str, policy: str, selector: str):
        self.label = label
        self.policy = policy
        self.selector = selector


#: The four variants Figs 7-8 plot.
PAPER_VARIANTS: Tuple[AnycastVariant, ...] = (
    AnycastVariant("VS-only", "greedy", "vs"),
    AnycastVariant("HS+VS", "greedy", "hs+vs"),
    AnycastVariant("HS-only", "greedy", "hs"),
    AnycastVariant("sim-annealing", "anneal", "hs+vs"),
)


def run_variant(
    simulation: AvmemSimulation,
    tier: ExperimentScale,
    variant: AnycastVariant,
    initiator_band: str,
    target: Tuple[float, float],
    retry: Optional[int] = None,
) -> List[AnycastRecord]:
    """``runs × messages`` anycasts of one variant (fresh initiators)."""
    records: List[AnycastRecord] = []
    for __ in range(tier.runs):
        records.extend(
            simulation.run_anycast_batch(
                tier.messages_per_run,
                target,
                initiator_band,
                policy=variant.policy,
                selector=variant.selector,
                retry=retry,
            )
        )
    return records


def status_fractions(records: List[AnycastRecord]) -> Dict[str, float]:
    """Fraction of records per terminal status (Fig 9's bar groups)."""
    if not records:
        return {}
    counts = Counter(record.status for record in records)
    return {status: counts.get(status, 0) / len(records) for status in AnycastStatus.TERMINAL}


def mean_delivered_latency_ms(records: List[AnycastRecord]) -> float:
    latencies = [r.latency for r in records if r.delivered and r.latency is not None]
    if not latencies:
        return float("nan")
    return float(1000.0 * np.mean(latencies))


__all__.append("mean_delivered_latency_ms")
