"""Shared anycast experiment machinery for Figs 7-10.

Each figure cell is ``runs × messages`` anycasts of one
:class:`AnycastVariant` — expressed as one phase-staggered
:class:`~repro.ops.plan.OperationPlan` (each run's item replicates the
historical batch *launch schedule*: messages 2 s apart, a 30 s settle
gap before the next run) and executed through ``sim.ops.run``.  All
metric math happens on the columnar
:class:`~repro.ops.log.OperationLog`; no per-record Python loops remain
here.

One deliberate semantic difference from the per-batch drivers: records
are finalized once at plan end, so an operation still pending at its
own run's settle boundary that delivers during a *later* run now counts
DELIVERED instead of being frozen LOST.  An operation that delivers,
delivered; only multi-run straggler classification can differ from the
seed drivers (single-batch plans are record-identical — see the shim
equivalence tests).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.experiments.harness import ExperimentScale
from repro.ops.log import OperationLog
from repro.ops.plan import OperationItem, OperationPlan, OperationTiming
from repro.ops.spec import TargetSpec
from repro.simulation import AvmemSimulation

__all__ = [
    "AnycastVariant",
    "variant_plan",
    "run_variant",
    "status_fractions",
    "mean_delivered_latency_ms",
    "PAPER_VARIANTS",
]

#: the historical batch-driver schedule constants
ANYCAST_SPACING = 2.0
RUN_SETTLE = 30.0


class AnycastVariant:
    """(policy, selector) pair with the paper's display name."""

    def __init__(self, label: str, policy: str, selector: str):
        self.label = label
        self.policy = policy
        self.selector = selector


#: The four variants Figs 7-8 plot.
PAPER_VARIANTS: Tuple[AnycastVariant, ...] = (
    AnycastVariant("VS-only", "greedy", "vs"),
    AnycastVariant("HS+VS", "greedy", "hs+vs"),
    AnycastVariant("HS-only", "greedy", "hs"),
    AnycastVariant("sim-annealing", "anneal", "hs+vs"),
)


def variant_plan(
    tier: ExperimentScale,
    variant: AnycastVariant,
    initiator_band: str,
    target: Tuple[float, float],
    retry: Optional[int] = None,
) -> OperationPlan:
    """``runs × messages`` anycasts of one variant as a single plan."""
    spec = TargetSpec.range(*target)
    run_span = tier.messages_per_run * ANYCAST_SPACING + RUN_SETTLE
    items = tuple(
        OperationItem(
            kind="anycast",
            target=spec,
            count=tier.messages_per_run,
            band=initiator_band,
            policy=variant.policy,
            selector=variant.selector,
            retry=retry,
            timing=OperationTiming(
                mode="interval", spacing=ANYCAST_SPACING, phase=run * run_span
            ),
            label=f"run{run}",
        )
        for run in range(tier.runs)
    )
    return OperationPlan(
        items=items, settle=RUN_SETTLE, name=f"{variant.label}:{initiator_band}"
    )


def run_variant(
    simulation: AvmemSimulation,
    tier: ExperimentScale,
    variant: AnycastVariant,
    initiator_band: str,
    target: Tuple[float, float],
    retry: Optional[int] = None,
) -> OperationLog:
    """Execute one variant's plan; returns its columnar log."""
    return simulation.ops.run(
        variant_plan(tier, variant, initiator_band, target, retry=retry)
    )


def status_fractions(log: OperationLog) -> Dict[str, float]:
    """Fraction of launched operations per terminal status (Fig 9)."""
    return log.status_fractions()


def mean_delivered_latency_ms(log: OperationLog) -> float:
    """Mean stage-1 delivery latency in milliseconds (NaN if none)."""
    return log.mean_latency_ms()
