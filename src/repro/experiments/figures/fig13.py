"""Figure 13 — multicast reliability CDF.

Reliability = fraction of the nodes truly inside the target range (and
online) that received the multicast.  Paper: flooding above 90 %,
gossip around 70 % — the bandwidth saving of gossip trades against
reliability.
"""

from __future__ import annotations

from repro.experiments.figures._multicast_common import PAPER_SCENARIOS, run_scenario
from repro.experiments.harness import build_simulation, get_scale
from repro.experiments.report import FigureResult
from repro.util.mathx import quantile

__all__ = ["run"]


def run(scale: str = "full", seed: int = 0) -> FigureResult:
    """Regenerate Fig 13: reliability quantiles per scenario."""
    tier = get_scale(scale)
    simulation = build_simulation(scale=scale, seed=seed)
    result = FigureResult(
        figure_id="fig13",
        title="Multicast reliability CDF",
        headers=["scenario", "multicasts", "p10", "p50", "mean"],
    )
    import numpy as np

    for scenario in PAPER_SCENARIOS:
        log = run_scenario(simulation, tier, scenario)
        values = log.reliability_values()
        reliabilities = values[np.isfinite(values)].tolist()
        result.series[scenario.label] = reliabilities
        result.add_row(
            scenario.label,
            int(log.launched.sum()),
            quantile(reliabilities, 0.1),
            quantile(reliabilities, 0.5),
            float(np.mean(reliabilities)) if reliabilities else float("nan"),
        )
    result.add_note("paper: flooding > 0.90, gossip ~ 0.70")
    return result
