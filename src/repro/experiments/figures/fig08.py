"""Figure 8 — range anycast under increasingly harsh scenarios.

Anycasts from HIGH-availability initiators into three target ranges —
[0.85, 0.95] (easy), [0.44, 0.54], and [0.15, 0.25] (harsh: few or no
low-availability nodes online, drops en route).  Paper: delivery drops
with the target range; HS+VS is the best variant.
"""

from __future__ import annotations

from repro.experiments.figures._anycast_common import PAPER_VARIANTS, run_variant
from repro.experiments.harness import build_simulation, get_scale
from repro.experiments.report import FigureResult
from repro.ops.spec import InitiatorBand

__all__ = ["run", "TARGETS"]

TARGETS = ((0.85, 0.95), (0.44, 0.54), (0.15, 0.25))


def run(scale: str = "full", seed: int = 0) -> FigureResult:
    """Regenerate Fig 8: delivery fraction per (target range, variant) cell."""
    tier = get_scale(scale)
    simulation = build_simulation(scale=scale, seed=seed)
    result = FigureResult(
        figure_id="fig8",
        title="Range anycast delivery, HIGH initiators, harsher targets",
        headers=["target", "variant", "delivered_fraction"],
    )
    for target in TARGETS:
        for variant in PAPER_VARIANTS:
            log = run_variant(simulation, tier, variant, InitiatorBand.HIGH, target)
            result.add_row(str(target), variant.label, log.success_rate())
            result.series[f"{target}:{variant.label}"] = (
                log.delivered[log.launched].astype(float).tolist()
            )
    result.add_note(
        "paper: success falls as the target range drops; HS+VS best overall"
    )
    return result
