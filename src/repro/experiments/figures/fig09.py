"""Figure 9 — retried greedy anycast in a harsh environment.

Anycasts from HIGH initiators to [0.15, 0.25] with retried-greedy
forwarding (HS+VS), sweeping retry ∈ {2, 4, 8, 16}.  Reports the
delivered / TTL-expired / retry-expired fractions and the mean delivery
latency (per-hop latency U[20, 80] ms).  Paper: retry = 8 reaches the
plateau — 60 % delivery at an average 739 ms.

Two list-maintenance configurations are reported:

* **maintained** — our default hygiene (discovery handshakes, refresh
  evicts unresponsive neighbors): retries are rarely needed because
  lists stay mostly live.
* **stale (paper-like)** — liveness hygiene off, noisier monitoring:
  low-availability entries die in place, so the retry budget is exactly
  what stands between the message and a silent drop.  This is the
  configuration whose behaviour matches the paper's figure.
"""

from __future__ import annotations

from repro.core.config import AvmemConfig
from repro.experiments.figures._anycast_common import (
    AnycastVariant,
    mean_delivered_latency_ms,
    run_variant,
    status_fractions,
)
from repro.experiments.harness import build_simulation, get_scale
from repro.experiments.report import FigureResult
from repro.ops.results import AnycastStatus
from repro.ops.spec import InitiatorBand

__all__ = ["run", "RETRIES", "TARGET"]

RETRIES = (2, 4, 8, 16)
TARGET = (0.15, 0.25)
VARIANT = AnycastVariant("retried-greedy HS+VS", "retry-greedy", "hs+vs")

_CONFIGS = (
    ("maintained", dict(monitor_noise_std=0.02, config=AvmemConfig())),
    (
        "stale (paper-like)",
        dict(
            monitor_noise_std=0.05,
            config=AvmemConfig(refresh_liveness=False, discovery_liveness=False),
        ),
    ),
)


def run(
    scale: str = "full",
    seed: int = 0,
    predicate_kind: str = "paper",
    figure_id: str = "fig9",
) -> FigureResult:
    """Regenerate Fig 9: the retry sweep under both list-maintenance modes."""
    tier = get_scale(scale)
    title = "Retried greedy anycast, HIGH -> [0.15, 0.25]"
    if predicate_kind == "random":
        title += " (random overlay baseline)"
    result = FigureResult(
        figure_id=figure_id,
        title=title,
        headers=[
            "lists",
            "retry",
            "delivered",
            "ttl_expired",
            "retry_expired",
            "other_failed",
            "avg_latency_ms",
        ],
    )
    for config_label, overrides in _CONFIGS:
        simulation = build_simulation(
            scale=scale, seed=seed, predicate_kind=predicate_kind, **overrides
        )
        for retry in RETRIES:
            log = run_variant(
                simulation, tier, VARIANT, InitiatorBand.HIGH, TARGET, retry=retry
            )
            fractions = status_fractions(log)
            other = sum(
                fractions.get(status, 0.0)
                for status in AnycastStatus.TERMINAL
                if status
                not in (
                    AnycastStatus.DELIVERED,
                    AnycastStatus.TTL_EXPIRED,
                    AnycastStatus.RETRY_EXPIRED,
                )
            )
            result.add_row(
                config_label,
                retry,
                fractions.get(AnycastStatus.DELIVERED, 0.0),
                fractions.get(AnycastStatus.TTL_EXPIRED, 0.0),
                fractions.get(AnycastStatus.RETRY_EXPIRED, 0.0),
                other,
                mean_delivered_latency_ms(log),
            )
            result.series[f"{config_label}:retry={retry}:latency_ms"] = (
                (1000.0 * log.latencies()).tolist()
            )
    result.add_note(
        "paper (AVMEM overlay): retry=8 plateau, ~60% delivered, ~739 ms avg "
        "latency — compare the 'stale (paper-like)' rows"
    )
    return result
