"""Figure 6 — legitimate rejection rate.

Fraction of *valid* AVMEM in-neighbor relationships that the recipient
rejects because its availability view is stale or inconsistent, per
attacker-availability band, for cushion ∈ {0, 0.1}.  Paper: below 30 %
with no cushion, below 20 % with cushion 0.1 (≈ 1.25 expected tries to
get a message through).
"""

from __future__ import annotations

from repro.attacks.flooding import legitimate_rejection_experiment
from repro.experiments.harness import build_simulation, get_scale
from repro.experiments.report import FigureResult

__all__ = ["run"]

CUSHIONS = (0.0, 0.1)


def run(scale: str = "full", seed: int = 0, monitor_noise_std: float = 0.05) -> FigureResult:
    """Regenerate Fig 6: per-band legitimate-rejection rates for both cushions."""
    get_scale(scale)
    # More monitoring noise than the library default: this experiment
    # exists to exhibit estimate inconsistency (the paper's AVMON answers
    # are noisier than our default oracle).
    simulation = build_simulation(
        scale=scale, seed=seed, monitor_noise_std=monitor_noise_std
    )
    result = FigureResult(
        figure_id="fig6",
        title="Legitimate rejection rate for valid in-neighbor messages",
        headers=["cushion", "band", "reject_rate"],
    )
    for cushion in CUSHIONS:
        rates = legitimate_rejection_experiment(
            simulation.nodes,
            simulation.predicate,
            simulation.true_availability,
            cushion=cushion,
        )
        for band, rate in rates.rows():
            result.add_row(cushion, f"[{band:.1f},{band + 0.1:.1f})", rate)
        result.series[f"cushion={cushion}"] = list(rates.sender_rates.values())
        result.add_note(
            f"cushion={cushion}: overall reject rate {rates.overall:.3f}, "
            f"worst band {rates.max_band_rate:.3f} "
            f"(paper: < 0.30 at cushion=0, < 0.20 at cushion=0.1)"
        )
    return result
