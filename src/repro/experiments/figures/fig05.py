"""Figure 5 — flooding attack.

Fraction of peers that are *not* currently neighbors of a selfish node
but would accept its messages anyway (stale caches + monitoring noise),
averaged across 0.1-wide availability bands of the attacker, for
cushion ∈ {0, 0.1}.  The paper's headline: below 10 % regardless of the
attacker's availability (cushion = 0).
"""

from __future__ import annotations

from repro.attacks.flooding import flooding_attack_experiment
from repro.experiments.harness import build_simulation, get_scale
from repro.experiments.report import FigureResult

__all__ = ["run"]

CUSHIONS = (0.0, 0.1)


def run(scale: str = "full", seed: int = 0) -> FigureResult:
    """Regenerate Fig 5: per-band flooding-attack acceptance for both cushions."""
    tier = get_scale(scale)
    simulation = build_simulation(scale=scale, seed=seed)
    result = FigureResult(
        figure_id="fig5",
        title="Flooding attack: non-neighbors accepting a selfish node's messages",
        headers=["cushion", "band", "accept_rate"],
    )
    for cushion in CUSHIONS:
        rates = flooding_attack_experiment(
            simulation.nodes,
            simulation.predicate,
            simulation.true_availability,
            cushion=cushion,
            max_targets=tier.attack_max_targets,
            rng=simulation._router.get(f"fig5:{cushion}"),
        )
        for band, rate in rates.rows():
            result.add_row(cushion, f"[{band:.1f},{band + 0.1:.1f})", rate)
        result.series[f"cushion={cushion}"] = list(rates.sender_rates.values())
        result.add_note(
            f"cushion={cushion}: overall accept rate {rates.overall:.3f}, "
            f"worst band {rates.max_band_rate:.3f} "
            f"(paper, cushion=0: < 0.10 in every band)"
        )
    return result
