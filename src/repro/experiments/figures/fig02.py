"""Figure 2 — system snapshot of online nodes.

(a) availability distribution of the online population;
(b) horizontal-sliver sizes vs availability (median grows with av);
(c) vertical-sliver sizes vs availability (median uncorrelated).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import build_simulation, get_scale
from repro.experiments.report import FigureResult
from repro.experiments.snapshot import take_snapshot

__all__ = ["run"]


def run(scale: str = "full", seed: int = 0) -> FigureResult:
    """Regenerate Fig 2: snapshot histogram plus per-band HS/VS sizes."""
    get_scale(scale)
    simulation = build_simulation(scale=scale, seed=seed)
    snapshot = take_snapshot(simulation)
    result = FigureResult(
        figure_id="fig2",
        title="System snapshot: online-node availability, HS and VS sizes",
        headers=["band", "online_nodes", "hs_mean", "vs_mean"],
    )
    counts, edges = snapshot.availability_histogram(bins=10)
    hs_band = snapshot.hs_by_band()
    vs_band = snapshot.vs_by_band()
    for i, count in enumerate(counts):
        band = round(float(edges[i]), 2)
        result.add_row(
            f"[{band:.1f},{band + 0.1:.1f})",
            int(count),
            hs_band.get(band, float("nan")),
            vs_band.get(band, float("nan")),
        )
    result.series["availability"] = [snapshot.availability[n] for n in snapshot.nodes]
    result.series["hs_size"] = [float(snapshot.hs_online[n]) for n in snapshot.nodes]
    result.series["vs_size"] = [float(snapshot.vs_online[n]) for n in snapshot.nodes]
    result.add_note(f"online nodes at snapshot: {snapshot.online_count} (paper: 442)")
    vs_values = [v for v in vs_band.values() if v == v]
    if vs_values:
        spread = max(vs_values) - min(vs_values)
        result.add_note(
            f"VS mean across bands: {np.mean(vs_values):.1f} "
            f"(band spread {spread:.1f}; paper: uncorrelated with availability)"
        )
    return result
