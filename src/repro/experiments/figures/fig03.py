"""Figure 3 — horizontal sliver scaling.

HS size at a node grows **sublinearly** with the number of online nodes
within ±ε of the node's availability (the II.B log-over-min rule at
work).  We report the per-candidate-decile mean HS size plus the log-log
slope (< 1 ⇒ sublinear).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.experiments.harness import build_simulation, get_scale
from repro.experiments.report import FigureResult
from repro.experiments.snapshot import take_snapshot

__all__ = ["run"]


def run(scale: str = "full", seed: int = 0) -> FigureResult:
    """Regenerate Fig 3: HS size vs candidate count with sublinearity fit."""
    get_scale(scale)
    simulation = build_simulation(scale=scale, seed=seed)
    snapshot = take_snapshot(simulation)
    points = snapshot.hs_scaling_points()
    result = FigureResult(
        figure_id="fig3",
        title="Horizontal sliver scaling: HS size vs candidates within ±ε",
        headers=["candidates_bucket", "nodes", "hs_mean", "hs_max"],
    )
    buckets: Dict[int, List[int]] = {}
    if points:
        max_candidates = max(p[0] for p in points)
        bucket_width = max(1, int(np.ceil((max_candidates + 1) / 8)))
        for candidates, hs in points:
            buckets.setdefault(candidates // bucket_width, []).append(hs)
        for bucket in sorted(buckets):
            values = buckets[bucket]
            lo = bucket * bucket_width
            result.add_row(
                f"[{lo},{lo + bucket_width})",
                len(values),
                float(np.mean(values)),
                max(values),
            )
    slope = snapshot.hs_scaling_exponent()
    result.series["candidates"] = [float(p[0]) for p in points]
    result.series["hs_size"] = [float(p[1]) for p in points]
    result.add_note(
        f"log-log slope of HS size vs candidate count: {slope:.3f} "
        "(sublinear growth requires < 1; paper reports sublinear)"
    )
    return result
