"""One driver per evaluation figure (Figs 2-13).

Each module exposes ``run(scale="full", seed=0) -> FigureResult``.
:data:`ALL_FIGURES` maps figure ids to their runners for the CLI and the
benchmark suite.
"""

from typing import Callable, Dict

from repro.experiments.figures import (
    fig02,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
)
from repro.experiments.report import FigureResult

ALL_FIGURES: Dict[str, Callable[..., FigureResult]] = {
    "fig2": fig02.run,
    "fig3": fig03.run,
    "fig4": fig04.run,
    "fig5": fig05.run,
    "fig6": fig06.run,
    "fig7": fig07.run,
    "fig8": fig08.run,
    "fig9": fig09.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
}

__all__ = ["ALL_FIGURES"]
