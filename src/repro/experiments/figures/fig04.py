"""Figure 4 — vertical sliver link distribution.

The number of *incoming* vertical-sliver references a node receives is
largely uncorrelated with its availability (Theorem 1's uniform
coverage), even though the node population itself is heavily skewed
(Fig 2a).  Bands holding very few nodes are noisy — the paper notes the
[0, 0.1] band is skewed because it has a single node.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import build_simulation, get_scale
from repro.experiments.report import FigureResult
from repro.experiments.snapshot import take_snapshot

__all__ = ["run"]


def run(scale: str = "full", seed: int = 0) -> FigureResult:
    """Regenerate Fig 4: per-band incoming vertical-sliver reference counts."""
    get_scale(scale)
    simulation = build_simulation(scale=scale, seed=seed)
    snapshot = take_snapshot(simulation)
    per_band = snapshot.incoming_vs_by_band()
    counts, edges = snapshot.availability_histogram(bins=10)
    result = FigureResult(
        figure_id="fig4",
        title="Incoming vertical-sliver references per availability band",
        headers=["band", "online_nodes", "incoming_vs_mean"],
    )
    for i, count in enumerate(counts):
        band = round(float(edges[i]), 2)
        result.add_row(
            f"[{band:.1f},{band + 0.1:.1f})",
            int(count),
            per_band.get(band, float("nan")),
        )
    result.series["incoming_vs"] = [
        float(snapshot.incoming_vs[n]) for n in snapshot.nodes
    ]
    populated = [v for b, v in per_band.items() if v == v]
    if populated:
        result.add_note(
            f"incoming-VS band means: min={min(populated):.1f} max={max(populated):.1f} "
            "(paper: uniform across bands, modulo near-empty bands)"
        )
    return result
