"""Shared multicast scenario machinery for Figs 11-13.

The three figures plot different metrics (worst-case latency, spam
ratio, reliability) of the *same five scenarios*:

* flooding: HIGH → [0.85, 0.95], HIGH → av > 0.90, LOW → av > 0.20
* gossip (fanout 5, Ng 2, 1 s period): HIGH → av > 0.90, LOW → av > 0.20

Each scenario cell compiles to one phase-staggered
:class:`~repro.ops.plan.OperationPlan` (``runs`` items of
``messages_per_run`` multicasts, 5 s apart with a 30 s settle gap
between runs — the historical batch launch schedule) and is executed
through ``sim.ops.run``; metric math happens on the columnar
:class:`~repro.ops.log.OperationLog`.  As in ``_anycast_common``,
records finalize once at plan end, so a stage-1 straggler that delivers
during a later run counts DELIVERED rather than frozen LOST.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.experiments.harness import ExperimentScale
from repro.ops.log import OperationLog
from repro.ops.plan import OperationItem, OperationPlan, OperationTiming
from repro.ops.spec import InitiatorBand, TargetSpec
from repro.simulation import AvmemSimulation

__all__ = ["MulticastScenario", "PAPER_SCENARIOS", "scenario_plan", "run_scenario"]

TargetLike = Union[Tuple[float, float], float]

#: the historical batch-driver schedule constants
MULTICAST_SPACING = 5.0
RUN_SETTLE = 30.0


class MulticastScenario:
    """One (mode, initiator band, target) cell of Figs 11-13."""

    def __init__(self, label: str, mode: str, band: str, target: TargetLike):
        self.label = label
        self.mode = mode
        self.band = band
        self.target = target

    def spec(self) -> TargetSpec:
        if isinstance(self.target, tuple):
            return TargetSpec.range(*self.target)
        return TargetSpec.threshold(self.target)


PAPER_SCENARIOS: Tuple[MulticastScenario, ...] = (
    MulticastScenario("HIGH to [0.85,0.95]", "flood", InitiatorBand.HIGH, (0.85, 0.95)),
    MulticastScenario("HIGH to >0.90", "flood", InitiatorBand.HIGH, 0.90),
    MulticastScenario("LOW to >0.20", "flood", InitiatorBand.LOW, 0.20),
    MulticastScenario("Gossip, HIGH to >0.90", "gossip", InitiatorBand.HIGH, 0.90),
    MulticastScenario("Gossip, LOW to >0.20", "gossip", InitiatorBand.LOW, 0.20),
)


def scenario_plan(tier: ExperimentScale, scenario: MulticastScenario) -> OperationPlan:
    """``runs × messages`` multicasts of one scenario as a single plan."""
    spec = scenario.spec()
    run_span = tier.messages_per_run * MULTICAST_SPACING + RUN_SETTLE
    items = tuple(
        OperationItem(
            kind="multicast",
            target=spec,
            count=tier.messages_per_run,
            band=scenario.band,
            mode=scenario.mode,
            timing=OperationTiming(
                mode="interval", spacing=MULTICAST_SPACING, phase=run * run_span
            ),
            label=f"run{run}",
        )
        for run in range(tier.runs)
    )
    return OperationPlan(items=items, settle=RUN_SETTLE, name=scenario.label)


def run_scenario(
    simulation: AvmemSimulation,
    tier: ExperimentScale,
    scenario: MulticastScenario,
) -> OperationLog:
    """Execute one scenario's plan; returns its columnar log."""
    return simulation.ops.run(scenario_plan(tier, scenario))
