"""Shared multicast scenario machinery for Figs 11-13.

The three figures plot different metrics (worst-case latency, spam
ratio, reliability) of the *same five scenarios*:

* flooding: HIGH → [0.85, 0.95], HIGH → av > 0.90, LOW → av > 0.20
* gossip (fanout 5, Ng 2, 1 s period): HIGH → av > 0.90, LOW → av > 0.20
"""

from __future__ import annotations

from typing import List, Tuple, Union

from repro.experiments.harness import ExperimentScale
from repro.ops.results import MulticastRecord
from repro.ops.spec import InitiatorBand, TargetSpec
from repro.simulation import AvmemSimulation

__all__ = ["MulticastScenario", "PAPER_SCENARIOS", "run_scenario"]

TargetLike = Union[Tuple[float, float], float]


class MulticastScenario:
    """One (mode, initiator band, target) cell of Figs 11-13."""

    def __init__(self, label: str, mode: str, band: str, target: TargetLike):
        self.label = label
        self.mode = mode
        self.band = band
        self.target = target

    def spec(self) -> TargetSpec:
        if isinstance(self.target, tuple):
            return TargetSpec.range(*self.target)
        return TargetSpec.threshold(self.target)


PAPER_SCENARIOS: Tuple[MulticastScenario, ...] = (
    MulticastScenario("HIGH to [0.85,0.95]", "flood", InitiatorBand.HIGH, (0.85, 0.95)),
    MulticastScenario("HIGH to >0.90", "flood", InitiatorBand.HIGH, 0.90),
    MulticastScenario("LOW to >0.20", "flood", InitiatorBand.LOW, 0.20),
    MulticastScenario("Gossip, HIGH to >0.90", "gossip", InitiatorBand.HIGH, 0.90),
    MulticastScenario("Gossip, LOW to >0.20", "gossip", InitiatorBand.LOW, 0.20),
)


def run_scenario(
    simulation: AvmemSimulation,
    tier: ExperimentScale,
    scenario: MulticastScenario,
) -> List[MulticastRecord]:
    """``runs × messages`` multicasts of one scenario."""
    records: List[MulticastRecord] = []
    for __ in range(tier.runs):
        records.extend(
            simulation.run_multicast_batch(
                tier.messages_per_run,
                scenario.spec(),
                scenario.band,
                mode=scenario.mode,
            )
        )
    return records
