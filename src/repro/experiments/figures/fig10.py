"""Figure 10 — retried greedy anycast over a *random* overlay.

Exactly Fig 9's experiment, but the overlay is built from the
degree-matched consistent random predicate (``f = p``) instead of the
AVMEM slivers — the SCAMP/CYCLON/T-MAN-like baseline.  Paper: the AVMEM
predicate achieves a higher success rate; latencies are similar.
"""

from __future__ import annotations

from repro.experiments.figures import fig09
from repro.experiments.report import FigureResult

__all__ = ["run"]


def run(scale: str = "full", seed: int = 0) -> FigureResult:
    """Regenerate Fig 10: Fig 9's sweep over the degree-matched random overlay."""
    result = fig09.run(
        scale=scale, seed=seed, predicate_kind="random", figure_id="fig10"
    )
    result.add_note(
        "compare against fig9: AVMEM should deliver a higher fraction at "
        "similar latency (paper's headline for this figure)"
    )
    return result
