"""Figure 11 — multicast latency CDF.

Worst-case (last-receiver) delivery latency per multicast, for the five
paper scenarios.  Paper: flooding completes below ~300 ms; gossip
(fanout 5, Ng 2, 1 s period) below ~5.5 s.
"""

from __future__ import annotations

from repro.experiments.figures._multicast_common import PAPER_SCENARIOS, run_scenario
from repro.experiments.harness import build_simulation, get_scale
from repro.experiments.report import FigureResult
from repro.util.mathx import quantile

__all__ = ["run"]


def run(scale: str = "full", seed: int = 0) -> FigureResult:
    """Regenerate Fig 11: worst-case delivery latency quantiles per scenario."""
    tier = get_scale(scale)
    simulation = build_simulation(scale=scale, seed=seed)
    result = FigureResult(
        figure_id="fig11",
        title="Multicast worst-case latency (last delivery) CDF",
        headers=["scenario", "multicasts", "p50_ms", "p90_ms", "max_ms"],
    )
    for scenario in PAPER_SCENARIOS:
        log = run_scenario(simulation, tier, scenario)
        latencies = (1000.0 * log.worst_latencies()).tolist()
        result.series[scenario.label] = latencies
        result.add_row(
            scenario.label,
            int(log.launched.sum()),
            quantile(latencies, 0.5),
            quantile(latencies, 0.9),
            max(latencies) if latencies else float("nan"),
        )
    result.add_note("paper: flooding < ~300 ms, gossip < ~5.5 s")
    return result
