"""Figure 7 — range anycast hop distribution.

Anycasts from MID-availability initiators to range [0.85, 0.95], TTL 6,
comparing greedy VS-only / HS+VS / HS-only and simulated annealing.
Paper: 100 % success for all variants; all but HS-only deliver w.h.p.
within 1 hop (HS-only must crawl across availability space).
"""

from __future__ import annotations

from repro.experiments.figures._anycast_common import PAPER_VARIANTS, run_variant
from repro.experiments.harness import build_simulation, get_scale
from repro.experiments.report import FigureResult
from repro.ops.spec import InitiatorBand

__all__ = ["run"]

TARGET = (0.85, 0.95)


def run(scale: str = "full", seed: int = 0) -> FigureResult:
    """Regenerate Fig 7: per-variant delivery and cumulative hop fractions."""
    tier = get_scale(scale)
    simulation = build_simulation(scale=scale, seed=seed)
    result = FigureResult(
        figure_id="fig7",
        title=f"Range anycast hops, MID -> {TARGET}",
        headers=["variant", "delivered", "of", "hops=1", "hops<=2", "hops<=6"],
    )
    for variant in PAPER_VARIANTS:
        log = run_variant(simulation, tier, variant, InitiatorBand.MID, TARGET)
        result.add_row(
            variant.label,
            int(log.delivered.sum()),
            int(log.launched.sum()),
            log.hop_fraction_within(1),
            log.hop_fraction_within(2),
            log.hop_fraction_within(6),
        )
        result.series[variant.label] = log.hops_delivered().astype(float).tolist()
    result.add_note(
        "paper: all variants 100% success; all but HS-only within 1 hop w.h.p."
    )
    return result
