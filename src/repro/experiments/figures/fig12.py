"""Figure 12 — multicast spam ratio CDF.

Spam ratio = receptions by nodes *outside* the target range divided by
the number of nodes that could have been delivered to (online, truly in
range).  Stale neighbor caches are the source.  Paper: below ~8 % for
most cases; small target ranges skew the ratio.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures._multicast_common import PAPER_SCENARIOS, run_scenario
from repro.experiments.harness import build_simulation, get_scale
from repro.experiments.report import FigureResult
from repro.util.mathx import quantile

__all__ = ["run"]


def run(scale: str = "full", seed: int = 0) -> FigureResult:
    """Regenerate Fig 12: spam-ratio quantiles per scenario."""
    tier = get_scale(scale)
    simulation = build_simulation(scale=scale, seed=seed)
    result = FigureResult(
        figure_id="fig12",
        title="Multicast spam ratio CDF",
        headers=["scenario", "multicasts", "p50", "p90", "max"],
    )
    for scenario in PAPER_SCENARIOS:
        log = run_scenario(simulation, tier, scenario)
        values = log.spam_ratio_values()
        ratios = values[np.isfinite(values)].tolist()
        result.series[scenario.label] = ratios
        result.add_row(
            scenario.label,
            int(log.launched.sum()),
            quantile(ratios, 0.5),
            quantile(ratios, 0.9),
            max(ratios) if ratios else float("nan"),
        )
    result.add_note(
        "paper: below ~0.08 for most cases (tiny ranges skew the topmost case)"
    )
    return result
