"""Plain-text rendering of experiment results.

Benches and the CLI print the same rows/series the paper's figures plot,
so a reproduction run can be compared against the paper by eye (and
EXPERIMENTS.md records the comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["FigureResult", "format_table", "format_cdf_summary"]


def _format_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width text table."""
    cells = [[_format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt_row(row):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
    lines = [fmt_row(headers), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def format_cdf_summary(
    samples: Sequence[float], levels: Sequence[float] = (0.5, 0.9, 1.0)
) -> str:
    """Compact 'p50=…, p90=…, max=…' summary of a sample set."""
    from repro.util.mathx import quantile

    if not samples:
        return "no samples"
    parts = []
    for level in levels:
        label = "max" if level == 1.0 else f"p{int(level * 100)}"
        parts.append(f"{label}={quantile(samples, level):.4g}")
    return ", ".join(parts)


@dataclass
class FigureResult:
    """A reproduced figure: identity, data rows, and free-form notes."""

    figure_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: named sample sets backing CDFs/scatters, for tests and plotting
    series: Dict[str, List[float]] = field(default_factory=dict)

    def add_row(self, *values) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} values for {len(self.headers)} headers"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        """The figure as printable text."""
        out = [f"== {self.figure_id}: {self.title} =="]
        if self.rows:
            out.append(format_table(self.headers, self.rows))
        for note in self.notes:
            out.append(f"  note: {note}")
        return "\n".join(out)

    def row_dicts(self) -> List[Dict[str, object]]:
        return [dict(zip(self.headers, row)) for row in self.rows]
