"""CYCLON (Voulgaris, Gavidia, van Steen 2005) — inexpensive membership
management for unstructured overlays.

One of the shuffling partial-membership services the paper lists as a
usable substrate (Section 3.1).  This is the *faithful* CYCLON with aged
view entries and oldest-first partner selection, in contrast to the
simplified swap in :class:`repro.monitor.coarse_view.ShuffledCoarseView`:

1. Increase the age of all view entries by one.
2. Pick the *oldest* entry ``Q`` as the shuffle partner.
3. Send ``Q`` a subset of ``l`` entries, including a fresh self-pointer.
4. ``Q`` replies with a subset of its own entries.
5. Both merge, discarding self-pointers and entries already present,
   filling empty slots first and replacing sent entries otherwise.

The exchange is performed synchronously on the shared state (the paper
consumes the shuffler as a black box; message-level simulation of it
would only add cost), driven by one global periodic task.  Implements
:class:`~repro.monitor.base.CoarseViewProvider`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ids import NodeId
from repro.sim.engine import PeriodicTask, Simulator
from repro.sim.network import PresenceOracle

__all__ = ["CyclonView", "CyclonEntry"]


@dataclass
class CyclonEntry:
    """A view slot: a node pointer and its age in shuffle rounds."""

    node: NodeId
    age: int = 0


class CyclonView:
    """CYCLON views for a whole population, driven by the simulator."""

    def __init__(
        self,
        sim: Simulator,
        population: Sequence[NodeId],
        view_size: int,
        shuffle_length: int,
        rng: np.random.Generator,
        presence: Optional[PresenceOracle] = None,
        period: float = 60.0,
        start: bool = True,
    ):
        if view_size <= 0:
            raise ValueError(f"view_size must be positive, got {view_size}")
        if not 0 < shuffle_length <= view_size:
            raise ValueError(
                f"shuffle_length must be in (0, view_size], got {shuffle_length}"
            )
        self.sim = sim
        self.population: Tuple[NodeId, ...] = tuple(population)
        self.view_size = min(view_size, max(1, len(self.population) - 1))
        self.shuffle_length = min(shuffle_length, self.view_size)
        self.rng = rng
        self.presence = presence
        self.period = period
        self.exchange_count = 0
        self._views: Dict[NodeId, List[CyclonEntry]] = {}
        self._bootstrap()
        self._task: Optional[PeriodicTask] = None
        if start:
            self._task = PeriodicTask(sim, period, self.step)

    def _bootstrap(self) -> None:
        n = len(self.population)
        for node in self.population:
            entries: List[CyclonEntry] = []
            seen = {node}
            while len(entries) < min(self.view_size, n - 1):
                candidate = self.population[int(self.rng.integers(n))]
                if candidate not in seen:
                    seen.add(candidate)
                    entries.append(CyclonEntry(candidate, age=0))
            self._views[node] = entries

    def _is_online(self, node: NodeId) -> bool:
        return self.presence is None or self.presence.is_online(node, self.sim.now)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def step(self) -> None:
        """One global round: every online node initiates one shuffle."""
        order = list(self.population)
        self.rng.shuffle(order)
        for node in order:
            if self._is_online(node):
                self.shuffle_once(node)

    def shuffle_once(self, initiator: NodeId) -> bool:
        """One CYCLON exchange initiated by ``initiator``.

        Returns False when no online partner was reachable (the oldest
        entries pointing at offline nodes are discarded, as in CYCLON's
        failure handling).
        """
        view = self._views[initiator]
        if not view:
            return False
        for entry in view:
            entry.age += 1
        # Oldest-first partner selection; drop dead pointers as we probe.
        for entry in sorted(view, key=lambda e: -e.age):
            if self._is_online(entry.node):
                partner = entry.node
                break
            view.remove(entry)
        else:
            return False
        self._exchange(initiator, partner)
        self.exchange_count += 1
        return True

    def _exchange(self, initiator: NodeId, partner: NodeId) -> None:
        view_i = self._views[initiator]
        view_p = self._views[partner]
        # Initiator sends l-1 random entries plus a fresh self-pointer;
        # the partner entry itself is what we are replacing.
        view_i[:] = [e for e in view_i if e.node != partner]
        subset_i = self._sample(view_i, self.shuffle_length - 1)
        sent_i = [CyclonEntry(initiator, age=0)] + [CyclonEntry(e.node, e.age) for e in subset_i]
        subset_p = self._sample(view_p, self.shuffle_length)
        sent_p = [CyclonEntry(e.node, e.age) for e in subset_p]
        self._merge(initiator, view_i, [e.node for e in subset_i], sent_p)
        self._merge(partner, view_p, [e.node for e in subset_p], sent_i)

    def _sample(self, view: List[CyclonEntry], count: int) -> List[CyclonEntry]:
        if count <= 0 or not view:
            return []
        count = min(count, len(view))
        indices = self.rng.choice(len(view), size=count, replace=False)
        return [view[i] for i in indices]

    def _merge(
        self,
        owner: NodeId,
        view: List[CyclonEntry],
        sent_nodes: List[NodeId],
        received: List[CyclonEntry],
    ) -> None:
        present = {entry.node for entry in view}
        removable = [node for node in sent_nodes]
        for incoming in received:
            if incoming.node == owner or incoming.node in present:
                continue
            if len(view) < self.view_size:
                view.append(CyclonEntry(incoming.node, incoming.age))
                present.add(incoming.node)
            elif removable:
                victim = removable.pop()
                for idx, entry in enumerate(view):
                    if entry.node == victim:
                        view[idx] = CyclonEntry(incoming.node, incoming.age)
                        present.discard(victim)
                        present.add(incoming.node)
                        break

    # ------------------------------------------------------------------
    # CoarseViewProvider protocol
    # ------------------------------------------------------------------
    def view(self, node: NodeId) -> Tuple[NodeId, ...]:
        try:
            return tuple(entry.node for entry in self._views[node])
        except KeyError:
            raise KeyError(f"unknown node {node!r}") from None

    def entry_ages(self, node: NodeId) -> Tuple[int, ...]:
        return tuple(entry.age for entry in self._views[node])

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
