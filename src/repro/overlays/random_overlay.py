"""The Fig 10 baseline: a degree-matched consistent *random* overlay.

"…we ran exactly the same range-anycast operation … but over a random
overlay graph similar to those created by alternative membership
protocols like SCAMP, CYCLON, T-MAN" (Section 4.2).  The baseline keeps
AVMEM's consistency (so verification still works) but selects neighbors
availability-blindly: ``f(·,·) = p``, with ``p`` chosen to match the
AVMEM overlay's mean degree so the comparison isolates *where* the links
point, not *how many* there are.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.predicates import (
    AvmemPredicate,
    NodeDescriptor,
    random_overlay_predicate,
)
from repro.core.theory import expected_degree

__all__ = ["degree_matched_random_predicate", "mean_avmem_degree"]


def mean_avmem_degree(
    predicate: AvmemPredicate, descriptors: Sequence[NodeDescriptor]
) -> float:
    """Population-average expected AVMEM degree (theory, not sampling)."""
    if not descriptors:
        raise ValueError("need at least one descriptor")
    degrees = [expected_degree(predicate, d.availability) for d in descriptors]
    return float(np.mean(degrees))


def degree_matched_random_predicate(
    predicate: AvmemPredicate, descriptors: Sequence[NodeDescriptor]
) -> AvmemPredicate:
    """A random-overlay predicate whose expected degree matches what the
    given AVMEM predicate induces on ``descriptors``."""
    degree = mean_avmem_degree(predicate, descriptors)
    return random_overlay_predicate(
        predicate.pdf,
        expected_degree=max(degree, 1.0),
        epsilon=predicate.epsilon,
        hash_fn=predicate.hash_fn,
    )
