"""Availability-keyed ring DHT — the paper's *eliminated* alternative.

Section 1.2 considers assigning Chord/Pastry nodeIDs "based on the
node's availability, rather than a hash of its IP address", so that
availability-based queries become DHT range lookups — and rejects it:
every availability change re-keys the node (a leave + rejoin in ring
terms), and range multicast along the ring is linear in the number of
nodes covered.

This module implements that alternative honestly so the claim can be
*measured* (see ``benchmarks/bench_ablation_ring_dht.py``): a sorted
ring keyed by current availability estimates, finger-style O(log N)
point lookups, successor-walk range traversal, and an update operation
that counts re-keying events as estimates drift.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.ids import NodeId
from repro.util.validation import check_fraction_interval, check_unit_interval

__all__ = ["AvailabilityRing", "RingLookupResult"]


@dataclass(frozen=True)
class RingLookupResult:
    """Outcome of a ring lookup: the owner node and the hop count."""

    node: NodeId
    key: float
    hops: int


class AvailabilityRing:
    """A ring DHT whose key space is the availability interval [0, 1].

    Nodes sit at their availability estimate; a key is owned by its
    *successor* (the first node at or clockwise-after the key, wrapping).
    Fingers at exponentially decreasing distances give O(log N) lookups,
    as in Chord — but over availability space, so every estimate change
    moves the node (``update_key`` counts these re-keyings, the churn
    that Section 1.2 objects to).
    """

    #: estimate changes smaller than this don't re-key the node (a real
    #: deployment would quantize ids; this is generous to the baseline).
    REKEY_THRESHOLD = 0.01

    def __init__(self):
        self._keys: List[float] = []       # sorted availability keys
        self._nodes: List[NodeId] = []     # co-indexed with _keys
        self._position: Dict[NodeId, float] = {}
        self.rekey_events = 0
        self.join_events = 0
        self.leave_events = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def join(self, node: NodeId, availability: float) -> None:
        """Insert a node at its availability key."""
        check_unit_interval(availability, "availability")
        if node in self._position:
            raise ValueError(f"{node} already joined")
        self._insert(node, availability)
        self.join_events += 1

    def leave(self, node: NodeId) -> None:
        """Remove a node (e.g., it went offline)."""
        key = self._position.pop(node, None)
        if key is None:
            raise KeyError(f"{node} is not on the ring")
        index = self._locate(node, key)
        del self._keys[index]
        del self._nodes[index]
        self.leave_events += 1

    def update_key(self, node: NodeId, availability: float) -> bool:
        """Move a node to its new availability estimate.

        Returns True when the move exceeded :data:`REKEY_THRESHOLD` and
        therefore counted as a re-keying (leave + rejoin) event — the
        cost metric for this baseline.
        """
        check_unit_interval(availability, "availability")
        old = self._position.get(node)
        if old is None:
            raise KeyError(f"{node} is not on the ring")
        if abs(availability - old) < self.REKEY_THRESHOLD:
            return False
        index = self._locate(node, old)
        del self._keys[index]
        del self._nodes[index]
        self._insert(node, availability)
        self.rekey_events += 1
        return True

    def _insert(self, node: NodeId, key: float) -> None:
        index = bisect.bisect_left(self._keys, key)
        self._keys.insert(index, key)
        self._nodes.insert(index, node)
        self._position[node] = key

    def _locate(self, node: NodeId, key: float) -> int:
        index = bisect.bisect_left(self._keys, key)
        while index < len(self._nodes) and self._nodes[index] != node:
            index += 1
        if index >= len(self._nodes):
            raise RuntimeError(f"ring index out of sync for {node}")
        return index

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._position

    def position(self, node: NodeId) -> Optional[float]:
        return self._position.get(node)

    def members(self) -> Tuple[NodeId, ...]:
        return tuple(self._nodes)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def successor_index(self, key: float) -> int:
        """Index of the node owning ``key`` (wraps past 1.0)."""
        if not self._nodes:
            raise RuntimeError("empty ring")
        index = bisect.bisect_left(self._keys, key)
        return index % len(self._nodes)

    def lookup(self, start: NodeId, key: float) -> RingLookupResult:
        """Chord-style finger routing from ``start`` to the owner of
        ``key``; the hop count models lookup latency."""
        check_unit_interval(key, "key")
        if start not in self._position:
            raise KeyError(f"{start} is not on the ring")
        n = len(self._nodes)
        target = self.successor_index(key)
        current = self._locate(start, self._position[start])
        hops = 0
        while current != target:
            distance = (target - current) % n
            # Largest power-of-two finger not overshooting the target.
            step = 1
            while step * 2 <= distance:
                step *= 2
            current = (current + step) % n
            hops += 1
        return RingLookupResult(node=self._nodes[target], key=key, hops=hops)

    def range_walk(self, start: NodeId, lo: float, hi: float) -> Tuple[List[NodeId], int]:
        """Deliver to every node with key in [lo, hi]: finger-route to
        the range start, then successor-walk — **one hop per member**,
        the linear cost Section 1.2 calls out.

        Returns (members reached, total hops).
        """
        check_fraction_interval(lo, hi, "range")
        entry = self.lookup(start, lo)
        hops = entry.hops
        reached: List[NodeId] = []
        n = len(self._nodes)
        index = self._locate(entry.node, self._position[entry.node])
        while self._keys[index] <= hi:
            if self._keys[index] >= lo:
                reached.append(self._nodes[index])
            next_index = index + 1
            if next_index >= n:
                break  # availability space does not wrap for ranges
            index = next_index
            hops += 1
        return reached, hops
