"""Static overlay-graph construction and analysis.

Because the AVMEM predicate is consistent, the overlay it spans at any
instant is a pure function of the node set and their availabilities.
This module materializes that graph two ways:

* :class:`OverlayGraph` — the **array backend**: a CSR-style structure
  (``src_indices`` / ``dst_indices`` / ``horizontal`` numpy arrays plus
  per-node ``offsets``) built by one fully-batched
  :meth:`~repro.core.predicates.AvmemPredicate.evaluate_all` call, which
  computes the entire N×N hash/threshold comparison in block-tiled numpy
  operations.  Construction is O(N²) arithmetic but free of per-edge
  Python, which makes it usable at N = 20k+ (see
  ``benchmarks/bench_overlay_scale.py`` for the N ∈ {1k, 5k, 20k} sweep
  against the legacy per-row networkx path — ≥ 5× at 20k, growing with
  N).  All analytics (:func:`sliver_sizes`,
  :func:`incoming_counts_by_kind`, :func:`band_subgraph` /
  :func:`band_connectivity`, :func:`mean_out_degree`) run as array
  operations on this backend.
* :meth:`OverlayGraph.to_networkx` — a compatibility adapter producing
  the seed's :class:`networkx.DiGraph` (node attribute ``availability``,
  edge attribute ``kind``), so figure code and tests that want a general
  graph library keep working.  :func:`build_overlay_graph` retains its
  original signature and return type by building the array backend and
  adapting it.

Graph direction: membership is directed — ``x → y`` means "y is in x's
membership list" (``M(x, y) = 1``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import networkx as nx
import numpy as np

from repro.core.ids import NodeId
from repro.core.population import Population
from repro.core.predicates import AvmemPredicate, NodeDescriptor, SliverKind
from repro.telemetry import current as current_telemetry
from repro.util.memmaps import spill

__all__ = [
    "OverlayGraph",
    "build_overlay",
    "build_overlay_graph",
    "sliver_sizes",
    "incoming_counts_by_kind",
    "band_subgraph",
    "band_connectivity",
    "mean_out_degree",
]

GraphLike = Union["OverlayGraph", nx.DiGraph]


class OverlayGraph:
    """Array-backed directed membership graph (CSR layout).

    Attributes
    ----------
    ids:
        The node identities, in construction order; index ``i`` in every
        array refers to ``ids[i]``.
    availabilities:
        Float array, ``availabilities[i] = av(ids[i])``.
    src_indices, dst_indices:
        Parallel int64 edge arrays sorted by source then destination.
    horizontal:
        Boolean per-edge array — True for HORIZONTAL sliver edges.
    offsets:
        Int64 array of length ``n + 1``: edges of source ``i`` occupy
        ``slice(offsets[i], offsets[i + 1])``.
    """

    def __init__(
        self,
        ids: Optional[Sequence[NodeId]],
        availabilities: Optional[np.ndarray],
        src_indices: np.ndarray,
        dst_indices: np.ndarray,
        horizontal: np.ndarray,
        *,
        population: Optional[Population] = None,
        storage: Optional[str] = None,
    ):
        if population is None:
            if ids is None or availabilities is None:
                raise ValueError("pass either ids+availabilities or population=")
            population = Population.from_ids(
                tuple(ids), np.asarray(availabilities, dtype=float)
            )
        self.population = population
        self.availabilities = population.availabilities
        # Edge columns optionally spill to .npy memmaps: at 1M nodes the
        # CSR is ~10^8 edges (~1.7 GB), which need not stay resident.
        self.src_indices = spill(
            np.asarray(src_indices, dtype=np.int64), storage, "overlay_src"
        )
        self.dst_indices = spill(
            np.asarray(dst_indices, dtype=np.int64), storage, "overlay_dst"
        )
        self.horizontal = spill(
            np.asarray(horizontal, dtype=bool), storage, "overlay_horizontal"
        )
        n = population.size
        if not (self.src_indices.size == self.dst_indices.size == self.horizontal.size):
            raise ValueError("edge arrays must be parallel")
        if self.src_indices.size:
            if np.any(self.src_indices[:-1] > self.src_indices[1:]):
                raise ValueError("src_indices must be sorted (CSR row order)")
            for name, arr in (("src", self.src_indices), ("dst", self.dst_indices)):
                if int(arr.min()) < 0 or int(arr.max()) >= n:
                    raise ValueError(f"{name}_indices out of range [0, {n})")
        counts = np.bincount(self.src_indices, minlength=n)
        self.offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        descriptors: Sequence[NodeDescriptor],
        predicate: AvmemPredicate,
        cushion: float = 0.0,
        block_rows: int = 256,
        method: str = "exhaustive",
        storage: Optional[str] = None,
    ) -> "OverlayGraph":
        """Materialize the overlay over ``descriptors`` in one batched
        predicate evaluation."""
        ids: List[NodeId] = [d.node for d in descriptors]
        if len(set(ids)) != len(ids):
            raise ValueError("descriptors must have unique node ids")
        avs = np.array([d.availability for d in descriptors], dtype=float)
        with current_telemetry().span("overlay.build"):
            src, dst, horizontal = predicate.evaluate_all(
                ids, avs, cushion=cushion, block_rows=block_rows, method=method
            )
            return cls(ids, avs, src, dst, horizontal, storage=storage)

    @classmethod
    def build_rows(
        cls,
        population: Population,
        predicate: AvmemPredicate,
        cushion: float = 0.0,
        block_rows: int = 256,
        method: str = "auto",
        storage: Optional[str] = None,
    ) -> "OverlayGraph":
        """Materialize the overlay directly over a
        :class:`~repro.core.population.Population` — no :class:`NodeId`
        objects are touched, which is what keeps 100k–1M-row builds
        memory-bounded.  ``method="auto"`` uses candidate generation
        whenever the predicate supports it; ``storage`` spills the edge
        CSR to ``.npy`` memmaps in that directory."""
        with current_telemetry().span("overlay.build"):
            src, dst, horizontal = predicate.evaluate_all_rows(
                population.digests,
                population.availabilities,
                cushion=cushion,
                block_rows=block_rows,
                method=method,
            )
            return cls(
                None, None, src, dst, horizontal, population=population, storage=storage
            )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def ids(self) -> Tuple[NodeId, ...]:
        """The node identities, in row order (materializes lazily — for
        population-backed graphs prefer row indices)."""
        return self.population.id_tuple

    @property
    def number_of_nodes(self) -> int:
        return self.population.size

    @property
    def number_of_edges(self) -> int:
        return int(self.src_indices.size)

    def index_of(self, node: NodeId) -> int:
        return self.population.row_of(node)

    @property
    def id_array(self) -> np.ndarray:
        """The node identities as an object array — fancy-indexable by
        ``dst_indices`` slices, so membership-table installs can gather a
        CSR row's identities without per-edge Python."""
        return self.population.id_array

    @property
    def digest64_array(self) -> np.ndarray:
        """Per-node ``uint64`` endpoint digests, parallel to the row
        space (feeds :meth:`~repro.core.membership.MembershipTable.upsert_many`)."""
        return self.population.digests

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(dst_indices, horizontal)`` slices for source ``i`` — the
        node's membership list in array form."""
        sl = slice(int(self.offsets[i]), int(self.offsets[i + 1]))
        return self.dst_indices[sl], self.horizontal[sl]

    def successors(self, node: NodeId) -> List[NodeId]:
        dsts, _ = self.row(self.population.row_of(node))
        return [self.population.id_of(j) for j in dsts]

    # ------------------------------------------------------------------
    # Degree / sliver analytics (array operations)
    # ------------------------------------------------------------------
    def out_degrees(self) -> np.ndarray:
        return np.diff(self.offsets)

    def sliver_size_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-node ``(hs_sizes, vs_sizes)`` out-degree arrays."""
        n = self.number_of_nodes
        hs = np.bincount(self.src_indices[self.horizontal], minlength=n)
        vs = np.bincount(self.src_indices[~self.horizontal], minlength=n)
        return hs, vs

    def incoming_count_array(self, kind: SliverKind) -> np.ndarray:
        mask = self.horizontal if kind is SliverKind.HORIZONTAL else ~self.horizontal
        return np.bincount(self.dst_indices[mask], minlength=self.number_of_nodes)

    def mean_out_degree(self) -> float:
        n = self.number_of_nodes
        if n == 0:
            return float("nan")
        return self.number_of_edges / n

    # ------------------------------------------------------------------
    # Bands (Theorem 2)
    # ------------------------------------------------------------------
    def band_mask(self, lo: float, hi: float) -> np.ndarray:
        return (self.availabilities >= lo) & (self.availabilities <= hi)

    def band_edge_mask(self, node_mask: np.ndarray) -> np.ndarray:
        """Edges with both endpoints inside ``node_mask``."""
        return node_mask[self.src_indices] & node_mask[self.dst_indices]

    def band_connectivity(self, lo: float, hi: float) -> bool:
        """Is the sub-overlay of nodes with availability in ``[lo, hi]``
        weakly connected?  Empty or singleton bands count as connected."""
        mask = self.band_mask(lo, hi)
        members = np.flatnonzero(mask)
        if members.size <= 1:
            return True
        edge_mask = self.band_edge_mask(mask)
        src = self.src_indices[edge_mask]
        dst = self.dst_indices[edge_mask]
        if src.size == 0:
            return False
        # Vectorized minimum-label propagation with pointer jumping: each
        # round every edge pulls both endpoints down to the smaller label
        # (weak connectivity treats edges as undirected) and every label
        # chases its own label, so convergence takes O(log diameter)
        # rounds of O(E) numpy work — no per-edge Python.
        labels = np.arange(self.number_of_nodes, dtype=np.int64)
        while True:
            before = labels[members]
            pulled = np.minimum(labels[src], labels[dst])
            np.minimum.at(labels, src, pulled)
            np.minimum.at(labels, dst, pulled)
            # A label is itself a node index in the same component, so
            # following it tightens toward the component minimum.
            labels = np.minimum(labels, labels[labels])
            after = labels[members]
            if np.array_equal(after, before):
                break
        return np.unique(labels[members]).size == 1

    # ------------------------------------------------------------------
    # Compatibility adapter
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.DiGraph:
        """The equivalent :class:`networkx.DiGraph` (node attribute
        ``availability``, edge attribute ``kind``) — the seed
        representation, kept so figure code and tests that want a general
        graph library keep working."""
        graph = nx.DiGraph()
        for node, av in zip(self.ids, self.availabilities):
            graph.add_node(node, availability=float(av))
        # Two bulk add_edges_from calls over the CSR arrays — one per
        # sliver kind — instead of building a per-edge attribute dict in
        # Python (networkx copies the keyword attrs into each edge's own
        # dict, so sharing the kind value is safe).
        ids_arr = self.id_array
        horizontal = np.asarray(self.horizontal)
        src_ids = ids_arr[self.src_indices]
        dst_ids = ids_arr[self.dst_indices]
        graph.add_edges_from(
            zip(src_ids[horizontal].tolist(), dst_ids[horizontal].tolist()),
            kind=SliverKind.HORIZONTAL,
        )
        vertical = ~horizontal
        graph.add_edges_from(
            zip(src_ids[vertical].tolist(), dst_ids[vertical].tolist()),
            kind=SliverKind.VERTICAL,
        )
        return graph

    def subgraph(self, node_mask: np.ndarray) -> "OverlayGraph":
        """Induced OverlayGraph over the nodes selected by ``node_mask``."""
        members = np.flatnonzero(node_mask)
        remap = np.full(self.number_of_nodes, -1, dtype=np.int64)
        remap[members] = np.arange(members.size)
        edge_mask = self.band_edge_mask(np.asarray(node_mask, dtype=bool))
        return OverlayGraph(
            [self.population.id_of(i) for i in members],
            self.availabilities[members],
            remap[self.src_indices[edge_mask]],
            remap[self.dst_indices[edge_mask]],
            self.horizontal[edge_mask],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OverlayGraph(nodes={self.number_of_nodes}, "
            f"edges={self.number_of_edges})"
        )


def build_overlay(
    descriptors: Sequence[NodeDescriptor],
    predicate: AvmemPredicate,
    cushion: float = 0.0,
    block_rows: int = 256,
) -> OverlayGraph:
    """The array-backed overlay over ``descriptors`` (preferred API)."""
    return OverlayGraph.build(
        descriptors, predicate, cushion=cushion, block_rows=block_rows
    )


def build_overlay_graph(
    descriptors: Sequence[NodeDescriptor],
    predicate: AvmemPredicate,
    cushion: float = 0.0,
) -> nx.DiGraph:
    """The directed membership graph over ``descriptors`` as a
    :class:`networkx.DiGraph` (compatibility wrapper).

    Node attributes: ``availability``.  Edge attributes: ``kind``
    (:class:`SliverKind`).  Construction runs through the batched array
    backend and adapts; callers that only need analytics should use
    :func:`build_overlay` and skip the adapter entirely.
    """
    return build_overlay(descriptors, predicate, cushion=cushion).to_networkx()


def sliver_sizes(graph: GraphLike) -> Dict[NodeId, Tuple[int, int]]:
    """Per-node ``(hs_size, vs_size)`` out-degrees."""
    if isinstance(graph, OverlayGraph):
        hs, vs = graph.sliver_size_arrays()
        return {
            node: (int(h), int(v)) for node, h, v in zip(graph.ids, hs, vs)
        }
    out: Dict[NodeId, Tuple[int, int]] = {}
    for node in graph.nodes:
        hs = vs = 0
        for _, _, data in graph.out_edges(node, data=True):
            if data["kind"] is SliverKind.HORIZONTAL:
                hs += 1
            else:
                vs += 1
        out[node] = (hs, vs)
    return out


def incoming_counts_by_kind(graph: GraphLike, kind: SliverKind) -> Dict[NodeId, int]:
    """Per-node count of incoming edges of one sliver kind (Fig 4)."""
    if isinstance(graph, OverlayGraph):
        counts = graph.incoming_count_array(kind)
        return {node: int(c) for node, c in zip(graph.ids, counts)}
    out: Dict[NodeId, int] = {node: 0 for node in graph.nodes}
    for _, dst, data in graph.edges(data=True):
        if data["kind"] is kind:
            out[dst] += 1
    return out


def band_subgraph(graph: GraphLike, lo: float, hi: float) -> GraphLike:
    """Induced subgraph of nodes with availability in ``[lo, hi]`` (same
    backend as the input)."""
    if isinstance(graph, OverlayGraph):
        return graph.subgraph(graph.band_mask(lo, hi))
    members = [
        node
        for node, data in graph.nodes(data=True)
        if lo <= data["availability"] <= hi
    ]
    return graph.subgraph(members).copy()


def band_connectivity(graph: GraphLike, lo: float, hi: float) -> bool:
    """Is the sub-overlay of nodes with availability in ``[lo, hi]``
    weakly connected?  (Theorem 2's claim, for bands of width 2ε.)

    Empty or singleton bands count as connected.
    """
    if isinstance(graph, OverlayGraph):
        return graph.band_connectivity(lo, hi)
    sub = band_subgraph(graph, lo, hi)
    if sub.number_of_nodes() <= 1:
        return True
    return nx.is_weakly_connected(sub)


def mean_out_degree(graph: GraphLike) -> float:
    """Average membership-list size across nodes."""
    if isinstance(graph, OverlayGraph):
        return graph.mean_out_degree()
    n = graph.number_of_nodes()
    if n == 0:
        return float("nan")
    return graph.number_of_edges() / n
