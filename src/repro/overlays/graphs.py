"""Static overlay-graph construction and analysis.

Because the AVMEM predicate is consistent, the overlay it spans at any
instant is a pure function of the node set and their availabilities.
:func:`build_overlay_graph` materializes that graph directly (vectorized
over candidates), which powers the microbenchmark figures (Figs 2-4),
the Theorem 2 connectivity checks, and the ``bootstrap="direct"``
simulation mode.

Graphs are :class:`networkx.DiGraph` — membership is directed: ``x → y``
means "y is in x's membership list" (``M(x, y) = 1``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.core.ids import NodeId, digest_array
from repro.core.predicates import AvmemPredicate, NodeDescriptor, SliverKind

__all__ = [
    "build_overlay_graph",
    "sliver_sizes",
    "incoming_counts_by_kind",
    "band_subgraph",
    "band_connectivity",
    "mean_out_degree",
]


def build_overlay_graph(
    descriptors: Sequence[NodeDescriptor],
    predicate: AvmemPredicate,
    cushion: float = 0.0,
) -> nx.DiGraph:
    """The directed membership graph over ``descriptors``.

    Node attributes: ``availability``.  Edge attributes: ``kind``
    (:class:`SliverKind`).  O(n²) predicate evaluations, vectorized per
    source row.
    """
    ids: List[NodeId] = [d.node for d in descriptors]
    if len(set(ids)) != len(ids):
        raise ValueError("descriptors must have unique node ids")
    avs = np.array([d.availability for d in descriptors], dtype=float)
    graph = nx.DiGraph()
    for descriptor in descriptors:
        graph.add_node(descriptor.node, availability=descriptor.availability)
    for i, source in enumerate(descriptors):
        member, horizontal = predicate.evaluate_many(source, ids, avs, cushion=cushion)
        for j in np.flatnonzero(member):
            kind = SliverKind.HORIZONTAL if horizontal[j] else SliverKind.VERTICAL
            graph.add_edge(source.node, ids[j], kind=kind)
    return graph


def sliver_sizes(graph: nx.DiGraph) -> Dict[NodeId, Tuple[int, int]]:
    """Per-node ``(hs_size, vs_size)`` out-degrees."""
    out: Dict[NodeId, Tuple[int, int]] = {}
    for node in graph.nodes:
        hs = vs = 0
        for _, _, data in graph.out_edges(node, data=True):
            if data["kind"] is SliverKind.HORIZONTAL:
                hs += 1
            else:
                vs += 1
        out[node] = (hs, vs)
    return out


def incoming_counts_by_kind(graph: nx.DiGraph, kind: SliverKind) -> Dict[NodeId, int]:
    """Per-node count of incoming edges of one sliver kind (Fig 4)."""
    counts: Dict[NodeId, int] = {node: 0 for node in graph.nodes}
    for _, dst, data in graph.edges(data=True):
        if data["kind"] is kind:
            counts[dst] += 1
    return counts


def band_subgraph(graph: nx.DiGraph, lo: float, hi: float) -> nx.DiGraph:
    """Induced subgraph of nodes with availability in ``[lo, hi]``."""
    members = [
        node
        for node, data in graph.nodes(data=True)
        if lo <= data["availability"] <= hi
    ]
    return graph.subgraph(members).copy()


def band_connectivity(graph: nx.DiGraph, lo: float, hi: float) -> bool:
    """Is the sub-overlay of nodes with availability in ``[lo, hi]``
    weakly connected?  (Theorem 2's claim, for bands of width 2ε.)

    Empty or singleton bands count as connected.
    """
    sub = band_subgraph(graph, lo, hi)
    if sub.number_of_nodes() <= 1:
        return True
    return nx.is_weakly_connected(sub)


def mean_out_degree(graph: nx.DiGraph) -> float:
    """Average membership-list size across nodes."""
    n = graph.number_of_nodes()
    if n == 0:
        return float("nan")
    return graph.number_of_edges() / n
