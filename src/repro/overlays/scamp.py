"""SCAMP (Ganesh, Kermarrec, Massoulié 2003) — probabilistic
subscription-based membership.

The second shuffling-membership substrate the paper cites (it is also
the source of the "Ω(log M) random neighbors ⇒ connected w.h.p." result
that Theorems 2-3 lean on).  SCAMP's defining property: views
self-stabilize to O(log N) size *without knowing N*, via the
subscription-forwarding rule:

* A joining node sends a subscription to a contact.
* The contact forwards copies of the subscription to **all** nodes in
  its partial view, plus ``c`` additional random copies (``c`` is the
  failure-tolerance parameter).
* A node receiving a forwarded subscription keeps it with probability
  ``1/(1 + view_size)``; otherwise it forwards the copy to a random
  member of its view.  Forwarding is bounded by a TTL to guarantee
  termination.

As with the other substrates, joins execute synchronously on shared
state (the paper consumes membership as a black box).  Implements
:class:`~repro.monitor.base.CoarseViewProvider`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.ids import NodeId
from repro.util.randomness import fallback_rng

__all__ = ["ScampMembership"]

_FORWARD_TTL = 64


class ScampMembership:
    """SCAMP partial views (out-views) for a population.

    Build with :meth:`join_all` for a full population, or call
    :meth:`join` incrementally to study view-size growth.
    """

    def __init__(self, c: int = 1, rng: Optional[np.random.Generator] = None):
        if c < 0:
            raise ValueError(f"c must be non-negative, got {c}")
        self.c = c
        self.rng = rng if rng is not None else fallback_rng()
        self._views: Dict[NodeId, List[NodeId]] = {}
        self.forward_count = 0

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def join(self, node: NodeId, contact: Optional[NodeId] = None) -> None:
        """Subscribe ``node`` via ``contact`` (None only for the first node)."""
        if node in self._views:
            raise ValueError(f"{node!r} already joined")
        self._views[node] = []
        if contact is None:
            if len(self._views) > 1:
                raise ValueError("only the first node may join without a contact")
            return
        if contact not in self._views:
            raise KeyError(f"contact {contact!r} is not a member")
        # The new node starts out knowing its contact.
        self._views[node].append(contact)
        # The contact forwards the subscription to its whole view + c copies.
        targets = list(self._views[contact]) + [
            self._random_member(exclude=node) for _ in range(self.c)
        ]
        # The contact also integrates the newcomer directly.
        self._maybe_keep(contact, node, force=True)
        for target in targets:
            if target is not None:
                self._forward_subscription(target, node)

    def join_all(self, nodes: Sequence[NodeId]) -> None:
        """Join ``nodes`` in order, each via a uniformly random existing
        member (the standard SCAMP bootstrap experiment)."""
        for node in nodes:
            members = list(self._views)
            contact = None
            if members:
                contact = members[int(self.rng.integers(len(members)))]
            self.join(node, contact)

    # ------------------------------------------------------------------
    # Subscription forwarding
    # ------------------------------------------------------------------
    def _forward_subscription(self, holder: NodeId, subscriber: NodeId) -> None:
        ttl = _FORWARD_TTL
        current = holder
        while ttl > 0:
            ttl -= 1
            self.forward_count += 1
            if current != subscriber and self._maybe_keep(current, subscriber):
                return
            view = self._views[current]
            candidates = [n for n in view if n != subscriber]
            if not candidates:
                return
            current = candidates[int(self.rng.integers(len(candidates)))]
        # TTL exhausted: keep unconditionally to avoid losing the
        # subscription (SCAMP's "keep if nowhere to forward" rule).
        self._maybe_keep(current, subscriber, force=True)

    def _maybe_keep(self, holder: NodeId, subscriber: NodeId, force: bool = False) -> bool:
        view = self._views[holder]
        if subscriber in view or holder == subscriber:
            return False
        p_keep = 1.0 / (1.0 + len(view))
        if force or self.rng.random() < p_keep:
            view.append(subscriber)
            return True
        return False

    def _random_member(self, exclude: NodeId) -> Optional[NodeId]:
        members = [n for n in self._views if n != exclude]
        if not members:
            return None
        return members[int(self.rng.integers(len(members)))]

    # ------------------------------------------------------------------
    # CoarseViewProvider protocol + analysis
    # ------------------------------------------------------------------
    def view(self, node: NodeId) -> Tuple[NodeId, ...]:
        try:
            return tuple(self._views[node])
        except KeyError:
            raise KeyError(f"unknown node {node!r}") from None

    @property
    def members(self) -> Tuple[NodeId, ...]:
        return tuple(self._views)

    def view_sizes(self) -> List[int]:
        return [len(v) for v in self._views.values()]

    def in_degree(self, node: NodeId) -> int:
        return sum(1 for view in self._views.values() if node in view)

    def reachable_from(self, node: NodeId) -> Set[NodeId]:
        """Transitive closure along out-views (connectivity check)."""
        seen: Set[NodeId] = {node}
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for neighbor in self._views.get(current, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen
