"""Overlay construction, analysis, and baseline membership protocols."""

from repro.overlays.cyclon import CyclonEntry, CyclonView
from repro.overlays.graphs import (
    OverlayGraph,
    band_connectivity,
    band_subgraph,
    build_overlay,
    build_overlay_graph,
    incoming_counts_by_kind,
    mean_out_degree,
    sliver_sizes,
)
from repro.overlays.random_overlay import (
    degree_matched_random_predicate,
    mean_avmem_degree,
)
from repro.overlays.ring_dht import AvailabilityRing, RingLookupResult
from repro.overlays.scamp import ScampMembership

__all__ = [
    "OverlayGraph",
    "build_overlay",
    "build_overlay_graph",
    "sliver_sizes",
    "incoming_counts_by_kind",
    "band_subgraph",
    "band_connectivity",
    "mean_out_degree",
    "CyclonView",
    "CyclonEntry",
    "ScampMembership",
    "AvailabilityRing",
    "RingLookupResult",
    "degree_matched_random_predicate",
    "mean_avmem_degree",
]
