"""AVMON — consistent availability-monitoring overlay (Morales & Gupta,
ICDCS 2007), the monitoring service the paper's implementation uses.

AVMON's key idea mirrors AVMEM's: the *monitoring relationship* is chosen
by a consistent hash so it cannot be gamed.  Node ``z`` monitors node
``x`` iff ``Hm(id(z), id(x)) ≤ k/N*`` where ``Hm`` is a fixed hash
(independent of the AVMEM membership hash) and ``k`` the target number of
monitors per node.  Monitors discover their targets through the coarse
view, ping them periodically, and estimate availability as the answered
fraction of pings.

Fidelity notes (docs/architecture.md, "Monitoring services"): pings sample the churn trace directly
instead of traversing the simulated network — the paper consumes AVMON as
a black box, and modeling ping RTTs would only add simulation cost; ping
*counts* are still tracked so overhead can be reported.  Queries
aggregate over the target's current monitors by median.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.churn.trace import ChurnTrace
from repro.core.hashing import Mix64PairHash
from repro.core.ids import NodeId
from repro.monitor.base import CoarseViewProvider
from repro.sim.engine import PeriodicTask, Simulator
from repro.util.randomness import fallback_rng
from repro.util.validation import check_positive

__all__ = ["AvmonService", "AvmonConfig", "MonitorRecord"]

#: Salt making AVMON's hash family independent of the AVMEM membership hash.
_AVMON_SALT = 0xA730_0000_0000_0001


@dataclass(frozen=True)
class AvmonConfig:
    """AVMON protocol parameters."""

    monitors_per_node: int = 8  # the paper's K
    ping_period: float = 60.0
    discovery_period: float = 60.0

    def __post_init__(self):
        if self.monitors_per_node <= 0:
            raise ValueError(
                f"monitors_per_node must be positive, got {self.monitors_per_node}"
            )
        check_positive(self.ping_period, "ping_period")
        check_positive(self.discovery_period, "discovery_period")


@dataclass
class MonitorRecord:
    """One monitor's running measurement of one target."""

    pings_sent: int = 0
    pings_answered: int = 0
    history: List[bool] = field(default_factory=list)

    def observe(self, online: bool) -> None:
        self.pings_sent += 1
        if online:
            self.pings_answered += 1

    @property
    def estimate(self) -> Optional[float]:
        if self.pings_sent == 0:
            return None
        return self.pings_answered / self.pings_sent


class AvmonService:
    """The AVMON availability-monitoring overlay.

    Implements :class:`~repro.monitor.base.AvailabilityService`.
    """

    def __init__(
        self,
        sim: Simulator,
        trace: ChurnTrace,
        population: Sequence[NodeId],
        coarse_view: CoarseViewProvider,
        n_star: float,
        config: Optional[AvmonConfig] = None,
        rng: Optional[np.random.Generator] = None,
        start: bool = True,
    ):
        self.sim = sim
        self.trace = trace
        self.population: Tuple[NodeId, ...] = tuple(population)
        self.coarse_view = coarse_view
        self.n_star = check_positive(n_star, "n_star")
        self.config = config if config is not None else AvmonConfig()
        self.rng = rng if rng is not None else fallback_rng()
        self._hash = Mix64PairHash(salt=_AVMON_SALT)
        self._selection_threshold = min(1.0, self.config.monitors_per_node / self.n_star)
        # monitor -> set of targets it has discovered it must monitor
        self._targets: Dict[NodeId, Set[NodeId]] = {n: set() for n in self.population}
        # (monitor, target) -> record
        self._records: Dict[Tuple[NodeId, NodeId], MonitorRecord] = {}
        # target -> its monitors' records (the query-side index: queries
        # aggregate per target, so scanning every (monitor, target) pair
        # per query would be O(population × K))
        self._records_of_target: Dict[NodeId, List[MonitorRecord]] = {
            n: [] for n in self.population
        }
        self.ping_count = 0
        self._tasks: List[PeriodicTask] = []
        if start:
            self._tasks.append(
                PeriodicTask(sim, self.config.discovery_period, self._discovery_round)
            )
            self._tasks.append(PeriodicTask(sim, self.config.ping_period, self._ping_round))

    # ------------------------------------------------------------------
    # The consistent monitoring relation
    # ------------------------------------------------------------------
    def should_monitor(self, monitor: NodeId, target: NodeId) -> bool:
        """``Hm(id(z), id(x)) ≤ K/N*`` — verifiable by anyone."""
        if monitor == target:
            return False
        return self._hash.value(monitor, target) <= self._selection_threshold

    def monitors_of(self, target: NodeId) -> List[NodeId]:
        """All nodes whose hash selects them as monitors of ``target``
        (ground-truth set, independent of discovery progress)."""
        return [z for z in self.population if self.should_monitor(z, target)]

    # ------------------------------------------------------------------
    # Protocol rounds
    # ------------------------------------------------------------------
    def _discovery_round(self) -> None:
        """Each online node scans its coarse view for nodes it should
        monitor (AVMON's discovery leg)."""
        now = self.sim.now
        for monitor in self.population:
            if not self.trace.is_online(monitor, now):
                continue
            known = self._targets[monitor]
            for candidate in self.coarse_view.view(monitor):
                if candidate not in known and self.should_monitor(monitor, candidate):
                    known.add(candidate)

    def _ping_round(self) -> None:
        """Every online monitor pings each discovered target."""
        now = self.sim.now
        for monitor, targets in self._targets.items():
            if not self.trace.is_online(monitor, now) or not targets:
                continue
            for target in targets:
                record = self._records.get((monitor, target))
                if record is None:
                    record = MonitorRecord()
                    self._records[(monitor, target)] = record
                    self._records_of_target[target].append(record)
                record.observe(self.trace.is_online(target, now))
                self.ping_count += 1

    # ------------------------------------------------------------------
    # AvailabilityService protocol
    # ------------------------------------------------------------------
    def query(self, node: NodeId) -> float:
        """Median of the discovered monitors' estimates for ``node``.

        Falls back to 0.5 (an uninformative prior) when no monitor has
        measured the node yet — early in a deployment this is exactly the
        situation a real client faces.
        """
        if node not in self._targets:
            raise KeyError(f"unknown node {node!r}")
        estimates = [
            record.estimate
            for record in self._records_of_target[node]
            if record.estimate is not None
        ]
        if not estimates:
            return 0.5
        return float(np.median(estimates))

    def query_array(self, nodes: Sequence[NodeId]) -> np.ndarray:
        """Batched :meth:`query` — one call answers a whole refresh
        round's neighbor set.

        :meth:`~repro.monitor.cache.CachedAvailabilityView.fetch_array`
        detects this method and stops falling back to one scalar query
        per neighbor; answers are identical entry for entry (the parity
        tests assert it).  Per-target monitor counts are small (the
        paper's K ≈ 8), so each median runs over a handful of ping
        ratios gathered through the per-target record index.
        """
        out = np.empty(len(nodes), dtype=float)
        records_of = self._records_of_target
        for i, node in enumerate(nodes):
            records = records_of.get(node)
            if records is None:
                raise KeyError(f"unknown node {node!r}")
            estimates = np.fromiter(
                (
                    estimate
                    for estimate in (record.estimate for record in records)
                    if estimate is not None
                ),
                dtype=float,
            )
            out[i] = float(np.median(estimates)) if estimates.size else 0.5
        return out

    def discovered_monitor_count(self, target: NodeId) -> int:
        """How many monitors have already *discovered* this target."""
        return sum(1 for targets in self._targets.values() if target in targets)

    def stop(self) -> None:
        for task in self._tasks:
            task.stop()
        self._tasks.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AvmonService(nodes={len(self.population)}, K={self.config.monitors_per_node}, "
            f"pings={self.ping_count})"
        )
