"""Oracle availability service: trace ground truth, optionally degraded.

The paper treats availability monitoring as a black box whose accuracy
and consistency bound AVMEM's behaviour.  The oracle reads fraction
uptime straight from the churn trace (raw from trace start, or over a
trailing window for "aged" availability) and can degrade its answers
with Gaussian noise and/or quantization — the knobs the Figs 5-6
staleness/inaccuracy experiments turn.

Noise is *deterministic per (node, time-bucket)* rather than per call:
a real monitoring service gives (roughly) the same wrong answer to
everyone who asks at about the same time, and that consistency matters
for verification experiments.  The whole bucket's noise vector is drawn
in one batch (seeded from the bucket index), which lets the scalar
:meth:`OracleAvailability.query` and the batched
:meth:`OracleAvailability.query_array` — the refresh hot path — give
matching answers while keeping the batch path free of per-node python.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.churn.trace import ChurnTrace
from repro.core.ids import NodeId
from repro.sim.engine import Simulator
from repro.util.randomness import stream
from repro.util.validation import check_non_negative, check_positive

__all__ = ["OracleAvailability"]


class OracleAvailability:
    """Availability estimates computed from the churn trace.

    Parameters
    ----------
    trace, sim:
        The ground truth and the clock.
    window:
        None → raw availability over ``[0, now]``; otherwise fraction
        uptime over the trailing ``window`` seconds.
    noise_std:
        Standard deviation of additive Gaussian error (0 = exact).
    quantization:
        Round estimates to this granularity (e.g. 0.01); 0 disables.
    noise_bucket:
        Time bucketing for deterministic noise, seconds.  Within one
        bucket every query for a node gets the same perturbation.
    min_observation:
        Before this much trace time has elapsed, estimates are unstable;
        the oracle still answers (with whatever it has), matching a
        freshly deployed monitoring service.
    """

    def __init__(
        self,
        trace: ChurnTrace,
        sim: Simulator,
        window: Optional[float] = None,
        noise_std: float = 0.0,
        quantization: float = 0.0,
        noise_bucket: float = 1200.0,
        seed: int = 0,
    ):
        self.trace = trace
        self.sim = sim
        self.window = None if window is None else check_positive(window, "window")
        self.noise_std = check_non_negative(noise_std, "noise_std")
        self.quantization = check_non_negative(quantization, "quantization")
        self.noise_bucket = check_positive(noise_bucket, "noise_bucket")
        self._seed = int(seed)
        #: bucket index -> per-node noise vector (index-aligned to the trace)
        self._noise_buckets: Dict[int, np.ndarray] = {}

    def query(self, node: NodeId) -> float:
        """Current (possibly noisy/quantized) availability of ``node``."""
        if node not in self.trace:
            raise KeyError(f"unknown node {node!r}")
        now = self.sim.now
        if self.window is None:
            value = self.trace.availability(node, now)
        else:
            value = self.trace.windowed_availability(node, now, self.window)
        if self.noise_std > 0.0:
            value += float(self._bucket_noise(now)[self.trace.index_of(node)])
        if self.quantization > 0.0:
            value = round(value / self.quantization) * self.quantization
        return float(min(1.0, max(0.0, value)))

    def query_array(self, nodes: Sequence[NodeId]) -> np.ndarray:
        """Batched :meth:`query`: one vectorized timeline pass for the
        whole batch (the refresh-round hot path).

        Answers match per-node :meth:`query` calls — same branch
        semantics, same per-bucket noise vector, same quantization and
        clamping — bit-for-bit on epoch-aligned traces, and to
        uptime-accumulation rounding (≲1e-10) on continuous-time ones.
        """
        indices = self.trace.node_indices(nodes)  # KeyError on unknowns
        now = self.sim.now
        timeline = self.trace.timeline
        if self.window is None:
            values = timeline.availability_array(indices, now)
        else:
            values = timeline.windowed_availability_array(indices, now, self.window)
        if self.noise_std > 0.0:
            values = values + self._bucket_noise(now)[indices]
        if self.quantization > 0.0:
            values = np.round(values / self.quantization) * self.quantization
        return np.minimum(np.maximum(values, 0.0), 1.0)

    def true_availability(self, node: NodeId) -> float:
        """Undegraded availability (for experiment ground truth)."""
        if self.window is None:
            return self.trace.availability(node, self.sim.now)
        return self.trace.windowed_availability(node, self.sim.now, self.window)

    def _bucket_noise(self, now: float) -> np.ndarray:
        """The population noise vector for the bucket containing ``now``."""
        bucket = int(now / self.noise_bucket)
        cached = self._noise_buckets.get(bucket)
        if cached is None:
            # stream() == default_rng(derive_seed(...)): same generator,
            # same draws, routed through the sanctioned constructor.
            rng = stream(self._seed, f"oracle-noise-bucket:{bucket}")
            cached = rng.normal(0.0, self.noise_std, self.trace.node_count)
            if len(self._noise_buckets) > 64:
                self._noise_buckets.clear()
            self._noise_buckets[bucket] = cached
        return cached
