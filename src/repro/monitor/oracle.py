"""Oracle availability service: trace ground truth, optionally degraded.

The paper treats availability monitoring as a black box whose accuracy
and consistency bound AVMEM's behaviour.  The oracle reads fraction
uptime straight from the churn trace (raw from trace start, or over a
trailing window for "aged" availability) and can degrade its answers
with Gaussian noise and/or quantization — the knobs the Figs 5-6
staleness/inaccuracy experiments turn.

Noise is *deterministic per (node, time-bucket)* rather than per call:
a real monitoring service gives (roughly) the same wrong answer to
everyone who asks at about the same time, and that consistency matters
for verification experiments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.churn.trace import ChurnTrace
from repro.core.ids import NodeId
from repro.sim.engine import Simulator
from repro.util.randomness import derive_seed
from repro.util.validation import check_non_negative, check_positive

__all__ = ["OracleAvailability"]


class OracleAvailability:
    """Availability estimates computed from the churn trace.

    Parameters
    ----------
    trace, sim:
        The ground truth and the clock.
    window:
        None → raw availability over ``[0, now]``; otherwise fraction
        uptime over the trailing ``window`` seconds.
    noise_std:
        Standard deviation of additive Gaussian error (0 = exact).
    quantization:
        Round estimates to this granularity (e.g. 0.01); 0 disables.
    noise_bucket:
        Time bucketing for deterministic noise, seconds.  Within one
        bucket every query for a node gets the same perturbation.
    min_observation:
        Before this much trace time has elapsed, estimates are unstable;
        the oracle still answers (with whatever it has), matching a
        freshly deployed monitoring service.
    """

    def __init__(
        self,
        trace: ChurnTrace,
        sim: Simulator,
        window: Optional[float] = None,
        noise_std: float = 0.0,
        quantization: float = 0.0,
        noise_bucket: float = 1200.0,
        seed: int = 0,
    ):
        self.trace = trace
        self.sim = sim
        self.window = None if window is None else check_positive(window, "window")
        self.noise_std = check_non_negative(noise_std, "noise_std")
        self.quantization = check_non_negative(quantization, "quantization")
        self.noise_bucket = check_positive(noise_bucket, "noise_bucket")
        self._seed = int(seed)
        self._noise_cache: dict = {}

    def query(self, node: NodeId) -> float:
        """Current (possibly noisy/quantized) availability of ``node``."""
        if node not in self.trace:
            raise KeyError(f"unknown node {node!r}")
        now = self.sim.now
        if self.window is None:
            value = self.trace.availability(node, now)
        else:
            value = self.trace.windowed_availability(node, now, self.window)
        if self.noise_std > 0.0:
            value += self._noise(node, now)
        if self.quantization > 0.0:
            value = round(value / self.quantization) * self.quantization
        return float(min(1.0, max(0.0, value)))

    def true_availability(self, node: NodeId) -> float:
        """Undegraded availability (for experiment ground truth)."""
        if self.window is None:
            return self.trace.availability(node, self.sim.now)
        return self.trace.windowed_availability(node, self.sim.now, self.window)

    def _noise(self, node: NodeId, now: float) -> float:
        bucket = int(now / self.noise_bucket)
        key = (node, bucket)
        cached = self._noise_cache.get(key)
        if cached is None:
            rng = np.random.default_rng(
                derive_seed(self._seed, f"oracle-noise:{node.endpoint}:{bucket}")
            )
            cached = float(rng.normal(0.0, self.noise_std))
            if len(self._noise_cache) > 200_000:
                self._noise_cache.clear()
            self._noise_cache[key] = cached
        return cached
