"""Shuffling partial-membership services (black-box dependency #2).

Two implementations of :class:`~repro.monitor.base.CoarseViewProvider`:

* :class:`ShuffledCoarseView` — a CYCLON-style distributed shuffler: every
  protocol period, each online node swaps a random half of its view with
  a random online partner from the view.  Entries can be stale (point to
  offline nodes); staleness is a feature the discovery protocol must
  tolerate.  This is the faithful model of AVMON's "coarse view".
* :class:`GlobalSampleView` — an idealized shuffler that re-samples each
  node's view uniformly from the whole population every period.  Each
  period, ``P[y ∈ view(x)] = v/N`` exactly, which matches the
  Section 3.1 discovery-time analysis (expected ``N/v`` periods) and
  keeps large benchmark sweeps cheap.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ids import NodeId
from repro.sim.engine import PeriodicTask, Simulator
from repro.sim.network import PresenceOracle

__all__ = ["ShuffledCoarseView", "GlobalSampleView"]


class GlobalSampleView:
    """Idealized shuffler: each period, a node's view is a fresh uniform
    sample of the *online* population.

    Views are materialized lazily: a node's view is (re)sampled the first
    time it is read in each period, so idle nodes cost nothing.  Within a
    period the view is stable; across periods it is independent, giving
    ``P[y ∈ view(x)] = v/N_online`` per period — exactly the model behind
    Section 3.1's ``O(N/v)``-period discovery-time analysis.

    Real shuffling services circulate (mostly) live nodes — a host that
    is offline neither initiates nor answers shuffles — so the sample is
    drawn from the currently online population; a small ``stale_fraction``
    of slots may instead point at arbitrary (possibly dead) hosts,
    modeling the stale entries a real view accumulates.
    """

    def __init__(
        self,
        sim: Simulator,
        population: Sequence[NodeId],
        view_size: int,
        rng: np.random.Generator,
        presence: Optional[PresenceOracle] = None,
        period: float = 60.0,
        stale_fraction: float = 0.05,
    ):
        if view_size <= 0:
            raise ValueError(f"view_size must be positive, got {view_size}")
        if not 0.0 <= stale_fraction <= 1.0:
            raise ValueError(f"stale_fraction must be in [0, 1], got {stale_fraction}")
        self.sim = sim
        self.population: Tuple[NodeId, ...] = tuple(population)
        if len(set(self.population)) != len(self.population):
            raise ValueError("population must not contain duplicates")
        self.view_size = min(view_size, max(1, len(self.population) - 1))
        self.rng = rng
        self.presence = presence
        self.period = period
        self.stale_fraction = stale_fraction
        self._members = frozenset(self.population)
        self._views: Dict[NodeId, Tuple[NodeId, ...]] = {}
        self._sampled_at: Dict[NodeId, int] = {}
        # Online-pool cache, refreshed once per period bucket.
        self._pool: List[NodeId] = []
        self._pool_bucket = -1

    def _bucket(self) -> int:
        return int(self.sim.now / self.period)

    def _online_pool(self) -> List[NodeId]:
        bucket = self._bucket()
        if bucket != self._pool_bucket:
            if self.presence is None:
                self._pool = list(self.population)
            else:
                now = self.sim.now
                self._pool = [
                    n for n in self.population if self.presence.is_online(n, now)
                ]
                if not self._pool:
                    self._pool = list(self.population)
            self._pool_bucket = bucket
        return self._pool

    def _sample_for(self, node: NodeId) -> Tuple[NodeId, ...]:
        """One period's view: live picks plus stale picks, all distinct.

        Both draws exclude the owner and each other up front, so a view
        is only ever shorter than ``view_size`` when the eligible
        population genuinely cannot fill it (e.g. too few online nodes
        with ``stale_fraction=0``) — collisions are resampled, never
        silently dropped, which would shrink views and bias discovery
        time toward nodes that happened to collide less.
        """
        pool = self._online_pool()
        n_stale = int(round(self.view_size * self.stale_fraction))
        n_live = self.view_size - n_stale
        view: List[NodeId] = []
        if n_live > 0:
            live_pool = [p for p in pool if p != node]
            if live_pool:
                size = min(n_live, len(live_pool))
                indices = self.rng.choice(len(live_pool), size=size, replace=False)
                view.extend(live_pool[i] for i in indices)
        if n_stale > 0:
            seen = {node, *view}
            stale_pool = [p for p in self.population if p not in seen]
            if stale_pool:
                size = min(n_stale, len(stale_pool))
                indices = self.rng.choice(len(stale_pool), size=size, replace=False)
                view.extend(stale_pool[i] for i in indices)
        return tuple(view)

    def view(self, node: NodeId) -> Tuple[NodeId, ...]:
        if node not in self._members:
            raise KeyError(f"unknown node {node!r}")
        bucket = self._bucket()
        if self._sampled_at.get(node) != bucket:
            self._views[node] = self._sample_for(node)
            self._sampled_at[node] = bucket
        return self._views[node]

    def stop(self) -> None:
        """No background tasks to stop (lazy implementation); kept for
        interface parity with ShuffledCoarseView."""


class ShuffledCoarseView:
    """CYCLON-style gossip shuffler over the simulated population.

    One global periodic task iterates the online nodes in random order
    and performs one pairwise swap each — statistically equivalent to
    per-node timers at 1/period rate, and far cheaper to simulate.
    """

    def __init__(
        self,
        sim: Simulator,
        population: Sequence[NodeId],
        view_size: int,
        rng: np.random.Generator,
        presence: Optional[PresenceOracle] = None,
        period: float = 60.0,
        swap_size: Optional[int] = None,
        start: bool = True,
    ):
        if view_size <= 0:
            raise ValueError(f"view_size must be positive, got {view_size}")
        self.sim = sim
        self.population: Tuple[NodeId, ...] = tuple(population)
        if len(set(self.population)) != len(self.population):
            raise ValueError("population must not contain duplicates")
        self.view_size = min(view_size, max(1, len(self.population) - 1))
        self.rng = rng
        self.presence = presence
        self.period = period
        self.swap_size = swap_size if swap_size is not None else max(1, self.view_size // 2)
        self.shuffle_count = 0
        self._views: Dict[NodeId, List[NodeId]] = {}
        self._bootstrap()
        self._task: Optional[PeriodicTask] = None
        if start:
            self._task = PeriodicTask(sim, period, self.step)

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        """Seed each view with a uniform random sample — modeling an
        out-of-band join service, as gossip membership systems assume."""
        n = len(self.population)
        for node in self.population:
            size = min(self.view_size, n - 1)
            view: List[NodeId] = []
            while len(view) < size:
                candidate = self.population[int(self.rng.integers(n))]
                if candidate != node and candidate not in view:
                    view.append(candidate)
            self._views[node] = view

    # ------------------------------------------------------------------
    # Shuffling
    # ------------------------------------------------------------------
    def _is_online(self, node: NodeId) -> bool:
        return self.presence is None or self.presence.is_online(node, self.sim.now)

    def step(self) -> None:
        """One global shuffle round: every online node swaps once."""
        order = list(self.population)
        self.rng.shuffle(order)
        for node in order:
            if self._is_online(node):
                self._swap_once(node)

    def _swap_once(self, node: NodeId) -> None:
        view = self._views[node]
        online_partners = [p for p in view if self._is_online(p)]
        if not online_partners:
            return
        partner = online_partners[int(self.rng.integers(len(online_partners)))]
        self._exchange(node, partner)
        self.shuffle_count += 1

    def _exchange(self, a: NodeId, b: NodeId) -> None:
        """Swap up to ``swap_size`` random entries and plant each other's
        id — the CYCLON subset exchange."""
        view_a, view_b = self._views[a], self._views[b]
        send_a = self._pick_subset(view_a, exclude=b)
        send_b = self._pick_subset(view_b, exclude=a)
        self._merge(a, view_a, send_a, incoming=send_b + [b])
        self._merge(b, view_b, send_b, incoming=send_a + [a])

    def _pick_subset(self, view: List[NodeId], exclude: NodeId) -> List[NodeId]:
        candidates = [entry for entry in view if entry != exclude]
        if not candidates:
            return []
        size = min(self.swap_size, len(candidates))
        indices = self.rng.choice(len(candidates), size=size, replace=False)
        return [candidates[i] for i in indices]

    def _merge(
        self, owner: NodeId, view: List[NodeId], sent: List[NodeId], incoming: List[NodeId]
    ) -> None:
        # Drop what we sent, add what we received (no self, no dups), trim.
        remaining = [entry for entry in view if entry not in sent]
        for entry in incoming:
            if entry != owner and entry not in remaining:
                remaining.append(entry)
        while len(remaining) > self.view_size:
            remaining.pop(int(self.rng.integers(len(remaining))))
        self._views[owner] = remaining

    # ------------------------------------------------------------------
    # CoarseViewProvider protocol
    # ------------------------------------------------------------------
    def view(self, node: NodeId) -> Tuple[NodeId, ...]:
        try:
            return tuple(self._views[node])
        except KeyError:
            raise KeyError(f"unknown node {node!r}") from None

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShuffledCoarseView(nodes={len(self.population)}, v={self.view_size}, "
            f"shuffles={self.shuffle_count})"
        )
