"""Availability monitoring and shuffled-membership substrates."""

from repro.monitor.avmon import AvmonConfig, AvmonService, MonitorRecord
from repro.monitor.base import AvailabilityService, CoarseViewProvider
from repro.monitor.cache import CachedAvailabilityView, CacheEntry
from repro.monitor.coarse_view import GlobalSampleView, ShuffledCoarseView
from repro.monitor.oracle import OracleAvailability

__all__ = [
    "AvailabilityService",
    "CoarseViewProvider",
    "OracleAvailability",
    "CachedAvailabilityView",
    "CacheEntry",
    "GlobalSampleView",
    "ShuffledCoarseView",
    "AvmonService",
    "AvmonConfig",
    "MonitorRecord",
]
