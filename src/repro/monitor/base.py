"""Availability-monitoring service interface (black-box dependency #1).

Section 3.1: "An availability monitoring service is defined as one that
can be queried for the long-term availability (e.g., raw, or aged) of
any given node.  It returns an answer that is reasonably accurate, and
that is reasonably consistent over time."

Implementations here: :class:`~repro.monitor.oracle.OracleAvailability`
(trace ground truth, optionally degraded) and
:class:`~repro.monitor.avmon.AvmonService` (the full AVMON protocol).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.ids import NodeId

__all__ = ["AvailabilityService", "CoarseViewProvider"]


@runtime_checkable
class AvailabilityService(Protocol):
    """Query interface for long-term node availability."""

    def query(self, node: NodeId) -> float:
        """Current availability estimate for ``node``, in [0, 1].

        Must never raise for known nodes; unknown nodes raise KeyError.
        """
        ...


@runtime_checkable
class CoarseViewProvider(Protocol):
    """Shuffled partial-membership service (black-box dependency #2).

    "A decentralized shuffling membership service has a node maintain a
    random list of some of the nodes in the system … continuously changed
    by the underlying shuffling protocol" (Section 3.1).
    """

    def view(self, node: NodeId) -> tuple:
        """The current (weakly consistent, possibly stale) partial view
        of ``node``: a tuple of NodeIds."""
        ...
