"""Staleness-aware availability caches.

Section 3.2: "when node x is considering potential next-hops for an
anycast, it uses cached values of availabilities for its neighbors.
Typically, these cached values were fetched the last time the refresh
operation was done" — and Section 4.1 measures how that staleness both
enables flooding attacks and causes legitimate rejections.

:class:`CachedAvailabilityView` wraps an
:class:`~repro.monitor.base.AvailabilityService` with an explicit
fetch/read split so protocol code can only read what it has fetched.
"""

from __future__ import annotations

from itertools import repeat
from typing import Dict, Iterable, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.core.ids import NodeId
from repro.monitor.base import AvailabilityService
from repro.sim.engine import Simulator

__all__ = ["CacheEntry", "CachedAvailabilityView"]


class CacheEntry(NamedTuple):
    """A cached availability value and when it was fetched."""

    value: float
    fetched_at: float

    def age(self, now: float) -> float:
        return now - self.fetched_at


class CachedAvailabilityView:
    """One node's cached view of other nodes' availabilities.

    Entries are stored as plain ``(value, fetched_at)`` tuples — one is
    written per fetched neighbor per refresh round, so construction cost
    sits on the hot path; :meth:`entry` materializes the public
    :class:`CacheEntry` on demand.
    """

    def __init__(self, service: AvailabilityService, sim: Simulator):
        self._service = service
        self._sim = sim
        self._entries: Dict[NodeId, Tuple[float, float]] = {}
        #: batches fetched but not yet folded into ``_entries`` — refresh
        #: rounds overwrite the whole neighbor set every period while
        #: reads happen sporadically, so batch results are folded in
        #: lazily on first read (last write wins, same observable state)
        self._pending: list = []
        self.fetch_count = 0
        self.hit_count = 0

    # ------------------------------------------------------------------
    # Fetching (talks to the monitoring service)
    # ------------------------------------------------------------------
    def fetch(self, node: NodeId) -> float:
        """Query the service now and cache the answer."""
        if self._pending:
            self._fold_pending()
        value = self._service.query(node)
        self._entries[node] = (value, self._sim.now)
        self.fetch_count += 1
        return value

    def fetch_many(self, nodes: Iterable[NodeId]) -> None:
        for node in nodes:
            self.fetch(node)

    def fetch_array(self, nodes: Sequence[NodeId]) -> np.ndarray:
        """:meth:`fetch` every node and return the values as a float
        array parallel to ``nodes`` (the refresh hot path).

        Services exposing a batched ``query_array`` (e.g. the trace
        oracle answering through the columnar
        :class:`~repro.churn.timeline.ChurnTimeline`) are asked once for
        the whole batch; others fall back to one scalar query per node.
        Either way every answer lands in the cache, stamped now.
        """
        query_array = getattr(self._service, "query_array", None)
        if query_array is None:
            return np.fromiter(
                (self.fetch(node) for node in nodes), dtype=float, count=len(nodes)
            )
        values = np.asarray(query_array(nodes), dtype=float)
        self._pending.append((list(nodes), values, self._sim.now))
        self.fetch_count += len(nodes)
        return values

    def _fold_pending(self) -> None:
        """Fold deferred batches into the entry dict, oldest first (so a
        later fetch of the same node wins, as with eager stores)."""
        pending, self._pending = self._pending, []
        entries = self._entries
        for nodes, values, fetched_at in pending:
            # C-level bulk insert: dict.update consumes the zip pipeline
            # without a per-entry python loop.
            entries.update(zip(nodes, zip(values.tolist(), repeat(fetched_at))))

    # ------------------------------------------------------------------
    # Reading (never talks to the service)
    # ------------------------------------------------------------------
    def get(self, node: NodeId) -> Optional[float]:
        """The cached value, or None if never fetched."""
        if self._pending:
            self._fold_pending()
        entry = self._entries.get(node)
        if entry is None:
            return None
        self.hit_count += 1
        return entry[0]

    def get_or_fetch(self, node: NodeId) -> float:
        """Cached value if present, else fetch (for non-hot-path callers)."""
        cached = self.get(node)
        if cached is not None:
            return cached
        return self.fetch(node)

    def entry(self, node: NodeId) -> Optional[CacheEntry]:
        if self._pending:
            self._fold_pending()
        entry = self._entries.get(node)
        return None if entry is None else CacheEntry(*entry)

    def staleness(self, node: NodeId) -> Optional[float]:
        """Seconds since the value for ``node`` was fetched, or None."""
        if self._pending:
            self._fold_pending()
        entry = self._entries.get(node)
        return None if entry is None else self._sim.now - entry[1]

    def evict(self, node: NodeId) -> None:
        if self._pending:
            self._fold_pending()
        self._entries.pop(node, None)

    def __len__(self) -> int:
        if self._pending:
            self._fold_pending()
        return len(self._entries)

    def __contains__(self, node: NodeId) -> bool:
        if self._pending:
            self._fold_pending()
        return node in self._entries
