"""Staleness-aware availability caches.

Section 3.2: "when node x is considering potential next-hops for an
anycast, it uses cached values of availabilities for its neighbors.
Typically, these cached values were fetched the last time the refresh
operation was done" — and Section 4.1 measures how that staleness both
enables flooding attacks and causes legitimate rejections.

:class:`CachedAvailabilityView` wraps an
:class:`~repro.monitor.base.AvailabilityService` with an explicit
fetch/read split so protocol code can only read what it has fetched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.core.ids import NodeId
from repro.monitor.base import AvailabilityService
from repro.sim.engine import Simulator

__all__ = ["CacheEntry", "CachedAvailabilityView"]


@dataclass(frozen=True)
class CacheEntry:
    """A cached availability value and when it was fetched."""

    value: float
    fetched_at: float

    def age(self, now: float) -> float:
        return now - self.fetched_at


class CachedAvailabilityView:
    """One node's cached view of other nodes' availabilities."""

    def __init__(self, service: AvailabilityService, sim: Simulator):
        self._service = service
        self._sim = sim
        self._entries: Dict[NodeId, CacheEntry] = {}
        self.fetch_count = 0
        self.hit_count = 0

    # ------------------------------------------------------------------
    # Fetching (talks to the monitoring service)
    # ------------------------------------------------------------------
    def fetch(self, node: NodeId) -> float:
        """Query the service now and cache the answer."""
        value = self._service.query(node)
        self._entries[node] = CacheEntry(value=value, fetched_at=self._sim.now)
        self.fetch_count += 1
        return value

    def fetch_many(self, nodes: Iterable[NodeId]) -> None:
        for node in nodes:
            self.fetch(node)

    def fetch_array(self, nodes: Sequence[NodeId]) -> np.ndarray:
        """:meth:`fetch` every node and return the values as a float
        array parallel to ``nodes`` (the refresh hot path)."""
        return np.fromiter(
            (self.fetch(node) for node in nodes), dtype=float, count=len(nodes)
        )

    # ------------------------------------------------------------------
    # Reading (never talks to the service)
    # ------------------------------------------------------------------
    def get(self, node: NodeId) -> Optional[float]:
        """The cached value, or None if never fetched."""
        entry = self._entries.get(node)
        if entry is None:
            return None
        self.hit_count += 1
        return entry.value

    def get_or_fetch(self, node: NodeId) -> float:
        """Cached value if present, else fetch (for non-hot-path callers)."""
        cached = self.get(node)
        if cached is not None:
            return cached
        return self.fetch(node)

    def entry(self, node: NodeId) -> Optional[CacheEntry]:
        return self._entries.get(node)

    def staleness(self, node: NodeId) -> Optional[float]:
        """Seconds since the value for ``node`` was fetched, or None."""
        entry = self._entries.get(node)
        return None if entry is None else entry.age(self._sim.now)

    def evict(self, node: NodeId) -> None:
        self._entries.pop(node, None)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._entries
