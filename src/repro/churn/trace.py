"""Churn traces: per-node online/offline schedules over simulated time.

The paper injects availability-variation traces from the Overnet p2p
system (1442 hosts, 7 days, 20-minute measurement epochs) into its
simulator.  This module defines the trace representation those
experiments run on:

* :class:`NodeSchedule` — one node's sorted, disjoint online intervals,
  with fraction-uptime ("availability") queries.
* :class:`ChurnTrace` — a set of schedules keyed by node, implementing
  the :class:`~repro.sim.network.PresenceOracle` protocol so the network
  can gate delivery on presence.

Traces can be built directly from interval lists, or from a boolean
epoch × node matrix (the shape measurement studies produce); see
:meth:`ChurnTrace.from_matrix` and :mod:`repro.churn.overnet` for the
synthetic Overnet-like generator.
"""

from __future__ import annotations

import bisect
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["NodeSchedule", "ChurnTrace"]

NodeKey = Hashable
Interval = Tuple[float, float]


def _normalize_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Sort, validate, and merge touching/overlapping intervals."""
    cleaned: List[Interval] = []
    for start, end in sorted((float(s), float(e)) for s, e in intervals):
        if end < start:
            raise ValueError(f"interval end before start: ({start}, {end})")
        if end == start:
            continue  # zero-length sessions carry no information
        if cleaned and start <= cleaned[-1][1]:
            prev_start, prev_end = cleaned[-1]
            cleaned[-1] = (prev_start, max(prev_end, end))
        else:
            cleaned.append((start, end))
    return cleaned


class NodeSchedule:
    """One node's online sessions as half-open intervals ``[start, end)``."""

    __slots__ = ("_intervals", "_starts", "_ends", "_cum_uptime")

    def __init__(self, intervals: Iterable[Interval]):
        self._intervals = _normalize_intervals(intervals)
        self._starts = [iv[0] for iv in self._intervals]
        self._ends = [iv[1] for iv in self._intervals]
        # Cumulative uptime *before* interval i, enabling O(log n) uptime().
        cum = [0.0]
        for start, end in self._intervals:
            cum.append(cum[-1] + (end - start))
        self._cum_uptime = cum

    # ------------------------------------------------------------------
    # Presence
    # ------------------------------------------------------------------
    def is_online(self, time: float) -> bool:
        """Whether the node is online at ``time`` (half-open intervals)."""
        idx = bisect.bisect_right(self._starts, time) - 1
        return idx >= 0 and time < self._ends[idx]

    def next_transition(self, time: float) -> Optional[float]:
        """The next instant (> time) at which presence flips, or None."""
        idx = bisect.bisect_right(self._starts, time) - 1
        if idx >= 0 and time < self._ends[idx]:
            return self._ends[idx]  # currently online; next flip is session end
        nxt = idx + 1
        if nxt < len(self._starts):
            return self._starts[nxt]
        return None

    # ------------------------------------------------------------------
    # Uptime / availability
    # ------------------------------------------------------------------
    def uptime(self, until: float, since: float = 0.0) -> float:
        """Seconds online within ``[since, until]``."""
        if until < since:
            raise ValueError(f"until ({until}) must be >= since ({since})")
        return self._uptime_before(until) - self._uptime_before(since)

    def availability(self, until: float, since: float = 0.0) -> float:
        """Fraction uptime over ``[since, until]`` — the paper's ``av(x)``.

        A zero-length window returns the instantaneous presence (1.0 or
        0.0), so early-trace queries stay well-defined.
        """
        span = until - since
        if span <= 0:
            return 1.0 if self.is_online(until) else 0.0
        return self.uptime(until, since) / span

    def _uptime_before(self, time: float) -> float:
        idx = bisect.bisect_right(self._starts, time) - 1
        if idx < 0:
            return 0.0
        full = self._cum_uptime[idx]
        start, end = self._intervals[idx]
        return full + min(time, end) - start if time > start else full

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def intervals(self) -> Tuple[Interval, ...]:
        return tuple(self._intervals)

    @property
    def session_count(self) -> int:
        return len(self._intervals)

    def session_lengths(self) -> List[float]:
        return [end - start for start, end in self._intervals]

    def first_appearance(self) -> Optional[float]:
        return self._starts[0] if self._starts else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeSchedule(sessions={self.session_count})"


class ChurnTrace:
    """Schedules for a population of nodes; acts as a presence oracle."""

    def __init__(self, schedules: Dict[NodeKey, NodeSchedule], horizon: float):
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self._schedules = dict(schedules)
        self.horizon = float(horizon)
        self._order: Tuple[NodeKey, ...] = tuple(self._schedules)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_matrix(
        cls,
        matrix: np.ndarray,
        node_keys: Sequence[NodeKey],
        epoch_seconds: float,
    ) -> "ChurnTrace":
        """Build a trace from a boolean ``epochs × nodes`` matrix.

        ``matrix[e, i]`` is True when node ``node_keys[i]`` was online
        during epoch ``e``; each epoch spans ``epoch_seconds``.
        """
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.ndim != 2:
            raise ValueError(f"matrix must be 2-D (epochs x nodes), got shape {matrix.shape}")
        epochs, n_nodes = matrix.shape
        if n_nodes != len(node_keys):
            raise ValueError(
                f"matrix has {n_nodes} node columns but {len(node_keys)} keys were given"
            )
        if len(set(node_keys)) != len(node_keys):
            raise ValueError("node keys must be unique")
        if epoch_seconds <= 0:
            raise ValueError(f"epoch_seconds must be positive, got {epoch_seconds}")
        schedules: Dict[NodeKey, NodeSchedule] = {}
        for i, key in enumerate(node_keys):
            column = matrix[:, i]
            intervals: List[Interval] = []
            run_start: Optional[int] = None
            for e in range(epochs):
                if column[e] and run_start is None:
                    run_start = e
                elif not column[e] and run_start is not None:
                    intervals.append((run_start * epoch_seconds, e * epoch_seconds))
                    run_start = None
            if run_start is not None:
                intervals.append((run_start * epoch_seconds, epochs * epoch_seconds))
            schedules[key] = NodeSchedule(intervals)
        return cls(schedules, horizon=epochs * epoch_seconds)

    def to_matrix(self, epoch_seconds: float) -> Tuple[np.ndarray, Tuple[NodeKey, ...]]:
        """Sample presence at epoch midpoints back into a boolean matrix."""
        if epoch_seconds <= 0:
            raise ValueError(f"epoch_seconds must be positive, got {epoch_seconds}")
        epochs = int(round(self.horizon / epoch_seconds))
        matrix = np.zeros((epochs, len(self._order)), dtype=bool)
        for i, key in enumerate(self._order):
            schedule = self._schedules[key]
            for e in range(epochs):
                midpoint = (e + 0.5) * epoch_seconds
                matrix[e, i] = schedule.is_online(midpoint)
        return matrix, self._order

    # ------------------------------------------------------------------
    # PresenceOracle protocol
    # ------------------------------------------------------------------
    def is_online(self, node: NodeKey, time: float) -> bool:
        schedule = self._schedules.get(node)
        return schedule.is_online(time) if schedule is not None else False

    # ------------------------------------------------------------------
    # Population queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[NodeKey, ...]:
        return self._order

    @property
    def node_count(self) -> int:
        return len(self._order)

    def schedule(self, node: NodeKey) -> NodeSchedule:
        return self._schedules[node]

    def __contains__(self, node: NodeKey) -> bool:
        return node in self._schedules

    def online_nodes(self, time: float) -> List[NodeKey]:
        return [key for key in self._order if self._schedules[key].is_online(time)]

    def online_count(self, time: float) -> int:
        return sum(1 for key in self._order if self._schedules[key].is_online(time))

    # ------------------------------------------------------------------
    # Availability queries
    # ------------------------------------------------------------------
    def availability(self, node: NodeKey, until: float, since: float = 0.0) -> float:
        """Raw fraction uptime of ``node`` over ``[since, until]``."""
        return self._schedules[node].availability(until, since)

    def windowed_availability(self, node: NodeKey, time: float, window: float) -> float:
        """Fraction uptime over the trailing ``window`` seconds (an "aged"
        availability per Section 3.1's monitoring-service definition)."""
        since = max(0.0, time - window)
        return self._schedules[node].availability(time, since)

    def lifetime_availability(self, node: NodeKey) -> float:
        """Fraction uptime over the full trace horizon."""
        return self._schedules[node].availability(self.horizon)

    def availabilities(self, until: Optional[float] = None) -> Dict[NodeKey, float]:
        """Raw availabilities of every node measured up to ``until``
        (default: full horizon)."""
        t = self.horizon if until is None else float(until)
        return {key: self._schedules[key].availability(t) for key in self._order}

    def restrict(self, nodes: Iterable[NodeKey]) -> "ChurnTrace":
        """A sub-trace containing only ``nodes`` (order preserved)."""
        wanted = set(nodes)
        missing = wanted - set(self._order)
        if missing:
            raise KeyError(f"unknown nodes: {sorted(map(repr, missing))[:5]}")
        kept = {key: self._schedules[key] for key in self._order if key in wanted}
        return ChurnTrace(kept, self.horizon)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChurnTrace(nodes={self.node_count}, horizon={self.horizon:.0f}s)"
