"""Churn traces: per-node online/offline schedules over simulated time.

The paper injects availability-variation traces from the Overnet p2p
system (1442 hosts, 7 days, 20-minute measurement epochs) into its
simulator.  This module defines the trace representation those
experiments run on:

* :class:`NodeSchedule` — one node's sorted, disjoint online intervals,
  with fraction-uptime ("availability") queries.  Backed by numpy arrays
  so scalar queries are one ``np.searchsorted`` each and batch callers
  can lift the columns straight into a
  :class:`~repro.churn.timeline.ChurnTimeline`.
* :class:`ChurnTrace` — a set of schedules keyed by node, implementing
  the :class:`~repro.sim.network.PresenceOracle` protocol so the network
  can gate delivery on presence.  Population-level and batch queries
  (:meth:`ChurnTrace.online_mask`, :meth:`ChurnTrace.availability_array`)
  answer through a lazily built columnar timeline — one vectorized call
  instead of one bisect per node.

Traces can be built directly from interval lists, from a boolean
epoch × node matrix (the shape measurement studies produce), or from a
compiled scenario timeline; see :meth:`ChurnTrace.from_matrix`,
:meth:`ChurnTrace.from_timeline`, :mod:`repro.churn.overnet` for the
synthetic Overnet-like generator, and :mod:`repro.scenarios` for the
declarative scenario catalogue.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.churn.timeline import ChurnTimeline

__all__ = ["NodeSchedule", "ChurnTrace"]

NodeKey = Hashable
Interval = Tuple[float, float]


def _normalize_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Sort, validate, and merge touching/overlapping intervals."""
    cleaned: List[Interval] = []
    for start, end in sorted((float(s), float(e)) for s, e in intervals):
        if end < start:
            raise ValueError(f"interval end before start: ({start}, {end})")
        if end == start:
            continue  # zero-length sessions carry no information
        if cleaned and start <= cleaned[-1][1]:
            prev_start, prev_end = cleaned[-1]
            cleaned[-1] = (prev_start, max(prev_end, end))
        else:
            cleaned.append((start, end))
    return cleaned


class NodeSchedule:
    """One node's online sessions as half-open intervals ``[start, end)``."""

    __slots__ = ("_starts", "_ends", "_cum_uptime")

    def __init__(self, intervals: Iterable[Interval]):
        cleaned = _normalize_intervals(intervals)
        self._starts = np.array([iv[0] for iv in cleaned], dtype=float)
        self._ends = np.array([iv[1] for iv in cleaned], dtype=float)
        # Cumulative uptime *before* interval i, enabling O(log n) uptime().
        self._cum_uptime = np.zeros(len(cleaned) + 1, dtype=float)
        np.cumsum(self._ends - self._starts, out=self._cum_uptime[1:])

    @classmethod
    def from_arrays(cls, starts: np.ndarray, ends: np.ndarray) -> "NodeSchedule":
        """Trusted fast path: build from already-normalized session arrays
        (sorted, disjoint, non-empty) — e.g. one
        :meth:`~repro.churn.timeline.ChurnTimeline.sessions_of` slice."""
        schedule = cls.__new__(cls)
        schedule._starts = np.ascontiguousarray(starts, dtype=float)
        schedule._ends = np.ascontiguousarray(ends, dtype=float)
        schedule._cum_uptime = np.zeros(schedule._starts.size + 1, dtype=float)
        np.cumsum(schedule._ends - schedule._starts, out=schedule._cum_uptime[1:])
        return schedule

    # ------------------------------------------------------------------
    # Presence
    # ------------------------------------------------------------------
    def is_online(self, time: float) -> bool:
        """Whether the node is online at ``time`` (half-open intervals)."""
        idx = int(self._starts.searchsorted(time, "right")) - 1
        return idx >= 0 and time < self._ends[idx]

    def next_transition(self, time: float) -> Optional[float]:
        """The next instant (> time) at which presence flips, or None."""
        idx = int(self._starts.searchsorted(time, "right")) - 1
        if idx >= 0 and time < self._ends[idx]:
            return float(self._ends[idx])  # currently online; next flip is session end
        nxt = idx + 1
        if nxt < self._starts.size:
            return float(self._starts[nxt])
        return None

    # ------------------------------------------------------------------
    # Uptime / availability
    # ------------------------------------------------------------------
    def uptime(self, until: float, since: float = 0.0) -> float:
        """Seconds online within ``[since, until]``."""
        if until < since:
            raise ValueError(f"until ({until}) must be >= since ({since})")
        return self._uptime_before(until) - self._uptime_before(since)

    def availability(self, until: float, since: float = 0.0) -> float:
        """Fraction uptime over ``[since, until]`` — the paper's ``av(x)``.

        A zero-length window returns the instantaneous presence (1.0 or
        0.0), so early-trace queries stay well-defined.
        """
        span = until - since
        if span <= 0:
            return 1.0 if self.is_online(until) else 0.0
        return self.uptime(until, since) / span

    def _uptime_before(self, time: float) -> float:
        idx = int(self._starts.searchsorted(time, "right")) - 1
        if idx < 0:
            return 0.0
        full = float(self._cum_uptime[idx])
        start, end = float(self._starts[idx]), float(self._ends[idx])
        return full + min(time, end) - start if time > start else full

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def intervals(self) -> Tuple[Interval, ...]:
        return tuple(zip(self._starts.tolist(), self._ends.tolist()))

    @property
    def session_count(self) -> int:
        return int(self._starts.size)

    def session_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(starts, ends)`` columns (normalized, read-only use)."""
        return self._starts, self._ends

    def session_lengths(self) -> List[float]:
        return (self._ends - self._starts).tolist()

    def first_appearance(self) -> Optional[float]:
        return float(self._starts[0]) if self._starts.size else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeSchedule(sessions={self.session_count})"


class _LazyTimelineSchedules:
    """Mapping of node key → :class:`NodeSchedule`, materialized on
    access from a :class:`~repro.churn.timeline.ChurnTimeline` row.

    :meth:`ChurnTrace.from_timeline` hands traces this instead of an
    eager dict so a million-node timeline costs zero schedule objects
    until some scalar query actually touches a node — batch queries all
    answer straight from the timeline and never materialize any.
    """

    __slots__ = ("timeline", "order", "index", "_cache")

    def __init__(self, timeline: ChurnTimeline, order: Tuple[NodeKey, ...]):
        self.timeline = timeline
        self.order = order
        self.index: Dict[NodeKey, int] = {key: i for i, key in enumerate(order)}
        self._cache: Dict[NodeKey, NodeSchedule] = {}

    def __getitem__(self, key: NodeKey) -> NodeSchedule:
        schedule = self._cache.get(key)
        if schedule is None:
            row = self.index[key]  # KeyError propagates for unknowns
            schedule = NodeSchedule.from_arrays(*self.timeline.sessions_of(row))
            self._cache[key] = schedule
        return schedule

    def get(self, key: NodeKey, default=None):
        try:
            return self[key]
        except KeyError:
            return default

    def __contains__(self, key: NodeKey) -> bool:
        return key in self.index

    def __iter__(self):
        return iter(self.order)

    def __len__(self) -> int:
        return len(self.order)


class ChurnTrace:
    """Schedules for a population of nodes; acts as a presence oracle."""

    def __init__(
        self,
        schedules: Dict[NodeKey, NodeSchedule],
        horizon: float,
        timeline: Optional[ChurnTimeline] = None,
    ):
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.horizon = float(horizon)
        if isinstance(schedules, _LazyTimelineSchedules):
            self._schedules = schedules
            self._order: Tuple[NodeKey, ...] = schedules.order
            self._index: Dict[NodeKey, int] = schedules.index
        else:
            self._schedules = dict(schedules)
            self._order = tuple(self._schedules)
            self._index = {key: i for i, key in enumerate(self._order)}
        self._timeline = timeline
        # Lazily built digest64 translation table (see node_indices).
        self._digest_ok: Optional[bool] = None
        self._digest_sorted: Optional[np.ndarray] = None
        self._digest_order: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_matrix(
        cls,
        matrix: np.ndarray,
        node_keys: Sequence[NodeKey],
        epoch_seconds: float,
    ) -> "ChurnTrace":
        """Build a trace from a boolean ``epochs × nodes`` matrix.

        ``matrix[e, i]`` is True when node ``node_keys[i]`` was online
        during epoch ``e``; each epoch spans ``epoch_seconds``.
        """
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.ndim != 2:
            raise ValueError(f"matrix must be 2-D (epochs x nodes), got shape {matrix.shape}")
        if matrix.shape[1] != len(node_keys):
            raise ValueError(
                f"matrix has {matrix.shape[1]} node columns but "
                f"{len(node_keys)} keys were given"
            )
        timeline = ChurnTimeline.from_matrix(matrix, epoch_seconds)
        return cls.from_timeline(timeline, node_keys)

    @classmethod
    def from_timeline(
        cls, timeline: ChurnTimeline, node_keys: Sequence[NodeKey]
    ) -> "ChurnTrace":
        """Build a trace whose scalar *and* batch queries answer from the
        given columnar timeline (node ``i`` of the timeline is keyed by
        ``node_keys[i]``)."""
        if timeline.n_nodes != len(node_keys):
            raise ValueError(
                f"timeline has {timeline.n_nodes} nodes but "
                f"{len(node_keys)} keys were given"
            )
        if len(set(node_keys)) != len(node_keys):
            raise ValueError("node keys must be unique")
        # Schedules materialize lazily per node; batch queries answer from
        # the timeline directly, so most rows never grow a NodeSchedule.
        lazy = _LazyTimelineSchedules(timeline, tuple(node_keys))
        return cls(lazy, horizon=timeline.horizon, timeline=timeline)

    def to_matrix(self, epoch_seconds: float) -> Tuple[np.ndarray, Tuple[NodeKey, ...]]:
        """Sample presence at epoch midpoints back into a boolean matrix."""
        if epoch_seconds <= 0:
            raise ValueError(f"epoch_seconds must be positive, got {epoch_seconds}")
        epochs = int(round(self.horizon / epoch_seconds))
        midpoints = (np.arange(epochs) + 0.5) * epoch_seconds
        return self.timeline.online_mask_matrix(midpoints), self._order

    # ------------------------------------------------------------------
    # Columnar timeline (lazily built; the batch-query backend)
    # ------------------------------------------------------------------
    @property
    def timeline(self) -> ChurnTimeline:
        """The columnar twin of this trace (built once, on first use)."""
        if self._timeline is None:
            columns = [self._schedules[key].session_arrays() for key in self._order]
            counts = np.array([s.size for s, _ in columns], dtype=np.int64)
            self._timeline = ChurnTimeline(
                len(columns),
                self.horizon,
                np.repeat(np.arange(len(columns), dtype=np.int64), counts),
                np.concatenate([s for s, _ in columns]) if columns else np.zeros(0),
                np.concatenate([e for _, e in columns]) if columns else np.zeros(0),
            )
        return self._timeline

    def index_of(self, node: NodeKey) -> int:
        """The timeline row index of ``node`` (raises KeyError if unknown)."""
        return self._index[node]

    def node_indices(self, nodes: Sequence[NodeKey]) -> np.ndarray:
        """Timeline row indices for a batch of keys (raises on unknowns).

        When the keys carry a unique precomputed ``digest64`` (NodeIds
        do), translation runs as one C-level ``searchsorted`` over a
        sorted digest table instead of one dict lookup per key — this
        sits inside every batched oracle query.  Other key types fall
        back to the dict.
        """
        if self._digest_ok is None:
            self._build_digest_index()
        if self._digest_ok:
            try:
                digests = np.fromiter(
                    (node.digest64 for node in nodes),
                    dtype=np.uint64,
                    count=len(nodes),
                )
            except AttributeError:
                pass  # foreign key type queried: let the dict decide
            else:
                pos = self._digest_sorted.searchsorted(digests)
                np.minimum(pos, self._digest_sorted.size - 1, out=pos)
                if (self._digest_sorted[pos] == digests).all():
                    return self._digest_order[pos]
                # an unknown key: fall through for the dict's KeyError
        index = self._index
        return np.fromiter(
            (index[node] for node in nodes), dtype=np.int64, count=len(nodes)
        )

    def _build_digest_index(self) -> None:
        digests = []
        for key in self._order:
            digest = getattr(key, "digest64", None)
            if digest is None:
                self._digest_ok = False
                return
            digests.append(digest)
        table = np.array(digests, dtype=np.uint64)
        order = np.argsort(table)
        table = table[order]
        if not table.size or (table.size > 1 and (table[1:] == table[:-1]).any()):
            self._digest_ok = False
            return
        self._digest_sorted = table
        self._digest_order = order.astype(np.int64)
        self._digest_ok = True

    # ------------------------------------------------------------------
    # PresenceOracle protocol
    # ------------------------------------------------------------------
    def is_online(self, node: NodeKey, time: float) -> bool:
        schedule = self._schedules.get(node)
        return schedule.is_online(time) if schedule is not None else False

    def is_online_array(self, nodes: Sequence[NodeKey], times) -> np.ndarray:
        """Batched :meth:`is_online`: presence of ``nodes[k]`` at
        ``times`` (a scalar or a parallel array of instants) in one
        vectorized timeline query — the call the network's batched
        dispatch layer makes once per send cohort.  Raises ``KeyError``
        on unknown nodes (callers that want the scalar protocol's
        False-for-unknowns fall back to :meth:`is_online`).
        """
        return self.timeline.is_online_array(self.node_indices(nodes), times)

    # ------------------------------------------------------------------
    # Population queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[NodeKey, ...]:
        return self._order

    @property
    def node_count(self) -> int:
        return len(self._order)

    def schedule(self, node: NodeKey) -> NodeSchedule:
        return self._schedules[node]

    def __contains__(self, node: NodeKey) -> bool:
        return node in self._schedules

    def online_mask(self, time: float) -> np.ndarray:
        """Boolean presence of every node at ``time``, aligned to
        :attr:`nodes` — one vectorized timeline pass."""
        return self.timeline.online_mask(time)

    def online_nodes(self, time: float) -> List[NodeKey]:
        mask = self.online_mask(time)
        order = self._order
        return [order[i] for i in np.flatnonzero(mask)]

    def online_count(self, time: float) -> int:
        return int(self.online_mask(time).sum())

    # ------------------------------------------------------------------
    # Availability queries
    # ------------------------------------------------------------------
    def availability(self, node: NodeKey, until: float, since: float = 0.0) -> float:
        """Raw fraction uptime of ``node`` over ``[since, until]``."""
        return self._schedules[node].availability(until, since)

    def windowed_availability(self, node: NodeKey, time: float, window: float) -> float:
        """Fraction uptime over the trailing ``window`` seconds (an "aged"
        availability per Section 3.1's monitoring-service definition)."""
        since = max(0.0, time - window)
        return self._schedules[node].availability(time, since)

    def lifetime_availability(self, node: NodeKey) -> float:
        """Fraction uptime over the full trace horizon."""
        return self._schedules[node].availability(self.horizon)

    def availability_array(
        self, nodes: Sequence[NodeKey], until: float, since: float = 0.0
    ) -> np.ndarray:
        """Batched :meth:`availability` — one vectorized timeline query
        for the whole batch instead of one bisect chain per node."""
        return self.timeline.availability_array(
            self.node_indices(nodes), float(until), float(since)
        )

    def windowed_availability_array(
        self, nodes: Sequence[NodeKey], time: float, window: float
    ) -> np.ndarray:
        """Batched :meth:`windowed_availability`."""
        return self.timeline.windowed_availability_array(
            self.node_indices(nodes), float(time), float(window)
        )

    def availabilities(self, until: Optional[float] = None) -> Dict[NodeKey, float]:
        """Raw availabilities of every node measured up to ``until``
        (default: full horizon)."""
        t = self.horizon if until is None else float(until)
        all_rows = np.arange(self.node_count, dtype=np.int64)
        values = self.timeline.availability_array(all_rows, t)
        return dict(zip(self._order, values.tolist()))

    def restrict(self, nodes: Iterable[NodeKey]) -> "ChurnTrace":
        """A sub-trace containing only ``nodes`` (order preserved)."""
        wanted = set(nodes)
        missing = wanted - set(self._order)
        if missing:
            raise KeyError(f"unknown nodes: {sorted(map(repr, missing))[:5]}")
        kept = {key: self._schedules[key] for key in self._order if key in wanted}
        return ChurnTrace(kept, self.horizon)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChurnTrace(nodes={self.node_count}, horizon={self.horizon:.0f}s)"
