"""Columnar churn timeline: every node's sessions in flat numpy arrays.

:class:`~repro.churn.trace.ChurnTrace` stores one
:class:`~repro.churn.trace.NodeSchedule` per node — the right shape for
scalar per-node queries, and the wrong shape for the batch queries the
protocol hot paths need ("what is the availability of these 60 neighbors
right now?", "who is online at time t?").  :class:`ChurnTimeline` is the
columnar twin: all sessions of all nodes concatenated into three parallel
arrays (node index, session start, session end) in CSR layout, so batch
queries run as a handful of vectorized operations instead of one
bisect-per-node round trip.

Layout invariants (enforced on construction):

* sessions are sorted by ``(node, start)`` and grouped per node —
  ``offsets[i]:offsets[i + 1]`` slices node ``i``'s sessions;
* per node, sessions are disjoint, non-empty, and sorted; touching or
  overlapping input sessions are merged (exactly the normalization
  :class:`~repro.churn.trace.NodeSchedule` applies).

Sessions outside ``[0, horizon]`` are tolerated (scalar
:class:`~repro.churn.trace.ChurnTrace` queries always were), but
:meth:`ChurnTimeline.validate` — which scenario compilation is tested
against — enforces the stricter in-horizon contract.

The subset queries (:meth:`uptime_array`, :meth:`availability_array`,
:meth:`is_online_array`) use an exact vectorized binary search over the
per-node segments — no floating-point key packing — so their answers
match the scalar :class:`~repro.churn.trace.NodeSchedule` branch
semantics bit-for-bit (up to cumulative-sum rounding noise in uptimes,
bounded well below any protocol-visible granularity).
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.util.memmaps import open_array, spill

__all__ = ["ChurnTimeline"]

# Arrays persisted by spill_to()/open(): the session-proportional CSR
# columns plus the derived query-acceleration tables, so open() needs no
# normalization or index-building pass over the data.
_SPILL_ARRAYS = (
    ("node_index", "node_index"),
    ("starts", "starts"),
    ("ends", "ends"),
    ("offsets", "offsets"),
    ("_cum_before", "cum_before"),
    ("_starts_padded", "starts_padded"),
    ("_grid_rank", "grid_rank"),
)


def _merge_node_intervals(
    node_index: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge touching/overlapping sessions per node.

    Input must already be sorted by ``(node, start)``.  The common case
    (generator output, epoch-run extraction) has no overlaps and returns
    the inputs unchanged; only nodes that actually contain an overlap pay
    the python merge, which keeps this exact (no float key packing).
    """
    if starts.size < 2:
        return node_index, starts, ends
    same_node = node_index[1:] == node_index[:-1]
    overlapping = same_node & (starts[1:] <= ends[:-1])
    if not overlapping.any():
        return node_index, starts, ends
    affected = np.unique(node_index[1:][overlapping])
    affected_set = set(affected.tolist())
    keep = ~np.isin(node_index, affected)
    merged_nodes: List[np.ndarray] = [node_index[keep]]
    merged_starts: List[np.ndarray] = [starts[keep]]
    merged_ends: List[np.ndarray] = [ends[keep]]
    for node in affected.tolist():
        mask = node_index == node
        node_starts = starts[mask]
        node_ends = ends[mask]
        out_starts: List[float] = []
        out_ends: List[float] = []
        for s, e in zip(node_starts.tolist(), node_ends.tolist()):
            if out_ends and s <= out_ends[-1]:
                out_ends[-1] = max(out_ends[-1], e)
            else:
                out_starts.append(s)
                out_ends.append(e)
        merged_nodes.append(np.full(len(out_starts), node, dtype=np.int64))
        merged_starts.append(np.array(out_starts, dtype=float))
        merged_ends.append(np.array(out_ends, dtype=float))
    node_index = np.concatenate(merged_nodes)
    starts = np.concatenate(merged_starts)
    ends = np.concatenate(merged_ends)
    order = np.lexsort((starts, node_index))
    return node_index[order], starts[order], ends[order]


class ChurnTimeline:
    """All nodes' online sessions as flat, CSR-grouped numpy arrays."""

    __slots__ = (
        "n_nodes",
        "horizon",
        "node_index",
        "starts",
        "ends",
        "offsets",
        "_cum_before",
        "_starts_padded",
        "_grid_cells",
        "_inv_cell",
        "_grid_rank",
        "_starts_sorted",
        "_ends_sorted",
    )

    def __init__(
        self,
        n_nodes: int,
        horizon: float,
        node_index: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
    ):
        if n_nodes < 0:
            raise ValueError(f"n_nodes must be >= 0, got {n_nodes}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        node_index = np.asarray(node_index, dtype=np.int64)
        starts = np.asarray(starts, dtype=float)
        ends = np.asarray(ends, dtype=float)
        if not (node_index.shape == starts.shape == ends.shape) or starts.ndim != 1:
            raise ValueError("node_index/starts/ends must be parallel 1-D arrays")
        if node_index.size:
            if node_index.min() < 0 or node_index.max() >= n_nodes:
                raise ValueError("node_index out of range")
            if (ends < starts).any():
                raise ValueError("session end before start")
        # Sessions outside [0, horizon] are tolerated (ChurnTrace always
        # accepted such schedules and scalar queries handle them);
        # validate() enforces the stricter scenario-compilation contract.
        # Normalize: sort by (node, start), drop empty sessions, merge
        # touching/overlapping ones (NodeSchedule's normalization).
        nonempty = ends > starts
        node_index, starts, ends = (
            node_index[nonempty], starts[nonempty], ends[nonempty]
        )
        order = np.lexsort((starts, node_index))
        node_index, starts, ends = _merge_node_intervals(
            node_index[order], starts[order], ends[order]
        )
        self.n_nodes = int(n_nodes)
        self.horizon = float(horizon)
        self.node_index = node_index
        self.starts = starts
        self.ends = ends
        counts = np.bincount(node_index, minlength=n_nodes)
        self.offsets = np.zeros(n_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=self.offsets[1:])
        # Cumulative uptime of each node's *earlier* sessions: the global
        # running sum minus the node's segment base.  (Rounding noise is
        # bounded by eps x total uptime — far below protocol granularity.)
        durations = self.ends - self.starts
        running = np.concatenate(([0.0], np.cumsum(durations)))
        self._cum_before = running[:-1] - running[self.offsets[self.node_index]]
        # Grid index accelerating the per-node segment search: the horizon
        # is split into G cells sized so the average cell holds well under
        # one session per node, and ``_grid_rank[i*(G+1) + g]`` counts the
        # node-i sessions whose start falls in cells < g.  A query then
        # binary-searches only the 0–2 sessions of its own cell instead of
        # the node's whole segment.
        total = int(self.starts.size)
        grid = int(np.clip(4 * total // max(n_nodes, 1), 64, 1024)) if total else 1
        self._grid_cells = grid
        cell = self.horizon / grid
        self._inv_cell = 1.0 / cell
        # Out-of-horizon sessions clamp into the edge cells; the binary
        # search stays exact because cell membership only brackets it.
        cells = np.minimum((self.starts * self._inv_cell).astype(np.int64), grid - 1)
        np.maximum(cells, 0, out=cells)
        per_cell = np.bincount(
            self.node_index * grid + cells, minlength=n_nodes * grid
        ).reshape(n_nodes, grid)
        # int32 halves the table footprint (queries hit it with random
        # access, so cache residency matters more than width).
        rank = np.zeros((n_nodes, grid + 1), dtype=np.int32)
        np.cumsum(per_cell, axis=1, out=rank[:, 1:])
        self._grid_rank = rank.ravel()
        self._starts_padded = np.concatenate((self.starts, [np.inf]))
        # Globally time-sorted session edges, built lazily on the first
        # whole-population series query (online_count_series).
        self._starts_sorted: Optional[np.ndarray] = None
        self._ends_sorted: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_interval_lists(
        cls,
        interval_lists: Sequence[Iterable[Tuple[float, float]]],
        horizon: float,
    ) -> "ChurnTimeline":
        """Build from one interval list per node (index = node)."""
        nodes: List[int] = []
        starts: List[float] = []
        ends: List[float] = []
        for i, intervals in enumerate(interval_lists):
            for s, e in intervals:
                nodes.append(i)
                starts.append(float(s))
                ends.append(float(e))
        return cls(
            len(interval_lists),
            horizon,
            np.array(nodes, dtype=np.int64),
            np.array(starts, dtype=float),
            np.array(ends, dtype=float),
        )

    @classmethod
    def from_matrix(cls, matrix: np.ndarray, epoch_seconds: float) -> "ChurnTimeline":
        """Build from a boolean ``epochs x nodes`` presence matrix.

        Run extraction is fully vectorized (one diff over the padded
        matrix), unlike the per-cell python scan
        :meth:`~repro.churn.trace.ChurnTrace.from_matrix` inherited from
        the seed.
        """
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.ndim != 2:
            raise ValueError(f"matrix must be 2-D (epochs x nodes), got {matrix.shape}")
        if epoch_seconds <= 0:
            raise ValueError(f"epoch_seconds must be positive, got {epoch_seconds}")
        epochs, n_nodes = matrix.shape
        padded = np.zeros((epochs + 2, n_nodes), dtype=np.int8)
        padded[1:-1] = matrix
        delta = np.diff(padded, axis=0)
        start_epoch, start_node = np.nonzero(delta == 1)
        end_epoch, end_node = np.nonzero(delta == -1)
        # np.nonzero is epoch-major; re-sort both by (node, epoch) so each
        # node's run starts and ends pair up positionally.
        start_order = np.lexsort((start_epoch, start_node))
        end_order = np.lexsort((end_epoch, end_node))
        return cls(
            n_nodes,
            epochs * epoch_seconds,
            start_node[start_order],
            start_epoch[start_order] * epoch_seconds,
            end_epoch[end_order] * epoch_seconds,
        )

    # ------------------------------------------------------------------
    # Memmap persistence
    # ------------------------------------------------------------------
    def spill_to(self, directory: str) -> "ChurnTimeline":
        """Re-back the session arrays (and derived query tables) with
        ``np.memmap`` files under ``directory``, in place.

        After spilling, the OS pages the columns in and out on demand, so
        a memmapped timeline's resident footprint is bounded by its query
        working set rather than by ``session_count``.  Returns ``self``
        for chaining; :meth:`open` maps the directory back without
        re-running construction-time normalization.
        """
        for attr, name in _SPILL_ARRAYS:
            setattr(self, attr, spill(getattr(self, attr), directory, name))
        with open(os.path.join(directory, "meta.json"), "w") as fh:
            json.dump(
                {
                    "format": "churn-timeline-v1",
                    "n_nodes": self.n_nodes,
                    "horizon": self.horizon,
                    "grid_cells": self._grid_cells,
                },
                fh,
            )
        return self

    @classmethod
    def open(cls, directory: str) -> "ChurnTimeline":
        """Map a :meth:`spill_to` directory back as a read-only timeline.

        No normalization, merging, or index construction happens — the
        persisted derived tables are trusted, which is what makes opening
        a multi-gigabyte timeline O(1) in memory and time.
        """
        with open(os.path.join(directory, "meta.json")) as fh:
            meta = json.load(fh)
        if meta.get("format") != "churn-timeline-v1":
            raise ValueError(f"not a spilled timeline directory: {directory}")
        self = object.__new__(cls)
        self.n_nodes = int(meta["n_nodes"])
        self.horizon = float(meta["horizon"])
        self._grid_cells = int(meta["grid_cells"])
        # Same expression as __init__ so query arithmetic is bit-equal.
        self._inv_cell = 1.0 / (self.horizon / self._grid_cells)
        for attr, name in _SPILL_ARRAYS:
            setattr(self, attr, open_array(directory, name))
        self._starts_sorted = None
        self._ends_sorted = None
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def session_count(self) -> int:
        return int(self.starts.size)

    def sessions_of(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(starts, ends)`` views of one node's sessions."""
        lo, hi = self.offsets[node], self.offsets[node + 1]
        return self.starts[lo:hi], self.ends[lo:hi]

    def session_counts(self) -> np.ndarray:
        """Number of sessions per node."""
        return np.diff(self.offsets)

    # ------------------------------------------------------------------
    # Core vectorized per-node segment search
    # ------------------------------------------------------------------
    def _last_started(self, nodes: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Index of the last session of ``nodes[k]`` with ``start <= times[k]``,
        or ``offsets[node] - 1`` when no session has started yet.

        The batched equivalent of ``bisect_right(starts, t) - 1``: the
        grid index brackets each query to the few sessions of its own
        time cell, then a vectorized binary search resolves the bracket
        exactly.  (A floating-point cell-boundary rounding can misplace
        a query whose time sits within ~1 ulp of a cell edge; the final
        insurance step restores ``starts[pos] <= t`` exactly.)
        """
        grid = self._grid_cells
        g = (times * self._inv_cell).astype(np.int64)
        np.minimum(g, grid - 1, out=g)
        np.maximum(g, 0, out=g)
        row = nodes * (grid + 1) + g
        base = self.offsets[nodes]
        lo = base + self._grid_rank[row]
        hi = base + self._grid_rank[row + 1]
        starts = self._starts_padded
        # Invariant: sessions in [segment_start, lo) have start <= t,
        # sessions in [hi, segment_end) have start > t.
        iters = int(np.max(hi - lo)).bit_length() if nodes.size else 0
        for _ in range(iters):
            cont = lo < hi
            mid = (lo + hi) >> 1
            le = cont & (starts[mid] <= times)
            lo = np.where(le, mid + 1, lo)
            hi = np.where(cont & ~le, mid, hi)
        pos = lo - 1
        bad = (pos >= base) & (starts[pos] > times)
        if bad.any():
            pos = np.where(bad, pos - 1, pos)
        return pos

    def _uptime_before(self, nodes: np.ndarray, times: np.ndarray) -> np.ndarray:
        pos = self._last_started(nodes, times)
        started = pos >= self.offsets[nodes]
        if started.all():
            return self._cum_before[pos] + (
                np.minimum(times, self.ends[pos]) - self.starts[pos]
            )
        out = np.zeros(nodes.shape, dtype=float)
        if started.any():
            p = pos[started]
            t = times[started]
            out[started] = self._cum_before[p] + (
                np.minimum(t, self.ends[p]) - self.starts[p]
            )
        return out

    # ------------------------------------------------------------------
    # Presence queries
    # ------------------------------------------------------------------
    def is_online_array(self, nodes: np.ndarray, times) -> np.ndarray:
        """Presence of ``nodes[k]`` at ``times`` (scalar or parallel array)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        times = np.broadcast_to(np.asarray(times, dtype=float), nodes.shape)
        pos = self._last_started(nodes, times)
        started = pos >= self.offsets[nodes]
        out = np.zeros(nodes.shape, dtype=bool)
        if started.any():
            out[started] = times[started] < self.ends[pos[started]]
        return out

    def online_mask(self, time: float) -> np.ndarray:
        """Boolean presence of *every* node at ``time`` (index-aligned).

        One stabbing pass over the session arrays — O(total sessions),
        which beats a per-node binary search for whole-population
        queries.
        """
        stabbed = (self.starts <= time) & (time < self.ends)
        out = np.zeros(self.n_nodes, dtype=bool)
        out[self.node_index[stabbed]] = True
        return out

    def online_count(self, time: float) -> int:
        return int(self.online_mask(time).sum())

    def online_count_series(self, times: Sequence[float]) -> np.ndarray:
        """Online population at each of ``times``, in one batch.

        A node is online at ``t`` iff some session has ``start <= t <
        end``; per-node sessions are disjoint, so the population count at
        ``t`` is simply (# session starts ``<= t``) − (# session ends
        ``<= t``) — two ``searchsorted`` passes over globally time-sorted
        session edges, with no ``len(times) × n_nodes`` matrix in sight.
        """
        times = np.asarray(times, dtype=float)
        if self._starts_sorted is None:
            self._starts_sorted = np.sort(self.starts)
            self._ends_sorted = np.sort(self.ends)
        begun = np.searchsorted(self._starts_sorted, times, side="right")
        ended = np.searchsorted(self._ends_sorted, times, side="right")
        return (begun - ended).astype(np.int64)

    def online_mask_matrix(self, times: Sequence[float]) -> np.ndarray:
        """``(len(times), n_nodes)`` presence matrix, one vectorized pass.

        Each session covers a contiguous run of (sorted) query times; the
        runs are accumulated as +1/−1 boundary marks per node and
        prefix-summed down the time axis — O(sessions + times × nodes)
        with no per-time stabbing loop.
        """
        times = np.asarray(times, dtype=float)
        n_times = times.size
        out = np.zeros((n_times, self.n_nodes), dtype=bool)
        if n_times == 0 or self.starts.size == 0:
            return out
        order = np.argsort(times, kind="stable")
        sorted_times = times[order]
        first = np.searchsorted(sorted_times, self.starts, side="left")
        last = np.searchsorted(sorted_times, self.ends, side="left")
        covers = last > first  # sessions covering at least one query time
        if covers.any():
            delta = np.zeros((n_times + 1, self.n_nodes), dtype=np.int32)
            np.add.at(delta, (first[covers], self.node_index[covers]), 1)
            np.add.at(delta, (last[covers], self.node_index[covers]), -1)
            out[order] = delta.cumsum(axis=0)[:n_times] > 0
        return out

    # ------------------------------------------------------------------
    # Uptime / availability queries
    # ------------------------------------------------------------------
    def _edge_uptimes(self, nodes: np.ndarray, until, since):
        """``uptime_before`` at both window edges via one combined segment
        search (halves the fixed per-call cost on small batches — the
        refresh path).  Returns ``(uptimes, times)``, both length 2k and
        laid out ``[until..., since...]``; ``until``/``since`` may be
        scalars or length-k arrays."""
        k = nodes.size
        times = np.empty(2 * k)
        times[:k] = until
        times[k:] = since
        return self._uptime_before(np.concatenate((nodes, nodes)), times), times

    def uptime_array(self, nodes: np.ndarray, until, since=0.0) -> np.ndarray:
        """Seconds online within ``[since, until]`` for each queried node."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if np.ndim(until) == 0 and np.ndim(since) == 0:
            if until < since:
                raise ValueError("until must be >= since")
        elif np.any(np.asarray(until) < np.asarray(since)):
            raise ValueError("until must be >= since")
        both, _ = self._edge_uptimes(nodes, until, since)
        k = nodes.size
        return both[:k] - both[k:]

    def availability_array(self, nodes: np.ndarray, until, since=0.0) -> np.ndarray:
        """Fraction uptime over ``[since, until]`` — the paper's ``av(x)``.

        Zero-length windows return instantaneous presence, matching
        :meth:`~repro.churn.trace.NodeSchedule.availability`.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        k = nodes.size
        both, times = self._edge_uptimes(nodes, until, since)
        span = times[:k] - times[k:]
        positive = span > 0
        if positive.all():
            return (both[:k] - both[k:]) / span
        out = np.zeros(k, dtype=float)
        np.divide(both[:k] - both[k:], span, out=out, where=positive)
        degenerate = ~positive
        out[degenerate] = self.is_online_array(
            nodes[degenerate], times[:k][degenerate]
        ).astype(float)
        return out

    def windowed_availability_array(
        self, nodes: np.ndarray, time: float, window: float
    ) -> np.ndarray:
        """Fraction uptime over the trailing ``window`` seconds (Section
        3.1's "aged" availability), batched."""
        since = max(0.0, float(time) - float(window))
        return self.availability_array(nodes, float(time), since)

    def availability_matrix(
        self, times: Sequence[float], window: Optional[float] = None
    ) -> np.ndarray:
        """``(len(times), n_nodes)`` availability matrix.

        ``window=None`` gives raw availabilities over ``[0, t]`` per row;
        otherwise each row is the trailing-window ("aged") availability.
        """
        times = np.asarray(times, dtype=float)
        all_nodes = np.arange(self.n_nodes, dtype=np.int64)
        out = np.zeros((times.size, self.n_nodes), dtype=float)
        for row, t in enumerate(times.tolist()):
            if window is None:
                out[row] = self.availability_array(all_nodes, t)
            else:
                out[row] = self.windowed_availability_array(all_nodes, t, window)
        return out

    def lifetime_availability_array(self) -> np.ndarray:
        """Fraction uptime over the full horizon, for every node.

        Session time outside ``[0, horizon]`` does not count, matching
        ``NodeSchedule.availability(horizon)``.
        """
        clipped = np.minimum(self.ends, self.horizon) - np.maximum(self.starts, 0.0)
        totals = np.bincount(
            self.node_index, weights=np.maximum(clipped, 0.0), minlength=self.n_nodes
        )
        return totals / self.horizon

    # ------------------------------------------------------------------
    # Structural checks / conversions
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Assert the layout invariants (property tests call this)."""
        assert self.offsets.shape == (self.n_nodes + 1,)
        assert self.offsets[0] == 0 and self.offsets[-1] == self.starts.size
        assert (np.diff(self.offsets) >= 0).all()
        if not self.starts.size:
            return
        assert (self.ends > self.starts).all(), "empty session survived"
        assert self.starts.min() >= 0.0
        assert self.ends.max() <= self.horizon + 1e-9
        expected = np.repeat(
            np.arange(self.n_nodes, dtype=np.int64), np.diff(self.offsets)
        )
        assert (self.node_index == expected).all(), "CSR grouping broken"
        same_node = self.node_index[1:] == self.node_index[:-1]
        assert (
            self.starts[1:][same_node] > self.ends[:-1][same_node]
        ).all(), "sessions not disjoint/sorted within a node"

    def to_trace(self, node_keys: Optional[Sequence] = None):
        """Materialize a :class:`~repro.churn.trace.ChurnTrace` backed by
        this timeline (scalar and batch queries stay consistent)."""
        from repro.churn.trace import ChurnTrace

        if node_keys is None:
            node_keys = list(range(self.n_nodes))
        return ChurnTrace.from_timeline(self, node_keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChurnTimeline(nodes={self.n_nodes}, sessions={self.session_count}, "
            f"horizon={self.horizon:.0f}s)"
        )
