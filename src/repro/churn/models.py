"""Stochastic churn models that generate epoch-level presence.

Each node is a two-state (online/offline) Markov chain sampled once per
measurement epoch, parameterized by its long-run target availability and
its mean online-session length.  An optional diurnal profile modulates
the chain so the online population swells and shrinks with time of day —
the qualitative pattern p2p measurement studies (including the Overnet
study the paper uses) report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.util.validation import check_positive, check_probability

__all__ = ["MarkovChurnModel", "DiurnalProfile", "sample_epoch_matrix", "scaled_session_epochs"]


@dataclass(frozen=True)
class DiurnalProfile:
    """Sinusoidal day/night modulation of the probability of being online.

    ``amplitude`` ∈ [0, 1) scales a cosine with a 24-hour period;
    ``peak_hour`` places its maximum.  The multiplier applied to a node's
    on-probability at epoch time ``t`` is ``1 + amplitude·cos(...)``,
    normalized to keep the daily mean multiplier at 1 so long-run
    availabilities stay calibrated.
    """

    amplitude: float = 0.0
    peak_hour: float = 21.0
    period_seconds: float = 86400.0

    def __post_init__(self):
        check_probability(self.amplitude, "diurnal amplitude")
        check_positive(self.period_seconds, "diurnal period")

    def multiplier(self, time_seconds: float) -> float:
        """Multiplier for the on-probability at an absolute trace time."""
        if self.amplitude == 0.0:
            return 1.0
        phase = 2.0 * math.pi * (
            (time_seconds / self.period_seconds) - (self.peak_hour * 3600.0 / self.period_seconds)
        )
        return 1.0 + self.amplitude * math.cos(phase)


class MarkovChurnModel:
    """Per-node two-state Markov chain over measurement epochs.

    Parameters
    ----------
    availability:
        Target long-run fraction of epochs online, in (0, 1).
    mean_online_epochs:
        Mean length of an online run, in epochs (>= 1).  Together with
        ``availability`` this fixes both transition probabilities:
        ``p_off = 1/mean_online_epochs`` (leave the online state) and,
        from stationarity ``a·p_off = (1-a)·p_on``,
        ``p_on = a·p_off/(1-a)`` (join from offline), clamped to [0, 1].
    """

    def __init__(self, availability: float, mean_online_epochs: float = 6.0):
        if not 0.0 < availability < 1.0:
            # Degenerate nodes (always on / always off) are handled exactly.
            if availability not in (0.0, 1.0):
                raise ValueError(
                    f"availability must be in [0, 1], got {availability!r}"
                )
        check_positive(mean_online_epochs, "mean_online_epochs")
        if mean_online_epochs < 1.0:
            raise ValueError(
                f"mean_online_epochs must be >= 1 epoch, got {mean_online_epochs!r}"
            )
        self.availability = float(availability)
        self.mean_online_epochs = float(mean_online_epochs)
        if availability in (0.0, 1.0):
            self.p_leave_online = 0.0
            self.p_join_from_offline = 0.0
        else:
            self.p_leave_online = 1.0 / self.mean_online_epochs
            self.p_join_from_offline = min(
                1.0, self.availability * self.p_leave_online / (1.0 - self.availability)
            )

    def sample_presence(
        self,
        epochs: int,
        rng: np.random.Generator,
        epoch_seconds: float = 1200.0,
        diurnal: Optional[DiurnalProfile] = None,
    ) -> np.ndarray:
        """Sample a boolean presence vector of length ``epochs``."""
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        out = np.zeros(epochs, dtype=bool)
        if self.availability == 0.0:
            return out
        if self.availability == 1.0:
            out[:] = True
            return out
        uniforms = rng.random(epochs)
        online = uniforms[0] < self.availability  # stationary initial state
        out[0] = online
        for e in range(1, epochs):
            mult = diurnal.multiplier(e * epoch_seconds) if diurnal is not None else 1.0
            if online:
                # Day-time boost lowers the chance of leaving; clamp keeps it a probability.
                p_leave = min(1.0, max(0.0, self.p_leave_online / mult))
                online = uniforms[e] >= p_leave
            else:
                p_join = min(1.0, max(0.0, self.p_join_from_offline * mult))
                online = uniforms[e] < p_join
            out[e] = online
        return out


def scaled_session_epochs(
    availability: float, base_epochs: float, cap_epochs: float
) -> float:
    """Mean online-session length as a function of availability.

    Measurement studies (including the Overnet data the paper uses) find
    that high-availability hosts stay up for long stretches while
    low-availability hosts flap: churn is concentrated in the unstable
    population.  We model mean session length as
    ``base / (1 − a)`` (capped): a 0.5-availability node averages
    ``2·base`` epochs per session, a 0.9-availability node ``10·base``.
    """
    if availability >= 1.0:
        return cap_epochs
    scaled = base_epochs / max(1.0 - availability, 1e-6)
    return float(min(max(scaled, base_epochs), cap_epochs))


def sample_epoch_matrix(
    availabilities: Sequence[float],
    epochs: int,
    rng: np.random.Generator,
    mean_online_epochs: float = 3.0,
    epoch_seconds: float = 1200.0,
    diurnal: Optional[DiurnalProfile] = None,
    diurnal_fraction: float = 0.0,
    session_scaling: bool = True,
) -> np.ndarray:
    """Sample an ``epochs × nodes`` presence matrix.

    ``diurnal_fraction`` of the nodes (chosen at random) follow the
    diurnal profile; the rest churn time-homogeneously.  Measurement
    studies find only part of a p2p population is diurnal.

    With ``session_scaling`` (default), each node's mean session length
    grows with its availability per :func:`scaled_session_epochs` —
    stable hosts stay up for long stretches, so the instantaneous
    probability that a high-availability host is online matches its
    long-run availability even over day-scale windows.
    """
    check_probability(diurnal_fraction, "diurnal_fraction")
    n = len(availabilities)
    matrix = np.zeros((epochs, n), dtype=bool)
    diurnal_mask = rng.random(n) < diurnal_fraction if diurnal is not None else np.zeros(n, dtype=bool)
    cap = max(float(epochs) / 3.0, mean_online_epochs)
    for i, availability in enumerate(availabilities):
        if session_scaling:
            mean_epochs = scaled_session_epochs(availability, mean_online_epochs, cap)
        else:
            mean_epochs = mean_online_epochs
        model = MarkovChurnModel(availability, mean_online_epochs=mean_epochs)
        profile = diurnal if diurnal_mask[i] else None
        matrix[:, i] = model.sample_presence(
            epochs, rng, epoch_seconds=epoch_seconds, diurnal=profile
        )
    return matrix
