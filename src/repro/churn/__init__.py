"""Churn substrate: traces, the columnar timeline, stochastic models,
the synthetic Overnet generator, persistence, and statistics."""

from repro.churn.loader import (
    TRACE_MODELS,
    generate_model_trace,
    load_trace_npz,
    load_trace_text,
    save_trace_npz,
    save_trace_text,
)
from repro.churn.models import DiurnalProfile, MarkovChurnModel, sample_epoch_matrix
from repro.churn.overnet import (
    DEFAULT_MIXTURE,
    OVERNET_EPOCH_SECONDS,
    OVERNET_EPOCHS,
    OVERNET_HOSTS,
    BetaComponent,
    BetaMixture,
    OvernetTraceConfig,
    generate_overnet_trace,
    sample_availabilities,
)
from repro.churn.stats import (
    TraceSummary,
    availability_samples,
    churn_events_per_epoch,
    online_availability_samples,
    online_population_series,
    summarize_trace,
)
from repro.churn.timeline import ChurnTimeline
from repro.churn.trace import ChurnTrace, NodeSchedule

__all__ = [
    "ChurnTrace",
    "ChurnTimeline",
    "NodeSchedule",
    "MarkovChurnModel",
    "DiurnalProfile",
    "sample_epoch_matrix",
    "BetaComponent",
    "BetaMixture",
    "DEFAULT_MIXTURE",
    "OvernetTraceConfig",
    "generate_overnet_trace",
    "sample_availabilities",
    "OVERNET_HOSTS",
    "OVERNET_EPOCHS",
    "OVERNET_EPOCH_SECONDS",
    "generate_model_trace",
    "TRACE_MODELS",
    "save_trace_npz",
    "load_trace_npz",
    "save_trace_text",
    "load_trace_text",
    "TraceSummary",
    "summarize_trace",
    "availability_samples",
    "online_availability_samples",
    "online_population_series",
    "churn_events_per_epoch",
]
