"""Trace persistence: save/load epoch matrices.

Two formats are supported:

* **NPZ** (binary, compact) — the epoch matrix plus metadata arrays.
* **Text** (human-readable, diff-able) — a header line followed by one
  ``0``/``1`` row per epoch.  This is also the drop-in format for a real
  Overnet trace should one be obtained: one column per host, one row per
  20-minute probe.

Round-tripping through either format preserves the epoch matrix exactly.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.churn.trace import ChurnTrace

__all__ = [
    "save_trace_npz",
    "load_trace_npz",
    "save_trace_text",
    "load_trace_text",
    "generate_model_trace",
    "TRACE_MODELS",
]

#: churn-model name -> registered scenario realizing it (``repro trace
#: --model`` dispatch; "overnet" routes to the dedicated generator).
TRACE_MODELS = {
    "overnet": None,
    "weibull": "weibull-lifetimes",
    "pareto": "pareto-heavy-tail",
    "diurnal": "diurnal",
}


def generate_model_trace(
    model: str, hosts: int, epochs: int, seed: int = 0,
    epoch_seconds: Optional[float] = None,
) -> ChurnTrace:
    """Generate a trace from one of the named churn models.

    ``"overnet"`` uses the calibrated synthetic Overnet generator
    (:func:`repro.churn.overnet.generate_overnet_trace`); the other
    models compile the corresponding registered scenario
    (:mod:`repro.scenarios.registry`) at the requested dimensions.
    """
    if model not in TRACE_MODELS:
        raise ValueError(f"unknown trace model {model!r}; pick from {sorted(TRACE_MODELS)}")
    if epoch_seconds is None:
        from repro.churn.overnet import OVERNET_EPOCH_SECONDS

        epoch_seconds = OVERNET_EPOCH_SECONDS
    if model == "overnet":
        from repro.churn.overnet import OvernetTraceConfig, generate_overnet_trace

        config = OvernetTraceConfig(
            hosts=hosts, epochs=epochs, epoch_seconds=epoch_seconds
        )
        return generate_overnet_trace(config=config, seed=seed)
    from repro.scenarios.registry import get_scenario

    compiled = get_scenario(TRACE_MODELS[model]).compile(
        hosts=hosts, epochs=epochs, epoch_seconds=epoch_seconds, seed=seed
    )
    return compiled.to_trace()

PathLike = Union[str, "os.PathLike[str]"]

_TEXT_MAGIC = "avmem-trace-v1"


def save_trace_npz(path: PathLike, trace: ChurnTrace, epoch_seconds: float) -> None:
    """Save ``trace`` as an NPZ epoch matrix sampled at ``epoch_seconds``."""
    matrix, keys = trace.to_matrix(epoch_seconds)
    np.savez_compressed(
        path,
        matrix=matrix,
        node_keys=np.array([str(k) for k in keys]),
        epoch_seconds=np.array([epoch_seconds]),
    )


def load_trace_npz(path: PathLike) -> ChurnTrace:
    """Load a trace saved by :func:`save_trace_npz`.

    Node keys come back as strings (NPZ cannot persist arbitrary Python
    keys); callers that need richer keys should re-map with
    :meth:`ChurnTrace.from_matrix` themselves.
    """
    with np.load(path, allow_pickle=False) as data:
        matrix = data["matrix"]
        keys = [str(k) for k in data["node_keys"]]
        epoch_seconds = float(data["epoch_seconds"][0])
    return ChurnTrace.from_matrix(matrix, keys, epoch_seconds)


def save_trace_text(path: PathLike, trace: ChurnTrace, epoch_seconds: float) -> None:
    """Save ``trace`` in the documented text format."""
    matrix, keys = trace.to_matrix(epoch_seconds)
    epochs, n = matrix.shape
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"{_TEXT_MAGIC} epochs={epochs} nodes={n} epoch_seconds={epoch_seconds}\n")
        fh.write("# one column per node, one row per epoch; 1=online\n")
        fh.write(" ".join(str(k) for k in keys) + "\n")
        for e in range(epochs):
            fh.write("".join("1" if v else "0" for v in matrix[e]) + "\n")


def _parse_header(line: str) -> Tuple[int, int, float]:
    parts = line.strip().split()
    if not parts or parts[0] != _TEXT_MAGIC:
        raise ValueError(f"not an AVMEM trace file (bad magic in {line!r})")
    fields = dict(p.split("=", 1) for p in parts[1:])
    try:
        return int(fields["epochs"]), int(fields["nodes"]), float(fields["epoch_seconds"])
    except KeyError as exc:
        raise ValueError(f"trace header missing field: {exc}") from exc


def load_trace_text(path: PathLike) -> ChurnTrace:
    """Load a trace saved by :func:`save_trace_text`."""
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline()
        epochs, n_nodes, epoch_seconds = _parse_header(header)
        keys: Sequence[str] = ()
        rows: List[List[bool]] = []
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if not keys:
                keys = line.split()
                if len(keys) != n_nodes:
                    raise ValueError(
                        f"header promises {n_nodes} nodes but key row has {len(keys)}"
                    )
                continue
            if len(line) != n_nodes:
                raise ValueError(
                    f"epoch row has {len(line)} columns, expected {n_nodes}: {line[:40]!r}…"
                )
            rows.append([c == "1" for c in line])
    if len(rows) != epochs:
        raise ValueError(f"header promises {epochs} epochs but file has {len(rows)}")
    matrix = np.array(rows, dtype=bool)
    return ChurnTrace.from_matrix(matrix, list(keys), epoch_seconds)
