"""Trace statistics: availability histograms, population series, churn rates.

These drive Fig 2(a) (availability distribution of online nodes) and the
trace-sanity assertions in the test suite, and supply the discretized
sample from which :class:`repro.core.availability.AvailabilityPdf` is
fit — the paper's "PDF collected and analyzed offline by a crawler".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.churn.trace import ChurnTrace

__all__ = [
    "TraceSummary",
    "summarize_trace",
    "availability_samples",
    "online_availability_samples",
    "online_population_series",
    "online_population_series_scalar",
    "churn_events_per_epoch",
    "churn_events_per_epoch_scalar",
]

NodeKey = Hashable


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate statistics of one churn trace."""

    node_count: int
    horizon: float
    mean_availability: float
    median_availability: float
    fraction_below_030: float
    mean_online_population: float
    mean_session_seconds: float
    total_sessions: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "node_count": float(self.node_count),
            "horizon": self.horizon,
            "mean_availability": self.mean_availability,
            "median_availability": self.median_availability,
            "fraction_below_030": self.fraction_below_030,
            "mean_online_population": self.mean_online_population,
            "mean_session_seconds": self.mean_session_seconds,
            "total_sessions": float(self.total_sessions),
        }


def availability_samples(trace: ChurnTrace, until: Optional[float] = None) -> np.ndarray:
    """Per-host raw availabilities measured up to ``until`` (default horizon)."""
    values = trace.availabilities(until)
    return np.array([values[k] for k in trace.nodes], dtype=float)


def online_availability_samples(trace: ChurnTrace, time: float) -> np.ndarray:
    """Availabilities (measured up to ``time``) of the nodes online at ``time``.

    This is exactly the population Fig 2(a) histograms.
    """
    online = trace.online_nodes(time)
    return np.array([trace.availability(node, time) for node in online], dtype=float)


def online_population_series(
    trace: ChurnTrace, sample_seconds: float
) -> Tuple[np.ndarray, np.ndarray]:
    """(times, online-counts) sampled every ``sample_seconds``.

    Answers through the columnar timeline's
    :meth:`~repro.churn.timeline.ChurnTimeline.online_count_series` —
    two ``searchsorted`` passes for the whole series instead of one
    population stab per sample.  :func:`online_population_series_scalar`
    is the per-sample fallback it is parity-tested against.
    """
    if sample_seconds <= 0:
        raise ValueError(f"sample_seconds must be positive, got {sample_seconds}")
    times = np.arange(0.0, trace.horizon + 1e-9, sample_seconds)
    counts = trace.timeline.online_count_series(times).astype(float)
    return times, counts


def online_population_series_scalar(
    trace: ChurnTrace, sample_seconds: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-sample fallback for :func:`online_population_series` (kept for
    parity testing and for presence oracles without a timeline)."""
    if sample_seconds <= 0:
        raise ValueError(f"sample_seconds must be positive, got {sample_seconds}")
    times = np.arange(0.0, trace.horizon + 1e-9, sample_seconds)
    counts = np.array([trace.online_count(t) for t in times], dtype=float)
    return times, counts


def churn_events_per_epoch(trace: ChurnTrace, epoch_seconds: float) -> np.ndarray:
    """Number of presence flips (joins + leaves) in each epoch.

    Presence is sampled at epoch midpoints through the timeline's
    vectorized :meth:`~repro.churn.timeline.ChurnTimeline.online_mask_matrix`
    batch path; :func:`churn_events_per_epoch_scalar` is the per-node
    fallback it is parity-tested against.
    """
    matrix, _ = trace.to_matrix(epoch_seconds)
    if matrix.shape[0] < 2:
        return np.zeros(0, dtype=int)
    flips = matrix[1:] != matrix[:-1]
    return flips.sum(axis=1)


def churn_events_per_epoch_scalar(
    trace: ChurnTrace, epoch_seconds: float
) -> np.ndarray:
    """Per-node scalar fallback for :func:`churn_events_per_epoch`."""
    if epoch_seconds <= 0:
        raise ValueError(f"epoch_seconds must be positive, got {epoch_seconds}")
    epochs = int(round(trace.horizon / epoch_seconds))
    if epochs < 2:
        return np.zeros(0, dtype=int)
    midpoints = (np.arange(epochs) + 0.5) * epoch_seconds
    flips = np.zeros(epochs - 1, dtype=np.int64)
    for node in trace.nodes:
        schedule = trace.schedule(node)
        presence = np.array(
            [schedule.is_online(t) for t in midpoints], dtype=bool
        )
        flips += presence[1:] != presence[:-1]
    return flips


def summarize_trace(trace: ChurnTrace, population_samples: int = 64) -> TraceSummary:
    """Compute a :class:`TraceSummary` (used by tests and the CLI)."""
    avail = availability_samples(trace)
    sample_dt = trace.horizon / max(1, population_samples)
    __, counts = online_population_series(trace, sample_dt)
    session_lengths: List[float] = []
    total_sessions = 0
    for node in trace.nodes:
        lengths = trace.schedule(node).session_lengths()
        session_lengths.extend(lengths)
        total_sessions += len(lengths)
    return TraceSummary(
        node_count=trace.node_count,
        horizon=trace.horizon,
        mean_availability=float(avail.mean()) if avail.size else float("nan"),
        median_availability=float(np.median(avail)) if avail.size else float("nan"),
        fraction_below_030=float((avail < 0.30).mean()) if avail.size else float("nan"),
        mean_online_population=float(counts.mean()) if counts.size else float("nan"),
        mean_session_seconds=(
            float(np.mean(session_lengths)) if session_lengths else float("nan")
        ),
        total_sessions=total_sessions,
    )
