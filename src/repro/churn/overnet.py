"""Synthetic Overnet-like churn traces.

The paper injects the Overnet availability traces of Bhagwan, Savage and
Voelker (IPTPS 2003): **1442 hosts probed every 20 minutes for 7 days**.
That data set is not redistributable and is unavailable offline, so this
module generates a synthetic trace calibrated to the statistics the paper
(and the measurement study) report:

* ~50 % of hosts have long-run availability below 0.3 — the exact figure
  the paper quotes ("in the Overnet p2p system 50% of hosts have a 10-day
  availability lower than 30%");
* a heavily skewed availability distribution with a large low-availability
  mass and a small nearly-always-on population (Fig 2a's shape);
* an online population of roughly 400–500 of the 1442 hosts at any time
  (Fig 2's snapshot has 442 online nodes);
* epoch-level churn: sessions last a few epochs on average, giving tens of
  join/leave events per epoch across the population.

Host availabilities are drawn from a two-component Beta mixture
(:data:`DEFAULT_MIXTURE`); presence is then sampled per host from the
:class:`~repro.churn.models.MarkovChurnModel` with the mixture value as
its stationary availability.  See docs/architecture.md
("Churn and availability ground truth") for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.churn.models import DiurnalProfile, sample_epoch_matrix
from repro.churn.trace import ChurnTrace
from repro.util.randomness import fallback_rng
from repro.util.validation import check_positive, check_probability

__all__ = [
    "BetaComponent",
    "BetaMixture",
    "DEFAULT_MIXTURE",
    "OvernetTraceConfig",
    "generate_overnet_trace",
    "sample_availabilities",
]

#: Trace dimensions from the paper: 1442 hosts, 7 days at 20-minute epochs.
OVERNET_HOSTS = 1442
OVERNET_EPOCHS = 7 * 24 * 3  # 504 twenty-minute epochs
OVERNET_EPOCH_SECONDS = 1200.0


@dataclass(frozen=True)
class BetaComponent:
    """One Beta(α, β) component with a mixture weight."""

    weight: float
    alpha: float
    beta: float

    def __post_init__(self):
        check_probability(self.weight, "mixture weight")
        check_positive(self.alpha, "alpha")
        check_positive(self.beta, "beta")


@dataclass(frozen=True)
class BetaMixture:
    """A mixture of Beta distributions over [0, 1]."""

    components: Tuple[BetaComponent, ...]

    def __post_init__(self):
        total = sum(c.weight for c in self.components)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"mixture weights must sum to 1, got {total}")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` availabilities in (0, 1)."""
        weights = np.array([c.weight for c in self.components])
        choices = rng.choice(len(self.components), size=n, p=weights)
        out = np.empty(n, dtype=float)
        for idx, component in enumerate(self.components):
            mask = choices == idx
            count = int(mask.sum())
            if count:
                out[mask] = rng.beta(component.alpha, component.beta, size=count)
        # Keep strictly inside (0, 1): the Markov model treats exact 0/1 as
        # degenerate always-off/always-on nodes, which probes never report.
        return np.clip(out, 1e-4, 1.0 - 1e-4)


#: Calibrated so that ≈50 % of hosts fall below availability 0.3 and a small
#: tail is nearly always on (verified by tests/test_overnet.py).
DEFAULT_MIXTURE = BetaMixture(
    components=(
        BetaComponent(weight=0.88, alpha=0.85, beta=2.2),
        BetaComponent(weight=0.12, alpha=6.0, beta=1.4),
    )
)


def sample_availabilities(
    n: int,
    rng: np.random.Generator,
    mixture: BetaMixture = DEFAULT_MIXTURE,
) -> np.ndarray:
    """Draw per-host long-run availabilities from the calibrated mixture."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return mixture.sample(n, rng)


@dataclass(frozen=True)
class OvernetTraceConfig:
    """Knobs for the synthetic Overnet trace generator.

    Defaults reproduce the paper's trace dimensions exactly.
    """

    hosts: int = OVERNET_HOSTS
    epochs: int = OVERNET_EPOCHS
    epoch_seconds: float = OVERNET_EPOCH_SECONDS
    mean_online_epochs: float = 3.0
    session_scaling: bool = True
    diurnal_amplitude: float = 0.3
    diurnal_fraction: float = 0.4
    mixture: BetaMixture = DEFAULT_MIXTURE

    def __post_init__(self):
        if self.hosts <= 0:
            raise ValueError(f"hosts must be positive, got {self.hosts}")
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        check_positive(self.epoch_seconds, "epoch_seconds")
        check_probability(self.diurnal_amplitude, "diurnal_amplitude")
        check_probability(self.diurnal_fraction, "diurnal_fraction")

    @property
    def horizon(self) -> float:
        return self.epochs * self.epoch_seconds


def generate_overnet_trace(
    node_keys: Optional[Sequence] = None,
    config: Optional[OvernetTraceConfig] = None,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> ChurnTrace:
    """Generate a synthetic Overnet-like :class:`ChurnTrace`.

    Parameters
    ----------
    node_keys:
        Keys for the hosts (default: ``range(config.hosts)``).  Length
        must match ``config.hosts`` when both are given.
    config:
        Trace dimensions and churn parameters (paper defaults).
    rng / seed:
        Either an explicit generator or a seed (mutually exclusive).
    """
    config = config if config is not None else OvernetTraceConfig()
    if rng is not None and seed is not None:
        raise ValueError("pass either rng or seed, not both")
    if rng is None:
        rng = fallback_rng(0 if seed is None else seed)
    if node_keys is None:
        node_keys = list(range(config.hosts))
    elif len(node_keys) != config.hosts:
        raise ValueError(
            f"{len(node_keys)} node keys given but config.hosts={config.hosts}"
        )
    availabilities = sample_availabilities(config.hosts, rng, config.mixture)
    diurnal = (
        DiurnalProfile(amplitude=config.diurnal_amplitude)
        if config.diurnal_amplitude > 0
        else None
    )
    matrix = sample_epoch_matrix(
        availabilities,
        epochs=config.epochs,
        rng=rng,
        mean_online_epochs=config.mean_online_epochs,
        epoch_seconds=config.epoch_seconds,
        diurnal=diurnal,
        diurnal_fraction=config.diurnal_fraction,
        session_scaling=config.session_scaling,
    )
    return ChurnTrace.from_matrix(matrix, node_keys, config.epoch_seconds)
