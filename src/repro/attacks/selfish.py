"""Selfish-node behaviours at the operation level.

Where :mod:`repro.attacks.flooding` measures predicate-level acceptance
rates, this module stages the behaviour itself: a selfish node that
enumerates every host it has heard of (its slivers plus its coarse
view — and optionally a crawled host list) and sprays a message at all
of them, hoping for an audience beyond its legitimate out-neighbors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.core.ids import NodeId
from repro.core.node import AvmemNode
from repro.core.predicates import AvmemPredicate

__all__ = ["SprayOutcome", "spray_attack"]

TruthFn = Callable[[NodeId], float]


@dataclass(frozen=True)
class SprayOutcome:
    """What a spray attack bought the attacker."""

    attacker: NodeId
    targets_tried: int
    accepted_total: int
    accepted_illegitimate: int  # accepted despite ground-truth M(x,y)=0
    legitimate_targets: int  # ground-truth out-neighbors among targets

    @property
    def illegitimate_audience_rate(self) -> float:
        """Fraction of non-neighbor targets that accepted — the attack's
        yield (Fig 5's per-attacker quantity)."""
        illegit = self.targets_tried - self.legitimate_targets
        if illegit == 0:
            return float("nan")
        return self.accepted_illegitimate / illegit


def spray_attack(
    attacker: AvmemNode,
    nodes: Dict[NodeId, AvmemNode],
    predicate: AvmemPredicate,
    truth: TruthFn,
    extra_known: Optional[Iterable[NodeId]] = None,
    cushion: float = 0.0,
) -> SprayOutcome:
    """Stage a spray: the attacker contacts everyone it knows about.

    The known set is its membership lists plus its coarse view plus
    ``extra_known`` (modeling a crawler feeding the attacker addresses).
    Each online target verifies the claimed relationship.
    """
    known: Set[NodeId] = set(attacker.lists.neighbor_ids())
    known.update(attacker.coarse_view.view(attacker.id))
    if extra_known is not None:
        known.update(extra_known)
    known.discard(attacker.id)

    from repro.attacks.flooding import _ground_truth_member  # shared check

    tried = 0
    accepted_total = 0
    accepted_illegit = 0
    legit = 0
    for target_id in sorted(known):
        target = nodes.get(target_id)
        if target is None or not target.online:
            continue
        tried += 1
        is_legit = _ground_truth_member(predicate, truth, attacker.id, target_id)
        if is_legit:
            legit += 1
        if target.verifier.accepts(attacker.id, cushion=cushion):
            accepted_total += 1
            if not is_legit:
                accepted_illegit += 1
    return SprayOutcome(
        attacker=attacker.id,
        targets_tried=tried,
        accepted_total=accepted_total,
        accepted_illegitimate=accepted_illegit,
        legitimate_targets=legit,
    )
