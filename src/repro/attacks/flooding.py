"""The Section 4.1 attack analysis experiments.

**Flooding attack (Fig 5).**  A selfish node sprays a message at every
host it can enumerate, claiming to be an in-neighbor.  Each target
verifies the AVMEM predicate with its local (cached, possibly noisy)
availability knowledge.  The measured quantity is the fraction of the
attacker's *non-neighbors* (by ground truth) that nevertheless accept —
the audience a selfish node can illegitimately buy.

**Legitimate rejection rate (Fig 6).**  The flip side: for genuinely
valid relationships (ground-truth ``M(x, y) = 1``), how often does the
recipient's stale/inconsistent view make it reject?  The cushion
parameter trades the two failure modes against each other.

Both experiments average over attackers/senders grouped into 0.1-wide
availability bands, exactly as the paper's figures plot them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ids import NodeId
from repro.core.node import AvmemNode
from repro.core.predicates import AvmemPredicate, NodeDescriptor
from repro.util.randomness import fallback_rng

__all__ = [
    "BandedRates",
    "flooding_attack_experiment",
    "legitimate_rejection_experiment",
]

TruthFn = Callable[[NodeId], float]


@dataclass
class BandedRates:
    """Per-availability-band averaged rates (the Figs 5-6 series)."""

    cushion: float
    #: band lower edge (0.0, 0.1, …) -> mean rate across senders in band
    band_rates: Dict[float, float] = field(default_factory=dict)
    #: per-sender raw rates, for scatter/debugging
    sender_rates: Dict[NodeId, float] = field(default_factory=dict)

    @property
    def overall(self) -> float:
        values = list(self.sender_rates.values())
        return float(np.mean(values)) if values else float("nan")

    @property
    def max_band_rate(self) -> float:
        values = list(self.band_rates.values())
        return max(values) if values else float("nan")

    def rows(self) -> List[Tuple[float, float]]:
        """Sorted ``(band_lo, rate)`` rows for reports."""
        return sorted(self.band_rates.items())


def _band_of(availability: float, width: float = 0.1) -> float:
    index = min(int(availability / width), int(round(1.0 / width)) - 1)
    return round(index * width, 10)


def _banded(sender_rates: Dict[NodeId, float], truth: TruthFn, cushion: float) -> BandedRates:
    by_band: Dict[float, List[float]] = {}
    for sender, rate in sender_rates.items():
        by_band.setdefault(_band_of(truth(sender)), []).append(rate)
    return BandedRates(
        cushion=cushion,
        band_rates={band: float(np.mean(rates)) for band, rates in by_band.items()},
        sender_rates=sender_rates,
    )


def _ground_truth_member(
    predicate: AvmemPredicate, truth: TruthFn, x: NodeId, y: NodeId
) -> bool:
    """``M(x, y)`` under current exact availabilities (no cushion)."""
    return predicate.evaluate(
        NodeDescriptor(x, truth(x)), NodeDescriptor(y, truth(y))
    )


def flooding_attack_experiment(
    nodes: Dict[NodeId, AvmemNode],
    predicate: AvmemPredicate,
    truth: TruthFn,
    cushion: float = 0.0,
    attackers: Optional[Sequence[NodeId]] = None,
    max_targets: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    online_only: bool = True,
) -> BandedRates:
    """Fig 5: fraction of non-neighbors accepting a flooded message.

    Parameters
    ----------
    attackers:
        Which nodes play the selfish role (default: all).
    max_targets:
        Cap verification targets per attacker (uniform subsample) to keep
        the O(attackers × targets) experiment tractable.
    """
    rng = rng if rng is not None else fallback_rng()
    population = list(nodes)
    attackers = list(attackers) if attackers is not None else population
    rates: Dict[NodeId, float] = {}
    for attacker in attackers:
        node = nodes[attacker]
        if online_only and not node.online:
            continue
        non_neighbors = [
            y
            for y in population
            if y != attacker
            and (not online_only or nodes[y].online)
            and not _ground_truth_member(predicate, truth, attacker, y)
        ]
        if max_targets is not None and len(non_neighbors) > max_targets:
            picked = rng.choice(len(non_neighbors), size=max_targets, replace=False)
            non_neighbors = [non_neighbors[i] for i in picked]
        if not non_neighbors:
            continue
        accepted = sum(
            1
            for y in non_neighbors
            if nodes[y].verifier.accepts(attacker, cushion=cushion)
        )
        rates[attacker] = accepted / len(non_neighbors)
    return _banded(rates, truth, cushion)


def legitimate_rejection_experiment(
    nodes: Dict[NodeId, AvmemNode],
    predicate: AvmemPredicate,
    truth: TruthFn,
    cushion: float = 0.0,
    senders: Optional[Sequence[NodeId]] = None,
    online_only: bool = True,
) -> BandedRates:
    """Fig 6: fraction of *valid* in-neighbor relationships rejected.

    For each sender ``x`` and each ground-truth out-neighbor ``y``
    (``M(x, y) = 1`` right now), check whether ``y``'s verifier would
    reject a message from ``x``.
    """
    population = list(nodes)
    senders = list(senders) if senders is not None else population
    rates: Dict[NodeId, float] = {}
    for sender in senders:
        node = nodes[sender]
        if online_only and not node.online:
            continue
        neighbors = [
            y
            for y in population
            if y != sender
            and (not online_only or nodes[y].online)
            and _ground_truth_member(predicate, truth, sender, y)
        ]
        if not neighbors:
            continue
        rejected = sum(
            1
            for y in neighbors
            if not nodes[y].verifier.accepts(sender, cushion=cushion)
        )
        rates[sender] = rejected / len(neighbors)
    return _banded(rates, truth, cushion)
