"""Non-cooperative behaviour: flooding attacks and verification analysis."""

from repro.attacks.flooding import (
    BandedRates,
    flooding_attack_experiment,
    legitimate_rejection_experiment,
)
from repro.attacks.selfish import SprayOutcome, spray_attack

__all__ = [
    "BandedRates",
    "flooding_attack_experiment",
    "legitimate_rejection_experiment",
    "SprayOutcome",
    "spray_attack",
]
