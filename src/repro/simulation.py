"""End-to-end simulation orchestrator.

:class:`AvmemSimulation` wires every substrate together the way the
paper's evaluation does: an Overnet-style churn trace drives presence; an
availability monitoring service (oracle or AVMON) answers availability
queries; a shuffled coarse view feeds discovery; AVMEM nodes maintain
their slivers; and an :class:`~repro.ops.engine.OperationEngine` executes
the management operations, with per-hop latencies of U[20, 80] ms.

Two bootstrap modes (docs/architecture.md, "Bootstrap modes"):

* ``"protocol"`` — nodes start with empty lists and run the discovery/
  refresh protocols through the warm-up period (the paper's 24 hours).
  Faithful but expensive; use for small populations and protocol tests.
* ``"direct"`` — the warm-up clock is advanced, then each node's lists
  are computed by evaluating the consistent predicate against the full
  candidate set, after which the periodic refresh keeps them current.
  Because the predicate is consistent, this is the graph discovery
  converges to; it makes full-scale (1442-host) figure regeneration
  cheap.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.churn.overnet import OvernetTraceConfig, generate_overnet_trace
from repro.churn.trace import ChurnTrace
from repro.core.availability import AvailabilityPdf
from repro.core.config import AvmemConfig
from repro.core.ids import NodeId, make_node_ids
from repro.core.node import AvmemNode
from repro.core.population import Population
from repro.core.predicates import (
    AvmemPredicate,
    NodeDescriptor,
    paper_predicate,
)
from repro.monitor.cache import CachedAvailabilityView
from repro.monitor.coarse_view import GlobalSampleView, ShuffledCoarseView
from repro.monitor.oracle import OracleAvailability
from repro.ops.engine import OperationEngine
from repro.ops.plan import OperationItem, OperationPlan, OperationTiming
from repro.ops.results import AnycastRecord, MulticastRecord
from repro.ops.runner import OperationRunner
from repro.ops.spec import InitiatorBand, TargetSpec
from repro.overlays.graphs import OverlayGraph
from repro.overlays.random_overlay import degree_matched_random_predicate
from repro.sim.engine import Simulator
from repro.sim.latency import PAPER_HOP_LATENCY
from repro.sim.network import Network
from repro.telemetry import current as current_telemetry
from repro.util.randomness import RandomRouter

__all__ = ["SimulationSettings", "AvmemSimulation"]

TargetLike = Union[TargetSpec, Tuple[float, float], float]


@dataclass(frozen=True)
class SimulationSettings:
    """Everything needed to reproduce one simulation run.

    Defaults are the paper's evaluation setup at full scale; tests use
    smaller ``hosts``/``epochs``.

    The ``protocols`` field selects which maintenance loops run after
    :meth:`AvmemSimulation.setup`:

    * ``"full"`` — discovery **and** refresh on every node (the paper's
      deployment; required for ``bootstrap="protocol"`` to converge);
    * ``"refresh-only"`` — only the refresh loop: entries are kept
      current and evicted when the predicate fails, but no *new*
      neighbors are discovered.  The cheap mode for large sweeps where
      direct bootstrap already installed the converged overlay;
    * ``"off"`` — frozen lists; cache staleness grows unboundedly.
      Useful for isolating staleness effects (Figs 5-6 style analyses).
    """

    hosts: int = 1442
    epochs: int = 504
    epoch_seconds: float = 1200.0
    seed: int = 0
    #: name of a registered scenario (repro.scenarios.registry) that
    #: generates the churn workload; None keeps the paper's Overnet-like
    #: default trace (byte-identical to the pre-scenario behaviour)
    scenario: Optional[str] = None
    config: AvmemConfig = field(default_factory=AvmemConfig)
    #: "paper" (I.B + II.B) or "random" (degree-matched f = p baseline)
    predicate_kind: str = "paper"
    #: "direct" or "protocol" (see module docstring)
    bootstrap: str = "direct"
    #: "global" (idealized resampler) or "shuffled" (CYCLON-style swaps)
    coarse_view_kind: str = "global"
    #: which protocol loops run after setup: "full", "refresh-only", "off"
    protocols: str = "full"
    #: monitoring-service degradation (drives Figs 5-6 divergence)
    monitor_noise_std: float = 0.02
    monitor_quantization: float = 0.0
    #: should operation recipients verify senders (Section 4.1 checks)?
    verify_inbound: bool = False
    #: "batch" routes fan-out cohorts through Network.send_batch and
    #: batched eligibility snapshots; "per-hop" preserves the seed's
    #: one-event-per-message path (the parity/benchmark baseline)
    dispatch: str = "batch"
    #: how direct bootstrap enumerates the overlay: "exhaustive" (block-
    #: tiled N x N), "candidates" (O(N*k) interval enumeration; requires
    #: an interval-searchable hash, e.g. affine64), or "auto" (candidates
    #: whenever the predicate supports them, else exhaustive).  Both
    #: paths produce the identical overlay; this only selects the
    #: construction algorithm.
    overlay_method: str = "auto"
    #: diurnal churn parameters forwarded to the trace generator
    diurnal_amplitude: float = 0.3
    diurnal_fraction: float = 0.4

    def __post_init__(self):
        if self.hosts <= 1:
            raise ValueError(f"hosts must be > 1, got {self.hosts}")
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        if self.predicate_kind not in ("paper", "random"):
            raise ValueError(
                f"predicate_kind must be 'paper' or 'random', got {self.predicate_kind!r}"
            )
        if self.bootstrap not in ("direct", "protocol"):
            raise ValueError(
                f"bootstrap must be 'direct' or 'protocol', got {self.bootstrap!r}"
            )
        if self.coarse_view_kind not in ("global", "shuffled"):
            raise ValueError(
                f"coarse_view_kind must be 'global' or 'shuffled', got {self.coarse_view_kind!r}"
            )
        if self.protocols not in ("full", "refresh-only", "off"):
            raise ValueError(
                f"protocols must be 'full', 'refresh-only' or 'off', got {self.protocols!r}"
            )
        if self.dispatch not in ("batch", "per-hop"):
            raise ValueError(
                f"dispatch must be 'batch' or 'per-hop', got {self.dispatch!r}"
            )
        if self.overlay_method not in ("exhaustive", "candidates", "auto"):
            raise ValueError(
                f"overlay_method must be 'exhaustive', 'candidates' or 'auto', "
                f"got {self.overlay_method!r}"
            )

    @property
    def horizon(self) -> float:
        return self.epochs * self.epoch_seconds

    def as_dict(self) -> dict:
        """All-primitive dict, exact round-trip through
        :meth:`from_dict` — what session manifests persist so a service
        restart can rebuild the identical simulation."""
        payload = {
            f.name: getattr(self, f.name)
            for f in dataclass_fields(self)
            if f.name != "config"
        }
        payload["config"] = self.config.as_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SimulationSettings":
        payload = dict(payload)
        if isinstance(payload.get("config"), dict):
            payload["config"] = AvmemConfig.from_dict(payload["config"])
        return cls(**payload)


class AvmemSimulation:
    """A fully wired AVMEM system over a synthetic Overnet trace.

    Construction builds every substrate (trace, network, monitoring
    oracle, coarse view, nodes, operation engine) but advances no time;
    call :meth:`setup` once to warm the system up, then execute an
    :class:`~repro.ops.plan.OperationPlan` through :attr:`ops`
    (``sim.ops.run(plan)``).  The legacy :meth:`run_anycast` /
    :meth:`run_multicast` (and ``_batch``) methods remain as deprecation
    shims over the same path.  All randomness derives from
    ``settings.seed``, so a run is reproducible end to end.

    >>> sim = AvmemSimulation(SimulationSettings(hosts=200, seed=7))
    >>> sim.setup(warmup=3600.0, settle=600.0)
    >>> item = OperationItem(kind="anycast", target=TargetSpec.range(0.8, 0.95))
    >>> log = sim.ops.run(OperationPlan.single(item))
    """

    def __init__(
        self,
        settings: Optional[SimulationSettings] = None,
        scenario_spec=None,
        trace: Optional[ChurnTrace] = None,
    ):
        """Build every substrate for ``settings``.

        ``scenario_spec`` supplies an inline
        :class:`~repro.scenarios.spec.ScenarioSpec` instead of a registry
        lookup of ``settings.scenario`` (the service layer creates
        sessions from ScenarioSpec JSON this way).  ``trace`` injects a
        pre-generated churn trace — e.g. one reopened from a
        checkpoint's spilled timeline — skipping trace generation; the
        injected trace must be the one the settings would generate
        (streams are per-name independent, so skipping the ``"churn"``
        draws perturbs nothing else).
        """
        self.settings = settings if settings is not None else SimulationSettings()
        self._scenario_override = scenario_spec
        self._trace_override = trace
        self._router = RandomRouter(self.settings.seed)
        #: the recorder this simulation's instrumentation routes into,
        #: captured from the active telemetry context at construction
        #: (the process-wide default unless built under ``use_recorder``)
        self.telemetry = current_telemetry()
        with self.telemetry.span("sim.build"):
            self._build()
        self._ready = False
        self._ops_runner: Optional[OperationRunner] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        s = self.settings
        self.node_ids: List[NodeId] = make_node_ids(s.hosts)
        self.scenario_spec = self._scenario_override
        if self._trace_override is not None:
            self.trace: ChurnTrace = self._trace_override
            if len(self.trace.nodes) != s.hosts:
                raise ValueError(
                    f"injected trace covers {len(self.trace.nodes)} nodes, "
                    f"settings expect {s.hosts}"
                )
        elif self.scenario_spec is not None or s.scenario is not None:
            if self.scenario_spec is None:
                from repro.scenarios.registry import get_scenario

                self.scenario_spec = get_scenario(s.scenario)
            compiled = self.scenario_spec.compile(
                hosts=s.hosts,
                epochs=s.epochs,
                epoch_seconds=s.epoch_seconds,
                rng=self._router.get("churn"),
            )
            self.trace = compiled.to_trace(self.node_ids)
        else:
            trace_config = OvernetTraceConfig(
                hosts=s.hosts,
                epochs=s.epochs,
                epoch_seconds=s.epoch_seconds,
                diurnal_amplitude=s.diurnal_amplitude,
                diurnal_fraction=s.diurnal_fraction,
            )
            self.trace = generate_overnet_trace(
                node_keys=self.node_ids, config=trace_config, rng=self._router.get("churn")
            )
        self.sim = Simulator()
        self.network = Network(
            self.sim,
            latency=PAPER_HOP_LATENCY,
            presence=self.trace,
            rng=self._router.get("latency"),
            batched=s.dispatch == "batch",
        )
        self.oracle = OracleAvailability(
            self.trace,
            self.sim,
            window=s.config.availability_window,
            noise_std=s.monitor_noise_std,
            quantization=s.monitor_quantization,
            seed=s.seed,
        )
        # The "crawler's" offline PDF: lifetime availabilities of all hosts.
        lifetime = [self.trace.lifetime_availability(n) for n in self.node_ids]
        # Struct-of-arrays identity core: digests/availabilities as flat
        # columns, row index == trace/node_ids order.  Nodes and their
        # membership tables hang off rows of this population.
        self.population = Population.from_ids(
            tuple(self.node_ids), np.asarray(lifetime, dtype=float)
        )
        self.pdf = AvailabilityPdf.from_samples(lifetime, bins=s.config.pdf_bins)
        self.predicate = self._make_predicate(lifetime)
        view_size = s.config.view_size_for(self.pdf.n_star)
        if s.coarse_view_kind == "global":
            self.coarse_view = GlobalSampleView(
                self.sim,
                self.node_ids,
                view_size,
                rng=self._router.get("coarse-view"),
                presence=self.trace,
                period=s.config.discovery_period,
            )
        else:
            self.coarse_view = ShuffledCoarseView(
                self.sim,
                self.node_ids,
                view_size,
                rng=self._router.get("coarse-view"),
                presence=self.trace,
                period=s.config.discovery_period,
            )
        self.nodes: Dict[NodeId, AvmemNode] = {}
        for row, node_id in enumerate(self.node_ids):
            cache = CachedAvailabilityView(self.oracle, self.sim)
            self.nodes[node_id] = AvmemNode(
                node_id,
                self.sim,
                self.network,
                self.predicate,
                s.config,
                availability_view=cache,
                coarse_view=self.coarse_view,
                rng=self._router.get(f"node:{node_id.endpoint}"),
                population=self.population,
                row=row,
            )
        self.engine = OperationEngine(
            self.sim,
            self.network,
            self.nodes,
            s.config,
            truth_availability=self.true_availability,
            rng=self._router.get("ops"),
            verify_inbound=s.verify_inbound,
            truth_eligible=(
                self.truth_eligible_ids if s.dispatch == "batch" else None
            ),
        )

    def _make_predicate(self, lifetime: Sequence[float]) -> AvmemPredicate:
        s = self.settings
        base = paper_predicate(
            self.pdf, epsilon=s.config.epsilon, c1=s.config.c1, c2=s.config.c2
        )
        if s.predicate_kind == "paper":
            return base
        descriptors = [
            NodeDescriptor(node, av) for node, av in zip(self.node_ids, lifetime)
        ]
        return degree_matched_random_predicate(base, descriptors)

    # ------------------------------------------------------------------
    # Ground truth accessors
    # ------------------------------------------------------------------
    def true_availability(self, node: NodeId) -> float:
        """Exact raw availability of ``node`` as of the current sim time."""
        return self.trace.availability(node, self.sim.now)

    def _online_truth_filter(self, keep_fn) -> List[NodeId]:
        """Online nodes whose *true* availability passes ``keep_fn``
        (an availability-array → bool-mask callable), in trace order.

        The shared row-space snapshot under multicast eligibility and
        initiator-candidate queries: one timeline presence pass, one
        availability pass, one mask — no per-node key translation,
        because the population *is* the timeline.
        """
        now = self.sim.now
        timeline = self.trace.timeline
        rows = np.flatnonzero(timeline.online_mask(now))
        if not rows.size:
            return []
        keep = keep_fn(timeline.availability_array(rows, now))
        order = self.trace.nodes
        return [order[i] for i in rows[keep]]

    def truth_eligible_ids(self, target: TargetSpec) -> set:
        """Online nodes whose *true* availability is in ``target`` right
        now — the engine's multicast-eligibility snapshot (Fig 12/13
        denominator)."""
        return set(self._online_truth_filter(target.contains_array))

    def online_ids(self) -> List[NodeId]:
        return self.trace.online_nodes(self.sim.now)

    # ------------------------------------------------------------------
    # Setup / warm-up
    # ------------------------------------------------------------------
    def setup(self, warmup: float = 86400.0, settle: float = 3600.0) -> None:
        """Warm the system up to ``warmup`` seconds of trace time.

        In ``protocol`` mode the discovery/refresh loops run through the
        whole warm-up.  In ``direct`` mode the overlay is materialized
        from the consistent predicate at ``warmup − settle``, after which
        the configured protocol loops run through the ``settle`` window —
        so by ``warmup`` the lists and caches exhibit the realistic
        staleness profile (entries whose nodes have since gone offline,
        availability values up to one refresh period old) that the
        paper's retried-greedy and attack experiments depend on.
        """
        if self._ready:
            raise RuntimeError("setup() already ran for this simulation")
        s = self.settings
        if warmup >= self.trace.horizon:
            raise ValueError(
                f"warmup {warmup} must leave trace time for experiments "
                f"(horizon {self.trace.horizon})"
            )
        if settle < 0 or settle > warmup:
            raise ValueError(f"settle must be in [0, warmup], got {settle}")
        with self.telemetry.span("sim.setup"):
            if s.bootstrap == "protocol":
                self._start_protocols(s.protocols if s.protocols != "off" else "full")
                with self.telemetry.span("sim.warmup"):
                    self.sim.run_until(warmup)
            else:
                with self.telemetry.span("sim.warmup"):
                    self.sim.run_until(warmup - settle)
                self._direct_bootstrap()
                if s.protocols != "off":
                    self._start_protocols(s.protocols)
                with self.telemetry.span("sim.warmup"):
                    self.sim.run_until(warmup)
        self._ready = True

    def _start_protocols(self, which: str) -> None:
        for node in self.nodes.values():
            if which == "full":
                node.start()
            else:  # refresh-only
                from repro.sim.engine import PeriodicTask

                delay = float(node.rng.uniform(0, self.settings.config.refresh_period))
                node._tasks.append(
                    PeriodicTask(
                        self.sim,
                        self.settings.config.refresh_period,
                        node.refresh_step,
                        start_delay=delay,
                    )
                )
        self._schedule_rejoin_refreshes()

    def _schedule_rejoin_refreshes(self) -> None:
        """Run a refresh right after every rejoin.

        While a node is offline its lists decay unchecked; a real process
        re-validates its neighbor state on restart rather than serving
        hours-stale entries until the next periodic refresh.  The trace
        is known ahead of time, so we schedule one refresh shortly after
        each online-session start (a small jitter models restart work).
        """
        now = self.sim.now
        for node_id, node in self.nodes.items():
            for start, __ in self.trace.schedule(node_id).intervals:
                if start > now:
                    jitter = float(node.rng.uniform(1.0, 15.0))
                    self.sim.schedule_at(start + jitter, node.refresh_step)

    def _direct_bootstrap(self) -> None:
        """Materialize the overlay from the consistent predicate.

        Every node evaluates the predicate against the *currently online*
        population using the monitoring service's current estimates — the
        candidates a long-running discovery process would have surfaced
        through the (live-node-circulating) coarse view.  Later discovery
        and refresh rounds keep evolving the lists from there.

        Because the oracle answers deterministically within a time
        bucket, the whole bootstrap is one consistent-predicate overlay:
        a single batched row-space ``evaluate_all_rows`` over the
        population (``settings.overlay_method`` selects exhaustive vs
        candidate-generated construction — both produce the identical
        overlay), with edges to offline candidates masked out,
        materialized as an :class:`~repro.overlays.graphs.OverlayGraph`
        whose CSR rows feed each node's row-keyed
        :meth:`~repro.core.membership.MembershipTable.upsert_rows`
        directly — no identity objects and no per-edge Python anywhere
        on the install path.
        """
        pop = self.population.with_availabilities(
            np.array([self.oracle.query(node) for node in self.node_ids], dtype=float)
        )
        avs = pop.availabilities
        with self.telemetry.span("overlay.build"):
            src, dst, horizontal = self.predicate.evaluate_all_rows(
                pop.digests, avs, method=self.settings.overlay_method
            )
            # Trace order is population row order, so the timeline's
            # presence mask is already row-aligned.
            online_mask = self.trace.timeline.online_mask(self.sim.now)
            keep = online_mask[dst]
            overlay = OverlayGraph(
                None, None, src[keep], dst[keep], horizontal[keep], population=pop
            )
        with self.telemetry.span("overlay.install"):
            for i, node_id in enumerate(self.node_ids):
                node = self.nodes[node_id]
                # Prime the node's own availability cache with the
                # service's current answer, then install its row of
                # predicate matches.
                node.availability.fetch(node_id)
                neighbors, row_horizontal = overlay.row(i)
                node.install_member_rows(neighbors, avs[neighbors], row_horizontal)

    # ------------------------------------------------------------------
    # Operation helpers
    # ------------------------------------------------------------------
    @staticmethod
    def as_target(target: TargetLike) -> TargetSpec:
        """Coerce ``(lo, hi)`` tuples / bare thresholds / specs."""
        if isinstance(target, TargetSpec):
            return target
        if isinstance(target, tuple):
            return TargetSpec.range(*target)
        return TargetSpec.threshold(float(target))

    def band_initiator_rows(self, band: str) -> np.ndarray:
        """Population rows of the online nodes whose true availability
        lies in ``band`` right now, in trace (= row) order.

        The object-free form of :meth:`band_initiator_candidates`: one
        timeline presence pass plus one availability pass, no NodeId
        materialization — what the plan runner caches per launch instant.
        """
        InitiatorBand.validate(band)
        now = self.sim.now
        timeline = self.trace.timeline
        rows = np.flatnonzero(timeline.online_mask(now))
        if not rows.size:
            return rows
        keep = InitiatorBand.contains_array(
            band, timeline.availability_array(rows, now)
        )
        return rows[keep]

    def band_initiator_candidates(self, band: str) -> List[NodeId]:
        """Online nodes whose true availability lies in ``band`` right
        now, in trace order — the list the scalar loop over
        :meth:`online_ids` produced, from one vectorized row-space
        pass."""
        order = self.trace.nodes
        return [order[i] for i in self.band_initiator_rows(band)]

    def pick_initiator(
        self, band: str, rng: Optional[np.random.Generator] = None
    ) -> Optional[NodeId]:
        """A random online node whose true availability is in the band."""
        rng = rng if rng is not None else self._router.get("initiators")
        candidates = self.band_initiator_candidates(band)
        if not candidates:
            return None
        return candidates[int(rng.integers(len(candidates)))]

    @property
    def ops(self) -> OperationRunner:
        """The operation-plan entry point: ``sim.ops.run(plan)``.

        Every operation workload — single shots, batches, mixed/timed
        streams — is an :class:`~repro.ops.plan.OperationPlan` executed
        here; the legacy ``run_*`` methods below are deprecation shims
        that compile to single-item plans.
        """
        if self._ops_runner is None:
            self._ops_runner = OperationRunner(self)
        return self._ops_runner

    def _deprecated_shim(self, old: str, plan_hint: str) -> None:
        warnings.warn(
            f"AvmemSimulation.{old}() is a deprecation shim; build an "
            f"OperationPlan ({plan_hint}) and execute it via sim.ops.run(plan)",
            DeprecationWarning,
            stacklevel=3,
        )

    def run_anycast(
        self,
        target: TargetLike,
        initiator: Optional[NodeId] = None,
        initiator_band: str = InitiatorBand.MID,
        policy: str = "greedy",
        selector: str = "hs+vs",
        ttl: Optional[int] = None,
        retry: Optional[int] = None,
        settle: float = 30.0,
    ) -> AnycastRecord:
        """Deprecation shim: one anycast through the plan path; returns
        the finalized record."""
        self._deprecated_shim("run_anycast", "one anycast item, batch timing")
        self._require_ready()
        if initiator is None:
            initiator = self.pick_initiator(initiator_band)
            if initiator is None:
                raise RuntimeError(f"no online initiator in band {initiator_band!r}")
        item = OperationItem(
            kind="anycast",
            target=self.as_target(target),
            count=1,
            band=initiator_band,
            initiator=initiator,
            policy=policy,
            selector=selector,
            ttl=ttl,
            retry=retry,
            timing=OperationTiming(mode="batch"),
        )
        execution = self.ops.execute(
            OperationPlan.single(item, settle=settle, name="run_anycast")
        )
        return execution.records[0]

    def run_multicast(
        self,
        target: TargetLike,
        initiator: Optional[NodeId] = None,
        initiator_band: str = InitiatorBand.HIGH,
        mode: str = "flood",
        selector: str = "hs+vs",
        settle: float = 30.0,
    ) -> MulticastRecord:
        """Deprecation shim: one multicast through the plan path."""
        self._deprecated_shim("run_multicast", "one multicast item, batch timing")
        self._require_ready()
        if initiator is None:
            initiator = self.pick_initiator(initiator_band)
            if initiator is None:
                raise RuntimeError(f"no online initiator in band {initiator_band!r}")
        item = OperationItem(
            kind="multicast",
            target=self.as_target(target),
            count=1,
            band=initiator_band,
            initiator=initiator,
            mode=mode,
            selector=selector,
            timing=OperationTiming(mode="batch"),
        )
        execution = self.ops.execute(
            OperationPlan.single(item, settle=settle, name="run_multicast")
        )
        return execution.records[0]

    def run_anycast_batch(
        self,
        count: int,
        target: TargetLike,
        initiator_band: str,
        policy: str = "greedy",
        selector: str = "hs+vs",
        ttl: Optional[int] = None,
        retry: Optional[int] = None,
        spacing: float = 2.0,
        settle: float = 30.0,
    ) -> List[AnycastRecord]:
        """Deprecation shim: ``count`` anycasts ``spacing`` seconds apart
        (fresh random initiator from the band each time), settle,
        finalize — now one interval-timed plan item."""
        self._deprecated_shim("run_anycast_batch", "one anycast item, interval timing")
        item = OperationItem(
            kind="anycast",
            target=self.as_target(target),
            count=count,
            band=initiator_band,
            policy=policy,
            selector=selector,
            ttl=ttl,
            retry=retry,
            timing=OperationTiming(mode="interval", spacing=spacing),
        )
        execution = self.ops.execute(
            OperationPlan.single(item, settle=settle, name="run_anycast_batch")
        )
        return execution.launched

    def run_multicast_batch(
        self,
        count: int,
        target: TargetLike,
        initiator_band: str,
        mode: str = "flood",
        selector: str = "hs+vs",
        spacing: float = 5.0,
        settle: float = 30.0,
    ) -> List[MulticastRecord]:
        """Deprecation shim: ``count`` multicasts ``spacing`` seconds
        apart — now one interval-timed plan item."""
        self._deprecated_shim("run_multicast_batch", "one multicast item, interval timing")
        item = OperationItem(
            kind="multicast",
            target=self.as_target(target),
            count=count,
            band=initiator_band,
            mode=mode,
            selector=selector,
            timing=OperationTiming(mode="interval", spacing=spacing),
        )
        execution = self.ops.execute(
            OperationPlan.single(item, settle=settle, name="run_multicast_batch")
        )
        return execution.launched

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def online_nodes(self) -> List[AvmemNode]:
        return [self.nodes[node_id] for node_id in self.online_ids()]

    def _require_ready(self) -> None:
        if not self._ready:
            raise RuntimeError("call setup() before running operations")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AvmemSimulation(hosts={self.settings.hosts}, now={self.sim.now:.0f}s, "
            f"online={len(self.online_ids()) if self._ready else '?'})"
        )
