"""Tiny urllib client for the service API (tests, smoke, scripting).

Each method mirrors one route in :mod:`repro.service.http`; non-2xx
responses raise :class:`ServiceClientError` carrying the HTTP status and
the server's ``error`` message.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import List, Optional

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(RuntimeError):
    """A non-2xx API response."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Synchronous JSON client for one server."""

    def __init__(self, base_url: str, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing -------------------------------------------------------
    def request(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:
                message = exc.reason
            raise ServiceClientError(exc.code, message) from None

    # -- API ------------------------------------------------------------
    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def list_sessions(self) -> List[dict]:
        return self.request("GET", "/sessions")["sessions"]

    def create_session(self, **spec) -> dict:
        """Create a session; keyword arguments form the request body
        (``id``, ``scale``, ``settings``, ``scenario``, ``warmup``,
        ``settle``, ``telemetry``)."""
        return self.request("POST", "/sessions", spec)

    def session(self, session_id: str) -> dict:
        return self.request("GET", f"/sessions/{session_id}")

    def delete_session(self, session_id: str) -> dict:
        return self.request("DELETE", f"/sessions/{session_id}")

    def run_plan(self, session_id: str, plan: dict) -> dict:
        return self.request("POST", f"/sessions/{session_id}/plans", {"plan": plan})

    def advance(self, session_id: str, seconds: float) -> dict:
        return self.request(
            "POST", f"/sessions/{session_id}/advance", {"seconds": seconds}
        )

    def step(self, session_id: str, count: int = 1) -> dict:
        return self.request("POST", f"/sessions/{session_id}/step", {"count": count})

    def checkpoint(self, session_id: str) -> dict:
        return self.request("POST", f"/sessions/{session_id}/checkpoint", {})

    def evict(self, session_id: str) -> dict:
        return self.request("POST", f"/sessions/{session_id}/evict", {})

    def log(
        self,
        session_id: str,
        by: Optional[List[str]] = None,
        plan: Optional[int] = None,
    ) -> dict:
        query = []
        if by:
            query.append(f"by={','.join(by)}")
        if plan is not None:
            query.append(f"plan={plan}")
        suffix = f"?{'&'.join(query)}" if query else ""
        return self.request("GET", f"/sessions/{session_id}/log{suffix}")

    def telemetry(self, session_id: str, phases: bool = False) -> dict:
        suffix = "?phases=1" if phases else ""
        return self.request("GET", f"/sessions/{session_id}/telemetry{suffix}")
