"""One live session: an engine instance plus its command journal.

:class:`SimulationSession` extracts the *runnable* state of a simulation
run out of :class:`~repro.simulation.AvmemSimulation`'s one-shot script
shape: it owns the simulation (population, simulator clock, membership
state), the :class:`~repro.ops.runner.OperationRunner`, the accumulated
per-plan :class:`~repro.ops.log.OperationLog`\\ s, and a **private**
:class:`~repro.telemetry.TelemetryRecorder` — nothing a session records
touches the process-global singleton, so sessions are isolated and many
can run concurrently in one server.

Every state-mutating command (run a plan, advance the clock, step the
event loop) is appended to the session's **journal** before it returns.
The journal plus the :class:`~repro.service.spec.SessionSpec` is the
session's durable identity: :meth:`SimulationSession.build` with a
non-empty journal replays the commands in order against a fresh seeded
simulation, and because all randomness flows through named independent
:class:`~repro.util.randomness.RandomRouter` streams, the replayed run
consumes every stream exactly as the original did — subsequent commands
produce bit-identical records (the durability property the service
tests assert).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.ops.log import OperationLog
from repro.ops.plan import OperationPlan
from repro.service.spec import SessionSpec
from repro.simulation import AvmemSimulation
from repro.telemetry import TelemetryRecorder, use_recorder

__all__ = ["SimulationSession"]


class SimulationSession:
    """A running simulation addressable by id (see module docstring).

    Construction is expensive (trace generation + warm-up); the
    orchestrator always builds sessions outside its registry lock.
    Callers mutate a session only while holding :attr:`lock` — the
    orchestrator's ``run_command`` enforces this.
    """

    def __init__(self, session_id: str, spec: SessionSpec):
        self.id = session_id
        self.spec = spec
        #: serializes command execution on this session; commands on
        #: *different* sessions run concurrently
        self.lock = threading.RLock()
        #: set (under lock) when the orchestrator checkpoints and drops
        #: this instance; a waiter that then acquires the lock must
        #: re-fetch the session instead of mutating a zombie
        self.evicted = False
        self.telemetry = TelemetryRecorder(enabled=spec.telemetry)
        self.journal: List[dict] = []
        self.logs: List[OperationLog] = []
        self.created_at = time.time()
        self.last_used = time.monotonic()
        # The whole object graph is built — and warmed up — under this
        # session's recorder, so every substrate captures it for life.
        with use_recorder(self.telemetry):
            self.simulation = AvmemSimulation(
                spec.settings, scenario_spec=spec.scenario
            )
            self.simulation.setup(warmup=spec.warmup, settle=spec.settle)

    # ------------------------------------------------------------------
    # Construction / restore
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        session_id: str,
        spec: SessionSpec,
        journal: Optional[List[dict]] = None,
    ) -> "SimulationSession":
        """Create a session; with a journal, replay it (restore path).

        Replay re-executes every journaled command in order against the
        freshly built simulation.  The per-plan logs are regenerated in
        the process, so a restored session serves log queries without
        having read a single stored log — the store keeps them anyway as
        an integrity cross-check.
        """
        session = cls(session_id, spec)
        for entry in journal or []:
            session._apply(entry, record=True)
        return session

    def _apply(self, entry: dict, record: bool) -> object:
        kind = entry.get("kind")
        if kind == "plan":
            return self._run_plan(OperationPlan.from_dict(entry["plan"]), record)
        if kind == "advance":
            return self._advance(float(entry["seconds"]), record)
        if kind == "step":
            return self._step(int(entry["count"]), record)
        raise ValueError(f"unknown journal entry kind {kind!r}")

    # ------------------------------------------------------------------
    # Commands (call under self.lock)
    # ------------------------------------------------------------------
    def run_plan(self, plan: OperationPlan) -> OperationLog:
        """Execute ``plan``; journal it; return its log."""
        return self._run_plan(plan, record=True)

    def advance(self, seconds: float) -> Dict[str, object]:
        """Run the simulator forward ``seconds`` of trace time."""
        return self._advance(float(seconds), record=True)

    def step(self, count: int) -> Dict[str, object]:
        """Run at most ``count`` discrete events."""
        return self._step(int(count), record=True)

    def _run_plan(self, plan: OperationPlan, record: bool) -> OperationLog:
        self.touch()
        with use_recorder(self.telemetry):
            log = self.simulation.ops.run(plan)
        self.logs.append(log)
        if record:
            self.journal.append({"kind": "plan", "plan": plan.as_dict()})
        return log

    def _advance(self, seconds: float, record: bool) -> Dict[str, object]:
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self.touch()
        sim = self.simulation.sim
        horizon = self.simulation.trace.horizon
        target = sim.now + seconds
        if target > horizon:
            raise ValueError(
                f"cannot advance to t={target:.0f}s past the trace horizon "
                f"({horizon:.0f}s)"
            )
        with use_recorder(self.telemetry):
            executed = sim.run_until(target)
        if record:
            self.journal.append({"kind": "advance", "seconds": seconds})
        return {"now": sim.now, "events": executed}

    def _step(self, count: int, record: bool) -> Dict[str, object]:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self.touch()
        sim = self.simulation.sim
        executed = 0
        with use_recorder(self.telemetry):
            for _ in range(count):
                if not sim.step():
                    break
                executed += 1
        if record:
            self.journal.append({"kind": "step", "count": count})
        return {"now": sim.now, "events": executed}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def combined_log(self) -> OperationLog:
        """Every plan's rows stacked in execution order."""
        return OperationLog.concat(self.logs)

    def log_for(self, plan_index: Optional[int] = None) -> OperationLog:
        if plan_index is None:
            return self.combined_log()
        if not 0 <= plan_index < len(self.logs):
            raise ValueError(
                f"plan index {plan_index} out of range (session ran "
                f"{len(self.logs)} plans)"
            )
        return self.logs[plan_index]

    def aggregations(
        self, by: Optional[List[str]] = None, plan_index: Optional[int] = None
    ) -> Dict[str, object]:
        """The log-poll payload: overall summary plus optional grouping."""
        log = self.log_for(plan_index)
        payload: Dict[str, object] = {
            "plans": len(self.logs),
            "rows": len(log),
            "summary": log.summary(),
        }
        if by:
            payload["groups"] = log.aggregate(by=tuple(by))
        return payload

    def telemetry_snapshot(self):
        return self.telemetry.snapshot()

    def touch(self) -> None:
        self.last_used = time.monotonic()

    def idle_seconds(self) -> float:
        return time.monotonic() - self.last_used

    def info(self) -> Dict[str, object]:
        """The session-detail payload (also the list-row shape)."""
        sim = self.simulation
        return {
            "id": self.id,
            "status": "live",
            "created_at": self.created_at,
            "now": sim.sim.now,
            "horizon": sim.trace.horizon,
            "hosts": sim.settings.hosts,
            "seed": sim.settings.seed,
            "scenario": (
                self.spec.scenario.name
                if self.spec.scenario is not None
                else sim.settings.scenario
            ),
            "online": len(sim.online_ids()),
            "commands": len(self.journal),
            "plans": len(self.logs),
            "operations": int(sum(len(log) for log in self.logs)),
            "telemetry": self.spec.telemetry,
        }
