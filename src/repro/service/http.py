"""The dependency-free JSON API over the orchestrator.

Stdlib-only (:class:`http.server.ThreadingHTTPServer`), one thread per
request; per-session serialization comes from the orchestrator's locks,
so concurrent clients driving *different* sessions run in parallel
while commands on one session queue fairly.

Routes
------
::

    GET    /healthz                      liveness probe
    GET    /sessions                     list (live + checkpointed)
    POST   /sessions                     create (SessionSpec request body)
    GET    /sessions/<id>                session detail
    DELETE /sessions/<id>                drop live instance + checkpoint
    POST   /sessions/<id>/plans          execute an OperationPlan (JSON body)
    POST   /sessions/<id>/advance        {"seconds": S} — run the clock forward
    POST   /sessions/<id>/step           {"count": N} — run N discrete events
    POST   /sessions/<id>/checkpoint     persist now (stays live)
    POST   /sessions/<id>/evict          persist and drop the live instance
    GET    /sessions/<id>/log            OperationLog aggregations
                                         (?by=kind,band&plan=K)
    GET    /sessions/<id>/telemetry      TelemetrySnapshot
                                         (?phases=1 for the phase table only)

Errors come back as ``{"error": message}`` with the natural status:
404 unknown session, 400 malformed request, 409 busy/duplicate.
NaN/±inf aggregation values (undefined metrics) are scrubbed to null so
every response is strictly valid JSON.
"""

from __future__ import annotations

import json
import math
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.ops.plan import OperationPlan
from repro.service.errors import ServiceError, UnknownSessionError
from repro.service.orchestrator import SessionOrchestrator
from repro.service.spec import SessionSpec

__all__ = ["make_server", "ServiceHandler"]

_MAX_BODY = 8 * 1024 * 1024


def scrub_json(value):
    """NaN/inf → None, recursively (undefined metrics must serialize)."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: scrub_json(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [scrub_json(v) for v in value]
    return value


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests onto ``self.server.orchestrator``."""

    server_version = "avmem-repro"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------
    @property
    def orchestrator(self) -> SessionOrchestrator:
        return self.server.orchestrator

    def log_message(self, fmt, *args):  # pragma: no cover - quiet by default
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(scrub_json(payload)).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            raise ValueError(f"request body too large ({length} bytes)")
        if length == 0:
            return {}
        payload = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _route(self) -> Tuple[str, Optional[str], Optional[str], dict]:
        """(collection, session_id, action, query) from the URL path."""
        parsed = urlparse(self.path)
        query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
        parts = [p for p in parsed.path.split("/") if p]
        collection = parts[0] if parts else ""
        session_id = parts[1] if len(parts) > 1 else None
        action = parts[2] if len(parts) > 2 else None
        if len(parts) > 3:
            raise UnknownSessionError("/".join(parts))
        return collection, session_id, action, query

    def _dispatch(self, method: str) -> None:
        try:
            collection, session_id, action, query = self._route()
            handler = getattr(self, f"_{method}_{collection or 'root'}", None)
            if handler is None:
                self._send(404, {"error": f"no such resource {self.path!r}"})
                return
            handler(session_id, action, query)
        except ServiceError as exc:
            self._send(exc.http_status, {"error": str(exc)})
        except (ValueError, TypeError, KeyError, json.JSONDecodeError) as exc:
            self._send(400, {"error": str(exc)})
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # pragma: no cover - defensive
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_GET(self) -> None:
        self._dispatch("get")

    def do_POST(self) -> None:
        self._dispatch("post")

    def do_DELETE(self) -> None:
        self._dispatch("delete")

    # -- GET ------------------------------------------------------------
    def _get_healthz(self, session_id, action, query) -> None:
        self._send(200, {"ok": True, "sessions": len(self.orchestrator.list_sessions())})

    def _get_sessions(self, session_id, action, query) -> None:
        orch = self.orchestrator
        if session_id is None:
            self._send(200, {"sessions": orch.list_sessions()})
            return
        if action is None:
            # Detail reads don't force a restore: a checkpointed session
            # answers from its manifest.
            for row in orch.list_sessions():
                if row["id"] == session_id:
                    self._send(200, row)
                    return
            raise UnknownSessionError(session_id)
        if action == "log":
            by = [f for f in (query.get("by") or "").split(",") if f]
            plan = int(query["plan"]) if "plan" in query else None
            payload = orch.run_command(
                session_id, lambda s: s.aggregations(by=by, plan_index=plan)
            )
            self._send(200, payload)
            return
        if action == "telemetry":
            snapshot = orch.run_command(session_id, lambda s: s.telemetry_snapshot())
            if query.get("phases"):
                self._send(200, {"phases": snapshot.phase_breakdown()})
            else:
                self._send(200, snapshot.as_dict())
            return
        self._send(404, {"error": f"no such resource {self.path!r}"})

    # -- POST -----------------------------------------------------------
    def _post_sessions(self, session_id, action, query) -> None:
        orch = self.orchestrator
        if session_id is None:
            body = self._read_body()
            new_id = body.pop("id", None) or uuid.uuid4().hex[:12]
            spec = SessionSpec.from_request(body)
            session = orch.create(new_id, spec)
            self._send(201, session.info())
            return
        if action == "plans":
            body = self._read_body()
            plan = OperationPlan.from_dict(body.get("plan", body))
            def run(s):
                log = s.run_plan(plan)
                return {
                    "plan_index": len(s.logs) - 1,
                    "rows": len(log),
                    "now": s.simulation.sim.now,
                    "summary": log.summary(),
                }
            self._send(200, orch.run_command(session_id, run))
            return
        if action == "advance":
            seconds = float(self._read_body().get("seconds", 0.0))
            self._send(200, orch.run_command(session_id, lambda s: s.advance(seconds)))
            return
        if action == "step":
            count = int(self._read_body().get("count", 1))
            self._send(200, orch.run_command(session_id, lambda s: s.step(count)))
            return
        if action == "checkpoint":
            path = orch.checkpoint(session_id)
            self._send(200, {"id": session_id, "checkpoint": path})
            return
        if action == "evict":
            orch.evict(session_id)
            self._send(200, {"id": session_id, "status": "checkpointed"})
            return
        self._send(404, {"error": f"no such resource {self.path!r}"})

    # -- DELETE ---------------------------------------------------------
    def _delete_sessions(self, session_id, action, query) -> None:
        if session_id is None or action is not None:
            self._send(404, {"error": f"no such resource {self.path!r}"})
            return
        self.orchestrator.delete(session_id)
        self._send(200, {"id": session_id, "status": "deleted"})


def make_server(
    orchestrator: SessionOrchestrator,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server bound to ``host:port`` (0 picks a
    free port; read it back from ``server.server_address``)."""
    server = ThreadingHTTPServer((host, port), ServiceHandler)
    server.orchestrator = orchestrator
    server.verbose = verbose
    server.daemon_threads = True
    return server
