"""Simulation-as-a-service: session orchestration over the simulator.

The service layer turns :class:`~repro.simulation.AvmemSimulation` runs
into long-lived, addressable **sessions**:

* :class:`~repro.service.spec.SessionSpec` — everything needed to build
  (or rebuild) one session: settings, warm-up window, optional inline
  scenario;
* :class:`~repro.service.session.SimulationSession` — a running engine
  instance with its own telemetry recorder, serialized command
  execution, and an append-only command journal;
* :class:`~repro.service.store.SessionStore` — durable checkpoints
  (manifest + journal + per-plan logs + telemetry snapshot) built on the
  library's exact JSON round-trips;
* :class:`~repro.service.orchestrator.SessionOrchestrator` — the
  per-session-id registry: lazy create/restore behind a lock, concurrent
  execution across sessions, idle eviction to disk;
* :mod:`~repro.service.http` — the dependency-free JSON API served by
  ``repro serve``; :mod:`~repro.service.client` its urllib client.

Durability is **event-sourced**: the journal records every state-mutating
command (plan / advance / step) and restore replays it against a fresh
seeded build.  Because every random draw comes from named, independent
:class:`~repro.util.randomness.RandomRouter` streams, replay consumes
randomness exactly as the original run did — a restored session's
subsequent records are bit-identical to an uninterrupted one (asserted
in ``tests/test_service.py``).
"""

from repro.service.errors import (
    ServiceError,
    SessionBusyError,
    SessionExistsError,
    UnknownSessionError,
)
from repro.service.orchestrator import SessionOrchestrator
from repro.service.session import SimulationSession
from repro.service.spec import SessionSpec
from repro.service.store import SessionStore

__all__ = [
    "ServiceError",
    "SessionBusyError",
    "SessionExistsError",
    "UnknownSessionError",
    "SessionOrchestrator",
    "SimulationSession",
    "SessionSpec",
    "SessionStore",
]
