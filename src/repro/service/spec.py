"""What one service session is built from.

A :class:`SessionSpec` is the durable recipe for a session: the
simulation settings, the warm-up window run at creation, and optionally
an inline :class:`~repro.scenarios.spec.ScenarioSpec` (clients can ship
a scenario in the create request instead of naming a registered one).
``SessionSpec.from_request`` is the API-facing constructor — it resolves
an :class:`~repro.experiments.harness.ExperimentScale` name into
hosts/epochs/warmup/settle defaults and applies explicit overrides on
top, so a minimal create request is just ``{"scale": "small"}``.

The spec round-trips exactly through :meth:`as_dict`/:meth:`from_dict`;
the session manifest persists it, and restore rebuilds the identical
simulation from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.harness import SCALES, ExperimentScale, get_scale
from repro.scenarios.spec import ScenarioSpec
from repro.simulation import SimulationSettings

__all__ = ["SessionSpec"]


@dataclass(frozen=True)
class SessionSpec:
    """Everything needed to build — or rebuild — one session."""

    settings: SimulationSettings
    warmup: float
    settle: float
    #: inline scenario; when set it overrides ``settings.scenario``
    scenario: Optional[ScenarioSpec] = None
    #: whether the session's private recorder is enabled (phase
    #: breakdowns via the telemetry endpoint cost some event overhead)
    telemetry: bool = True

    def __post_init__(self):
        if self.warmup <= 0:
            raise ValueError(f"warmup must be positive, got {self.warmup}")
        if self.settle < 0 or self.settle > self.warmup:
            raise ValueError(
                f"settle must be in [0, warmup], got {self.settle}"
            )

    @classmethod
    def from_request(cls, payload: dict) -> "SessionSpec":
        """Build a spec from a create-request body.

        Recognized keys (all optional):

        * ``scale`` — an :data:`~repro.experiments.harness.SCALES` name
          supplying hosts/epochs/warmup/settle defaults (default
          ``"small"``);
        * ``settings`` — :class:`SimulationSettings` field overrides;
        * ``scenario`` — a registered scenario name (string) or an
          inline :class:`ScenarioSpec` dict;
        * ``warmup`` / ``settle`` — explicit warm-up window override;
        * ``telemetry`` — enable the per-session recorder (default on).
        """
        if not isinstance(payload, dict):
            raise ValueError("create request body must be a JSON object")
        known = {"scale", "settings", "scenario", "warmup", "settle", "telemetry"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown session fields: {sorted(unknown)}")
        scale_name = payload.get("scale", "small")
        tier: ExperimentScale = get_scale(scale_name)
        overrides = dict(payload.get("settings") or {})
        scenario_payload = payload.get("scenario")
        scenario = None
        if isinstance(scenario_payload, str):
            overrides["scenario"] = scenario_payload
        elif isinstance(scenario_payload, dict):
            scenario = ScenarioSpec.from_dict(scenario_payload)
        elif scenario_payload is not None:
            raise ValueError("scenario must be a name or a ScenarioSpec object")
        overrides.setdefault("hosts", tier.hosts)
        overrides.setdefault("epochs", tier.epochs)
        try:
            settings = SimulationSettings.from_dict(overrides)
        except TypeError as exc:
            raise ValueError(f"bad settings: {exc}") from None
        return cls(
            settings=settings,
            warmup=float(payload.get("warmup", tier.warmup)),
            settle=float(payload.get("settle", tier.settle)),
            scenario=scenario,
            telemetry=bool(payload.get("telemetry", True)),
        )

    def as_dict(self) -> dict:
        return {
            "settings": self.settings.as_dict(),
            "warmup": self.warmup,
            "settle": self.settle,
            "scenario": None if self.scenario is None else self.scenario.as_dict(),
            "telemetry": self.telemetry,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SessionSpec":
        scenario = payload.get("scenario")
        return cls(
            settings=SimulationSettings.from_dict(payload["settings"]),
            warmup=float(payload["warmup"]),
            settle=float(payload["settle"]),
            scenario=None if scenario is None else ScenarioSpec.from_dict(scenario),
            telemetry=bool(payload.get("telemetry", True)),
        )


# Re-export for callers that want to enumerate valid scale names.
SCALE_NAMES = tuple(sorted(SCALES))
