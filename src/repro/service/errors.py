"""Service-layer exceptions, mapped onto HTTP statuses by the API."""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "UnknownSessionError",
    "SessionExistsError",
    "SessionBusyError",
]


class ServiceError(RuntimeError):
    """Base class for session-orchestration failures."""

    http_status = 500


class UnknownSessionError(ServiceError):
    """No live or checkpointed session under that id (HTTP 404)."""

    http_status = 404

    def __init__(self, session_id: str):
        super().__init__(f"unknown session {session_id!r}")
        self.session_id = session_id


class SessionExistsError(ServiceError):
    """Create collided with a live or checkpointed session (HTTP 409)."""

    http_status = 409

    def __init__(self, session_id: str):
        super().__init__(f"session {session_id!r} already exists")
        self.session_id = session_id


class SessionBusyError(ServiceError):
    """A non-blocking operation (evict, delete) found the session mid-
    command (HTTP 409); retry once the command finishes."""

    http_status = 409

    def __init__(self, session_id: str):
        super().__init__(f"session {session_id!r} is executing a command")
        self.session_id = session_id
