"""Durable session checkpoints.

One checkpoint is a directory::

    <state_dir>/<session_id>/
        manifest.json        avmem-session-v1: spec + journal digest info
        journal.json         the ordered command journal
        logs/plan-0000.json  one OperationLog per executed plan
        telemetry.json       TelemetrySnapshot at checkpoint time

The manifest + journal are the authoritative restore inputs (restore
replays the journal against a fresh seeded build); the per-plan logs
and telemetry snapshot are written for inspection and integrity
cross-checks without requiring a replay.  All files reuse the library's
exact JSON round-trips, and every write lands via rename so a crash
mid-checkpoint never leaves a truncated manifest behind.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import time
from typing import Dict, List, Optional, Tuple

from repro.ops.log import OperationLog
from repro.service.errors import UnknownSessionError
from repro.service.spec import SessionSpec

__all__ = ["SessionStore", "MANIFEST_FORMAT"]

MANIFEST_FORMAT = "avmem-session-v1"

#: ids double as directory names; keep them filesystem- and URL-safe
_ID_PATTERN = re.compile(r"^[A-Za-z0-9._-]{1,128}$")


def validate_session_id(session_id: str) -> str:
    if not isinstance(session_id, str) or not _ID_PATTERN.match(session_id):
        raise ValueError(
            "session id must be 1-128 characters of [A-Za-z0-9._-], "
            f"got {session_id!r}"
        )
    if session_id in (".", ".."):
        raise ValueError(f"session id {session_id!r} is reserved")
    return session_id


def _write_json(path: str, payload: object) -> None:
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


class SessionStore:
    """Checkpoint directory manager (one subdirectory per session)."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def session_dir(self, session_id: str) -> str:
        return os.path.join(self.root, validate_session_id(session_id))

    def manifest_path(self, session_id: str) -> str:
        return os.path.join(self.session_dir(session_id), "manifest.json")

    def exists(self, session_id: str) -> bool:
        return os.path.exists(self.manifest_path(session_id))

    # ------------------------------------------------------------------
    # Write
    # ------------------------------------------------------------------
    def checkpoint(self, session) -> str:
        """Persist ``session`` (a :class:`SimulationSession`); returns
        the checkpoint directory.  Call with the session lock held so
        the journal cannot move under the write."""
        directory = self.session_dir(session.id)
        logs_dir = os.path.join(directory, "logs")
        os.makedirs(logs_dir, exist_ok=True)
        _write_json(
            os.path.join(directory, "journal.json"),
            {"format": MANIFEST_FORMAT, "entries": session.journal},
        )
        for k, log in enumerate(session.logs):
            path = os.path.join(logs_dir, f"plan-{k:04d}.json")
            if not os.path.exists(path):
                log.to_json(path)
        # Drop stale higher-numbered logs from an earlier life of this id.
        for name in os.listdir(logs_dir):
            match = re.match(r"^plan-(\d{4})\.json$", name)
            if match and int(match.group(1)) >= len(session.logs):
                os.remove(os.path.join(logs_dir, name))
        session.telemetry_snapshot().to_json(os.path.join(directory, "telemetry.json"))
        # The manifest lands last: its presence marks a complete checkpoint.
        _write_json(
            self.manifest_path(session.id),
            {
                "format": MANIFEST_FORMAT,
                "id": session.id,
                "spec": session.spec.as_dict(),
                "created_at": session.created_at,
                "checkpointed_at": time.time(),
                "commands": len(session.journal),
                "plans": len(session.logs),
                "now": session.simulation.sim.now,
            },
        )
        return directory

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------
    def load_manifest(self, session_id: str) -> Dict[str, object]:
        path = self.manifest_path(session_id)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except FileNotFoundError:
            raise UnknownSessionError(session_id) from None
        if manifest.get("format") != MANIFEST_FORMAT:
            raise ValueError(
                f"{path}: not a session manifest (format {manifest.get('format')!r})"
            )
        return manifest

    def load(self, session_id: str) -> Tuple[SessionSpec, List[dict], Dict[str, object]]:
        """The restore inputs: (spec, journal entries, manifest)."""
        manifest = self.load_manifest(session_id)
        spec = SessionSpec.from_dict(manifest["spec"])
        journal_path = os.path.join(self.session_dir(session_id), "journal.json")
        try:
            with open(journal_path, "r", encoding="utf-8") as fh:
                journal = json.load(fh).get("entries", [])
        except FileNotFoundError:
            journal = []
        return spec, journal, manifest

    def load_log(self, session_id: str, plan_index: int) -> OperationLog:
        """A stored per-plan log (integrity checks, post-mortems)."""
        path = os.path.join(
            self.session_dir(session_id), "logs", f"plan-{plan_index:04d}.json"
        )
        if not os.path.exists(path):
            raise UnknownSessionError(session_id)
        return OperationLog.from_json(path)

    def list_ids(self) -> List[str]:
        """Checkpointed session ids (complete manifests only)."""
        out = []
        try:
            names = os.listdir(self.root)
        except FileNotFoundError:
            return []
        for name in names:
            if _ID_PATTERN.match(name) and self.exists(name):
                out.append(name)
        return sorted(out)

    def describe(self, session_id: str) -> Dict[str, object]:
        """A list-row for a checkpointed (not currently live) session."""
        manifest = self.load_manifest(session_id)
        return {
            "id": session_id,
            "status": "checkpointed",
            "created_at": manifest.get("created_at"),
            "checkpointed_at": manifest.get("checkpointed_at"),
            "now": manifest.get("now"),
            "commands": manifest.get("commands"),
            "plans": manifest.get("plans"),
        }

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------
    def delete(self, session_id: str) -> bool:
        """Remove a checkpoint; True if one existed."""
        directory = self.session_dir(session_id)
        if not os.path.isdir(directory):
            return False
        shutil.rmtree(directory)
        return True
