"""The per-session-id registry: create, route, evict, restore.

:class:`SessionOrchestrator` keeps live sessions in a dict guarded by a
registry lock, with per-session locks serializing command execution —
commands on one session queue behind each other while commands on
different sessions run concurrently (the shape of the orchestrator
registries in multi-simulation servers; see SNIPPETS.md §1).

The expensive operations — building a new session, replaying a journal
on restore — run **outside** the registry lock: the id is first claimed
with a placeholder so concurrent requests for the same id wait on the
build without stalling the rest of the server.

Eviction checkpoints a session to the store and drops the live
instance; a later command for that id transparently restores it.  The
``evicted`` flag closes the race where a command was already waiting on
the session lock when the eviction won it first: the waiter re-fetches
through :meth:`get` instead of mutating the dropped instance.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from repro.service.errors import (
    SessionBusyError,
    SessionExistsError,
    UnknownSessionError,
)
from repro.service.session import SimulationSession
from repro.service.spec import SessionSpec
from repro.service.store import SessionStore, validate_session_id

__all__ = ["SessionOrchestrator"]


class _Placeholder:
    """Claims an id in the registry while its session builds/restores.

    Readers wait on :attr:`ready`; the builder publishes the session (or
    the build error) and sets it.
    """

    def __init__(self):
        self.ready = threading.Event()
        self.session: Optional[SimulationSession] = None
        self.error: Optional[BaseException] = None

    def wait(self) -> SimulationSession:
        self.ready.wait()
        if self.error is not None:
            raise self.error
        return self.session


class SessionOrchestrator:
    """Registry of live sessions over a durable :class:`SessionStore`."""

    def __init__(self, store: SessionStore, idle_timeout: Optional[float] = None):
        self._store = store
        self._idle_timeout = idle_timeout
        self._lock = threading.Lock()
        self._live: Dict[str, object] = {}  # id -> session | placeholder

    @property
    def store(self) -> SessionStore:
        return self._store

    # ------------------------------------------------------------------
    # Create / lookup
    # ------------------------------------------------------------------
    def create(self, session_id: str, spec: SessionSpec) -> SimulationSession:
        """Build a new session under ``session_id`` (error if taken)."""
        validate_session_id(session_id)
        placeholder = _Placeholder()
        with self._lock:
            if session_id in self._live or self._store.exists(session_id):
                raise SessionExistsError(session_id)
            self._live[session_id] = placeholder
        return self._publish(session_id, placeholder, lambda: SimulationSession.build(session_id, spec))

    def get(self, session_id: str) -> SimulationSession:
        """The live session, restoring from the store when evicted."""
        placeholder: Optional[_Placeholder] = None
        with self._lock:
            entry = self._live.get(session_id)
            if isinstance(entry, SimulationSession):
                return entry
            if isinstance(entry, _Placeholder):
                placeholder = entry
            else:
                if not self._store.exists(session_id):
                    raise UnknownSessionError(session_id)
                placeholder = _Placeholder()
                self._live[session_id] = placeholder
                entry = None
        if entry is None:
            def restore() -> SimulationSession:
                spec, journal, __ = self._store.load(session_id)
                return SimulationSession.build(session_id, spec, journal=journal)

            return self._publish(session_id, placeholder, restore)
        return placeholder.wait()

    def _publish(
        self,
        session_id: str,
        placeholder: _Placeholder,
        build: Callable[[], SimulationSession],
    ) -> SimulationSession:
        """Run ``build`` outside the registry lock, swap the result in
        for the placeholder, and wake every waiter."""
        try:
            session = build()
        except BaseException as exc:
            with self._lock:
                if self._live.get(session_id) is placeholder:
                    del self._live[session_id]
            placeholder.error = exc
            placeholder.ready.set()
            raise
        with self._lock:
            self._live[session_id] = session
        placeholder.session = session
        placeholder.ready.set()
        return session

    # ------------------------------------------------------------------
    # Command routing
    # ------------------------------------------------------------------
    def run_command(self, session_id: str, fn: Callable[[SimulationSession], object]):
        """Run ``fn(session)`` holding the session's lock.

        Retries the fetch when the instance it was waiting on got
        evicted while queued — the re-fetch transparently restores from
        the checkpoint, so the command never lands on a dropped object.
        """
        while True:
            session = self.get(session_id)
            with session.lock:
                if session.evicted:
                    continue
                return fn(session)

    # ------------------------------------------------------------------
    # Durability / lifecycle
    # ------------------------------------------------------------------
    def checkpoint(self, session_id: str) -> str:
        """Checkpoint a session in place (stays live)."""
        return self.run_command(session_id, self._store.checkpoint)

    def evict(self, session_id: str, block: bool = False) -> None:
        """Checkpoint and drop the live instance.

        Non-blocking by default: a session mid-command raises
        :class:`SessionBusyError` rather than stalling the caller
        (the idle sweeper skips busy sessions and retries next pass).
        """
        with self._lock:
            entry = self._live.get(session_id)
        if entry is None:
            if not self._store.exists(session_id):
                raise UnknownSessionError(session_id)
            return  # already checkpointed only
        if isinstance(entry, _Placeholder):
            entry.wait()
            return self.evict(session_id, block=block)
        acquired = entry.lock.acquire(blocking=block)
        if not acquired:
            raise SessionBusyError(session_id)
        try:
            if entry.evicted:
                return
            self._store.checkpoint(entry)
            entry.evicted = True
            with self._lock:
                if self._live.get(session_id) is entry:
                    del self._live[session_id]
        finally:
            entry.lock.release()

    def sweep_idle(self) -> List[str]:
        """Evict every session idle past the configured timeout."""
        if self._idle_timeout is None:
            return []
        with self._lock:
            candidates = [
                (sid, s)
                for sid, s in self._live.items()
                if isinstance(s, SimulationSession)
                and s.idle_seconds() >= self._idle_timeout
            ]
        evicted = []
        for session_id, __ in candidates:
            try:
                self.evict(session_id)
                evicted.append(session_id)
            except (SessionBusyError, UnknownSessionError):
                continue
        return evicted

    def checkpoint_all(self) -> List[str]:
        """Checkpoint every live session (graceful-shutdown path)."""
        with self._lock:
            ids = [
                sid
                for sid, s in self._live.items()
                if isinstance(s, SimulationSession)
            ]
        done = []
        for session_id in ids:
            try:
                self.checkpoint(session_id)
                done.append(session_id)
            except UnknownSessionError:
                continue
        return done

    def delete(self, session_id: str) -> None:
        """Drop the live instance (without checkpointing) and remove any
        checkpoint.  Busy sessions are not deleted (409)."""
        with self._lock:
            entry = self._live.get(session_id)
        removed = False
        if isinstance(entry, _Placeholder):
            entry.wait()
            return self.delete(session_id)
        if isinstance(entry, SimulationSession):
            if not entry.lock.acquire(blocking=False):
                raise SessionBusyError(session_id)
            try:
                entry.evicted = True
                with self._lock:
                    if self._live.get(session_id) is entry:
                        del self._live[session_id]
                removed = True
            finally:
                entry.lock.release()
        if self._store.delete(session_id) or removed:
            return
        raise UnknownSessionError(session_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def list_sessions(self) -> List[Dict[str, object]]:
        """One row per session, live instances first, then checkpoints
        that have no live instance."""
        with self._lock:
            live = {
                sid: s
                for sid, s in self._live.items()
                if isinstance(s, SimulationSession)
            }
        rows = [s.info() for s in live.values()]
        for session_id in self._store.list_ids():
            if session_id not in live:
                rows.append(self._store.describe(session_id))
        rows.sort(key=lambda r: str(r["id"]))
        return rows
