"""The AVMEM membership-predicate framework (Section 2, equation 1).

``M(x, y) ≡ { H(id(x), id(y)) ≤ f(av(x), av(y)) }``

* **Consistent** — the value depends only on the two identifiers and
  their availabilities, so the recipient or any third party can verify a
  claimed relationship (the anti-selfishness property).
* **Random** — ``H`` is uniform on [0, 1), so membership is a Bernoulli
  trial with success probability ``f``, giving the randomization that
  connectivity arguments need.

``f`` dispatches on the availability distance: within ±ε it is the
horizontal sub-predicate (slivers of *similar* availability), otherwise
the vertical one (long links across the availability space) — Fig 1.

The optional **cushion** is the Section 4.1 accommodation for stale or
inconsistent availability estimates: verification accepts when
``H ≤ f + cushion``.  The cushion applies at *verification*, not at
neighbor selection, so it does not inflate membership lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.availability import AvailabilityPdf
from repro.core.hashing import Mix64PairHash, PairwiseHash
from repro.core.ids import NodeId, digest_array
from repro.core.slivers import (
    HorizontalSliverRule,
    LogarithmicConstantHorizontal,
    LogarithmicVertical,
    RandomUniformRule,
    VerticalSliverRule,
)
from repro.util.validation import check_positive, check_probability, check_unit_interval

__all__ = ["SliverKind", "NodeDescriptor", "AvmemPredicate", "random_overlay_predicate"]


class SliverKind(Enum):
    """Which membership list a neighbor belongs to."""

    HORIZONTAL = "horizontal"
    VERTICAL = "vertical"


@dataclass(frozen=True)
class NodeDescriptor:
    """The (identifier, availability) pair the predicate operates on."""

    node: NodeId
    availability: float

    def __post_init__(self):
        check_unit_interval(self.availability, "availability")

    def with_availability(self, availability: float) -> "NodeDescriptor":
        return NodeDescriptor(self.node, availability)


class AvmemPredicate:
    """A concrete AVMEM predicate: sliver rules + ε + hash + PDF.

    The canonical paper configuration is
    ``AvmemPredicate(LogarithmicConstantHorizontal(), LogarithmicVertical(), pdf)``.
    """

    def __init__(
        self,
        horizontal: HorizontalSliverRule,
        vertical: VerticalSliverRule,
        pdf: AvailabilityPdf,
        epsilon: float = 0.1,
        hash_fn: Optional[PairwiseHash] = None,
    ):
        if not isinstance(horizontal, HorizontalSliverRule):
            raise TypeError(f"horizontal must be a HorizontalSliverRule, got {horizontal!r}")
        if not isinstance(vertical, VerticalSliverRule):
            raise TypeError(f"vertical must be a VerticalSliverRule, got {vertical!r}")
        self.horizontal = horizontal
        self.vertical = vertical
        self.pdf = pdf
        self.epsilon = check_positive(epsilon, "epsilon")
        self.hash_fn = hash_fn if hash_fn is not None else Mix64PairHash()

    # ------------------------------------------------------------------
    # Scalar evaluation
    # ------------------------------------------------------------------
    def classify(self, av_x: float, av_y: float) -> SliverKind:
        """Horizontal when ``|av(x) − av(y)| < ε``, else vertical."""
        if abs(av_x - av_y) < self.epsilon:
            return SliverKind.HORIZONTAL
        return SliverKind.VERTICAL

    def threshold(self, av_x: float, av_y: float) -> float:
        """``f(av(x), av(y))`` — dispatch to the matching sliver rule."""
        if self.classify(av_x, av_y) is SliverKind.HORIZONTAL:
            return self.horizontal.threshold(av_x, av_y, self.pdf)
        return self.vertical.threshold(av_x, av_y, self.pdf)

    def hash_value(self, x: NodeId, y: NodeId) -> float:
        """``H(id(x), id(y))``."""
        return self.hash_fn.value(x, y)

    def evaluate(
        self, x: NodeDescriptor, y: NodeDescriptor, cushion: float = 0.0
    ) -> bool:
        """``M(x, y)`` — should ``y`` be in ``x``'s membership list?

        ``cushion`` loosens verification against stale availability data
        (Section 4.1); pass 0 for selection.  A node is never its own
        neighbor.
        """
        check_probability(cushion, "cushion")
        if x.node == y.node:
            return False
        f = self.threshold(x.availability, y.availability)
        return self.hash_value(x.node, y.node) <= min(1.0, f + cushion)

    def evaluate_kind(
        self, x: NodeDescriptor, y: NodeDescriptor, cushion: float = 0.0
    ) -> Optional[SliverKind]:
        """``M(x, y)`` with the sliver classification, or None."""
        if not self.evaluate(x, y, cushion=cushion):
            return None
        return self.classify(x.availability, y.availability)

    # ------------------------------------------------------------------
    # Vectorized evaluation (direct overlay construction)
    # ------------------------------------------------------------------
    def evaluate_many(
        self,
        x: NodeDescriptor,
        candidates: Sequence[NodeId],
        availabilities: np.ndarray,
        cushion: float = 0.0,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate ``M(x, y_i)`` for many candidates at once.

        Returns ``(member_mask, horizontal_mask)`` — boolean arrays over
        the candidates.  Requires a vectorizable hash (mix64); falls back
        to a scalar loop otherwise.  Any candidate equal to ``x`` itself
        is excluded.
        """
        availabilities = np.asarray(availabilities, dtype=float)
        if len(candidates) != availabilities.size:
            raise ValueError(
                f"{len(candidates)} candidates but {availabilities.size} availabilities"
            )
        horizontal_mask = np.abs(availabilities - x.availability) < self.epsilon
        thresholds = np.empty(availabilities.size, dtype=float)
        if horizontal_mask.any():
            thresholds[horizontal_mask] = self.horizontal.threshold_many(
                x.availability, availabilities[horizontal_mask], self.pdf
            )
        vertical_mask = ~horizontal_mask
        if vertical_mask.any():
            thresholds[vertical_mask] = self.vertical.threshold_many(
                x.availability, availabilities[vertical_mask], self.pdf
            )
        if cushion:
            thresholds = np.minimum(1.0, thresholds + cushion)
        if self.hash_fn.supports_vectorized:
            hashes = self.hash_fn.value_many(x.node, digest_array(candidates))
        else:
            hashes = np.array([self.hash_fn.value(x.node, y) for y in candidates])
        member = hashes <= thresholds
        for i, y in enumerate(candidates):
            if y == x.node:
                member[i] = False
        return member, horizontal_mask

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AvmemPredicate(h={self.horizontal!r}, v={self.vertical!r}, "
            f"epsilon={self.epsilon}, hash={self.hash_fn.name})"
        )


def paper_predicate(
    pdf: AvailabilityPdf,
    epsilon: float = 0.1,
    c1: float = 3.0,
    c2: float = 1.0,
    hash_fn: Optional[PairwiseHash] = None,
) -> AvmemPredicate:
    """The paper's default predicate: I.B vertical + II.B horizontal."""
    return AvmemPredicate(
        horizontal=LogarithmicConstantHorizontal(c2=c2, epsilon=epsilon),
        vertical=LogarithmicVertical(c1=c1),
        pdf=pdf,
        epsilon=epsilon,
        hash_fn=hash_fn,
    )


def random_overlay_predicate(
    pdf: AvailabilityPdf,
    probability: Optional[float] = None,
    expected_degree: Optional[float] = None,
    epsilon: float = 0.1,
    hash_fn: Optional[PairwiseHash] = None,
) -> AvmemPredicate:
    """The consistent *random* overlay baseline of Fig 10 (``f = p``).

    Provide either ``probability`` directly or ``expected_degree`` to
    degree-match AVMEM.
    """
    if (probability is None) == (expected_degree is None):
        raise ValueError("pass exactly one of probability / expected_degree")
    if probability is None:
        rule = RandomUniformRule.matching_expected_degree(expected_degree, pdf.n_star)
    else:
        rule = RandomUniformRule(probability)
    return AvmemPredicate(
        horizontal=rule, vertical=rule, pdf=pdf, epsilon=epsilon, hash_fn=hash_fn
    )


__all__.append("paper_predicate")
