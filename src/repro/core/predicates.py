"""The AVMEM membership-predicate framework (Section 2, equation 1).

``M(x, y) ≡ { H(id(x), id(y)) ≤ f(av(x), av(y)) }``

* **Consistent** — the value depends only on the two identifiers and
  their availabilities, so the recipient or any third party can verify a
  claimed relationship (the anti-selfishness property).
* **Random** — ``H`` is uniform on [0, 1), so membership is a Bernoulli
  trial with success probability ``f``, giving the randomization that
  connectivity arguments need.

``f`` dispatches on the availability distance: within ±ε it is the
horizontal sub-predicate (slivers of *similar* availability), otherwise
the vertical one (long links across the availability space) — Fig 1.

The optional **cushion** is the Section 4.1 accommodation for stale or
inconsistent availability estimates: verification accepts when
``H ≤ f + cushion``.  The cushion applies at *verification*, not at
neighbor selection, so it does not inflate membership lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.availability import AvailabilityPdf
from repro.core.hashing import Mix64PairHash, PairwiseHash
from repro.core.ids import NodeId, digest_array
from repro.core.slivers import (
    HorizontalSliverRule,
    LogarithmicConstantHorizontal,
    LogarithmicVertical,
    RandomUniformRule,
    VerticalSliverRule,
    has_candidate_bound,
    has_matrix_threshold,
)
from repro.util.validation import check_positive, check_probability, check_unit_interval

__all__ = ["SliverKind", "NodeDescriptor", "AvmemPredicate", "random_overlay_predicate"]


class SliverKind(Enum):
    """Which membership list a neighbor belongs to."""

    HORIZONTAL = "horizontal"
    VERTICAL = "vertical"


@dataclass(frozen=True)
class NodeDescriptor:
    """The (identifier, availability) pair the predicate operates on."""

    node: NodeId
    availability: float

    def __post_init__(self):
        check_unit_interval(self.availability, "availability")

    def with_availability(self, availability: float) -> "NodeDescriptor":
        return NodeDescriptor(self.node, availability)


class AvmemPredicate:
    """A concrete AVMEM predicate: sliver rules + ε + hash + PDF.

    The canonical paper configuration is
    ``AvmemPredicate(LogarithmicConstantHorizontal(), LogarithmicVertical(), pdf)``.
    """

    def __init__(
        self,
        horizontal: HorizontalSliverRule,
        vertical: VerticalSliverRule,
        pdf: AvailabilityPdf,
        epsilon: float = 0.1,
        hash_fn: Optional[PairwiseHash] = None,
    ):
        if not isinstance(horizontal, HorizontalSliverRule):
            raise TypeError(f"horizontal must be a HorizontalSliverRule, got {horizontal!r}")
        if not isinstance(vertical, VerticalSliverRule):
            raise TypeError(f"vertical must be a VerticalSliverRule, got {vertical!r}")
        self.horizontal = horizontal
        self.vertical = vertical
        self.pdf = pdf
        self.epsilon = check_positive(epsilon, "epsilon")
        self.hash_fn = hash_fn if hash_fn is not None else Mix64PairHash()

    # ------------------------------------------------------------------
    # Scalar evaluation
    # ------------------------------------------------------------------
    def classify(self, av_x: float, av_y: float) -> SliverKind:
        """Horizontal when ``|av(x) − av(y)| < ε``, else vertical."""
        if abs(av_x - av_y) < self.epsilon:
            return SliverKind.HORIZONTAL
        return SliverKind.VERTICAL

    def threshold(self, av_x: float, av_y: float) -> float:
        """``f(av(x), av(y))`` — dispatch to the matching sliver rule."""
        if self.classify(av_x, av_y) is SliverKind.HORIZONTAL:
            return self.horizontal.threshold(av_x, av_y, self.pdf)
        return self.vertical.threshold(av_x, av_y, self.pdf)

    def hash_value(self, x: NodeId, y: NodeId) -> float:
        """``H(id(x), id(y))``."""
        return self.hash_fn.value(x, y)

    def evaluate(
        self, x: NodeDescriptor, y: NodeDescriptor, cushion: float = 0.0
    ) -> bool:
        """``M(x, y)`` — should ``y`` be in ``x``'s membership list?

        ``cushion`` loosens verification against stale availability data
        (Section 4.1); pass 0 for selection.  A node is never its own
        neighbor.
        """
        check_probability(cushion, "cushion")
        if x.node == y.node:
            return False
        f = self.threshold(x.availability, y.availability)
        return self.hash_value(x.node, y.node) <= min(1.0, f + cushion)

    def evaluate_kind(
        self, x: NodeDescriptor, y: NodeDescriptor, cushion: float = 0.0
    ) -> Optional[SliverKind]:
        """``M(x, y)`` with the sliver classification, or None."""
        if not self.evaluate(x, y, cushion=cushion):
            return None
        return self.classify(x.availability, y.availability)

    # ------------------------------------------------------------------
    # Vectorized evaluation (direct overlay construction)
    # ------------------------------------------------------------------
    def evaluate_many(
        self,
        x: NodeDescriptor,
        candidates: Sequence[NodeId],
        availabilities: np.ndarray,
        cushion: float = 0.0,
        digests: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate ``M(x, y_i)`` for many candidates at once.

        Returns ``(member_mask, horizontal_mask)`` — boolean arrays over
        the candidates.  Requires a vectorizable hash (mix64); falls back
        to a scalar loop otherwise.  Any candidate equal to ``x`` itself
        is excluded.  ``digests`` optionally supplies the candidates'
        precomputed ``uint64`` endpoint digests (e.g. from a membership
        table's columnar storage), skipping the per-candidate digest
        gather and the per-candidate self-exclusion scan.
        """
        availabilities = np.asarray(availabilities, dtype=float)
        if len(candidates) != availabilities.size:
            raise ValueError(
                f"{len(candidates)} candidates but {availabilities.size} availabilities"
            )
        if digests is not None:
            digests = np.asarray(digests, dtype=np.uint64)
            if digests.size != availabilities.size:
                raise ValueError(
                    f"{digests.size} digests but {availabilities.size} availabilities"
                )
        horizontal_mask = np.abs(availabilities - x.availability) < self.epsilon
        thresholds = np.empty(availabilities.size, dtype=float)
        if horizontal_mask.any():
            thresholds[horizontal_mask] = self.horizontal.threshold_many(
                x.availability, availabilities[horizontal_mask], self.pdf
            )
        vertical_mask = ~horizontal_mask
        if vertical_mask.any():
            thresholds[vertical_mask] = self.vertical.threshold_many(
                x.availability, availabilities[vertical_mask], self.pdf
            )
        if cushion:
            thresholds = np.minimum(1.0, thresholds + cushion)
        if self.hash_fn.supports_vectorized:
            if digests is None:
                digests = digest_array(candidates)
            hashes = self.hash_fn.value_many(x.node, digests)
        else:
            hashes = np.array([self.hash_fn.value(x.node, y) for y in candidates])
        member = hashes <= thresholds
        if digests is not None:
            member[digests == np.uint64(x.node.digest64)] = False
        else:
            for i, y in enumerate(candidates):
                if y == x.node:
                    member[i] = False
        return member, horizontal_mask

    @property
    def supports_candidate_generation(self) -> bool:
        """Whether this predicate admits the exact O(N·k) candidate
        path: an interval-structured hash (e.g. ``affine64``) plus
        bucket-boundable sliver rules (every paper rule; not
        application :class:`~repro.core.slivers.FunctionRule`\\ s)."""
        return (
            getattr(self.hash_fn, "supports_interval", False)
            and has_candidate_bound(self.horizontal)
            and has_candidate_bound(self.vertical)
        )

    def _resolve_method(self, method: str) -> str:
        if method == "auto":
            return "candidates" if self.supports_candidate_generation else "exhaustive"
        if method not in ("exhaustive", "candidates"):
            raise ValueError(
                f"method must be 'exhaustive', 'candidates', or 'auto', got {method!r}"
            )
        if method == "candidates" and not self.supports_candidate_generation:
            raise ValueError(
                f"predicate {self!r} does not support candidate generation: "
                "it needs an interval-structured hash (affine64) and sliver "
                "rules with bucket bounds"
            )
        return method

    def evaluate_all(
        self,
        ids: Sequence[NodeId],
        availabilities: np.ndarray,
        cushion: float = 0.0,
        block_rows: int = 256,
        method: str = "exhaustive",
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Evaluate ``M(x_i, y_j)`` for the entire population at once.

        ``method`` selects the engine: ``"exhaustive"`` computes the
        full N×N hash/threshold comparison in numpy blocks of
        ``block_rows`` source rows (tiling bounds peak memory at
        ``O(block_rows · N)``); ``"candidates"`` enumerates only the
        O(k) plausible neighbors per source through the inverted index
        in :mod:`repro.core.candidates` (requires an
        interval-structured hash — see
        :attr:`supports_candidate_generation`) and is exact-parity with
        the sweep; ``"auto"`` picks candidates whenever supported.
        Because the predicate is consistent this is the whole overlay in
        one call — the engine behind the array-backed
        :class:`~repro.overlays.graphs.OverlayGraph`.

        Returns ``(src_indices, dst_indices, horizontal)``: parallel
        arrays with one entry per member edge, sorted by source then
        destination index; ``horizontal`` flags the sliver kind.  The
        diagonal (a node is never its own neighbor) is excluded; ``ids``
        must be unique.  Falls back to a scalar hash loop per row for
        non-vectorizable hashes.
        """
        check_probability(cushion, "cushion")
        availabilities = np.asarray(availabilities, dtype=float)
        n = len(ids)
        if availabilities.size != n:
            raise ValueError(
                f"{n} ids but {availabilities.size} availabilities"
            )
        if len(set(ids)) != n:
            raise ValueError("ids must be unique")
        if block_rows <= 0:
            raise ValueError(f"block_rows must be positive, got {block_rows}")
        digests = digest_array(ids)
        if self._resolve_method(method) == "candidates":
            from repro.core.candidates import evaluate_all_candidates

            return evaluate_all_candidates(self, digests, availabilities, cushion)
        return self._exhaustive_blocks(digests, availabilities, cushion, block_rows, ids)

    def evaluate_all_rows(
        self,
        digests: np.ndarray,
        availabilities: np.ndarray,
        cushion: float = 0.0,
        block_rows: int = 256,
        method: str = "auto",
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Row-space :meth:`evaluate_all`: operate directly on a
        population's ``uint64`` digest array without materializing any
        :class:`NodeId` objects — the entry point for
        :class:`~repro.core.population.Population`-backed overlay
        construction at large N.  The exhaustive engine requires a
        matrix-capable hash here (string hashes need the id objects);
        output is identical to :meth:`evaluate_all` on the ids with the
        same digests.
        """
        check_probability(cushion, "cushion")
        digests = np.asarray(digests, dtype=np.uint64)
        availabilities = np.asarray(availabilities, dtype=float)
        n = digests.shape[0]
        if availabilities.size != n:
            raise ValueError(f"{n} digests but {availabilities.size} availabilities")
        if np.unique(digests).size != n:
            raise ValueError("digests must be unique")
        if block_rows <= 0:
            raise ValueError(f"block_rows must be positive, got {block_rows}")
        if self._resolve_method(method) == "candidates":
            from repro.core.candidates import evaluate_all_candidates

            return evaluate_all_candidates(self, digests, availabilities, cushion)
        if not self.hash_fn.supports_matrix:
            raise ValueError(
                f"hash {self.hash_fn.name!r} cannot evaluate in row space "
                "(no matrix form); pass the ids to evaluate_all instead"
            )
        return self._exhaustive_blocks(digests, availabilities, cushion, block_rows, None)

    def _exhaustive_blocks(
        self,
        digests: np.ndarray,
        availabilities: np.ndarray,
        cushion: float,
        block_rows: int,
        ids: Optional[Sequence[NodeId]],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        n = digests.shape[0]
        use_matrix_hash = self.hash_fn.supports_matrix
        # Rules with closed-form matrix thresholds are total functions and
        # can be evaluated over the full grid; rules that only define the
        # scalar/row forms (application FunctionRules) may be partial —
        # e.g. a distance-decaying vertical rule is undefined in-band —
        # so they get the masked row evaluation evaluate_many performs.
        use_matrix_thresholds = has_matrix_threshold(
            self.horizontal
        ) and has_matrix_threshold(self.vertical)
        src_chunks = []
        dst_chunks = []
        horizontal_chunks = []
        for start in range(0, n, block_rows):
            stop = min(start + block_rows, n)
            av_block = availabilities[start:stop]
            h_mask = np.abs(av_block[:, None] - availabilities[None, :]) < self.epsilon
            if use_matrix_thresholds:
                thresholds = np.where(
                    h_mask,
                    self.horizontal.threshold_matrix(av_block, availabilities, self.pdf),
                    self.vertical.threshold_matrix(av_block, availabilities, self.pdf),
                )
            else:
                thresholds = np.empty(h_mask.shape, dtype=float)
                for r in range(stop - start):
                    row_h = h_mask[r]
                    if row_h.any():
                        thresholds[r, row_h] = self.horizontal.threshold_many(
                            float(av_block[r]), availabilities[row_h], self.pdf
                        )
                    row_v = ~row_h
                    if row_v.any():
                        thresholds[r, row_v] = self.vertical.threshold_many(
                            float(av_block[r]), availabilities[row_v], self.pdf
                        )
            if cushion:
                thresholds = np.minimum(1.0, thresholds + cushion)
            if use_matrix_hash:
                hashes = self.hash_fn.value_matrix(digests[start:stop], digests)
            else:
                hashes = np.array(
                    [[self.hash_fn.value(ids[i], y) for y in ids]
                     for i in range(start, stop)]
                )
            member = hashes <= thresholds
            # Mask the diagonal: a node is never its own neighbor.
            rows = np.arange(start, stop)
            member[rows - start, rows] = False
            block_src, block_dst = np.nonzero(member)
            src_chunks.append((block_src + start).astype(np.int64))
            dst_chunks.append(block_dst.astype(np.int64))
            horizontal_chunks.append(h_mask[member])
        if not src_chunks:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), np.empty(0, dtype=bool)
        return (
            np.concatenate(src_chunks),
            np.concatenate(dst_chunks),
            np.concatenate(horizontal_chunks),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AvmemPredicate(h={self.horizontal!r}, v={self.vertical!r}, "
            f"epsilon={self.epsilon}, hash={self.hash_fn.name})"
        )


def paper_predicate(
    pdf: AvailabilityPdf,
    epsilon: float = 0.1,
    c1: float = 3.0,
    c2: float = 1.0,
    hash_fn: Optional[PairwiseHash] = None,
) -> AvmemPredicate:
    """The paper's default predicate: I.B vertical + II.B horizontal."""
    return AvmemPredicate(
        horizontal=LogarithmicConstantHorizontal(c2=c2, epsilon=epsilon),
        vertical=LogarithmicVertical(c1=c1),
        pdf=pdf,
        epsilon=epsilon,
        hash_fn=hash_fn,
    )


def random_overlay_predicate(
    pdf: AvailabilityPdf,
    probability: Optional[float] = None,
    expected_degree: Optional[float] = None,
    epsilon: float = 0.1,
    hash_fn: Optional[PairwiseHash] = None,
) -> AvmemPredicate:
    """The consistent *random* overlay baseline of Fig 10 (``f = p``).

    Provide either ``probability`` directly or ``expected_degree`` to
    degree-match AVMEM.
    """
    if (probability is None) == (expected_degree is None):
        raise ValueError("pass exactly one of probability / expected_degree")
    if probability is None:
        rule = RandomUniformRule.matching_expected_degree(expected_degree, pdf.n_star)
    else:
        rule = RandomUniformRule(probability)
    return AvmemPredicate(
        horizontal=rule, vertical=rule, pdf=pdf, epsilon=epsilon, hash_fn=hash_fn
    )


__all__.append("paper_predicate")
