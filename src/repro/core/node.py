"""The AVMEM node: discovery and refresh sub-protocols (Section 3.1),
plus message dispatch for the management operations built on top.

Discovery (every ``discovery_period``, typically 1 minute): iterate the
coarse view; for every entry not already a neighbor, fetch its
availability from the monitoring service and evaluate the predicate;
insert matches into HS/VS.

Refresh (every ``refresh_period``, typically 20 minutes): re-fetch the
availability of every current neighbor, re-evaluate the predicate, drop
entries for which ``M(x, y)`` has become false, and re-classify entries
whose sliver changed.  Refresh is also when availability caches are
brought up to date — between refreshes, forwarding decisions use the
cached (stale) values.

Both protocols only run while the node is online per the churn trace; a
node that goes offline keeps its lists and resumes where it left off —
matching how a real process would persist soft state across restarts
within the measurement horizon.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Type

import numpy as np

from repro.core.config import AvmemConfig
from repro.core.ids import NodeId
from repro.core.membership import MembershipLists
from repro.core.population import Population
from repro.core.predicates import AvmemPredicate, NodeDescriptor
from repro.core.verification import InboundVerifier
from repro.monitor.base import CoarseViewProvider
from repro.monitor.cache import CachedAvailabilityView
from repro.sim.engine import PeriodicTask, Simulator
from repro.sim.network import Envelope, Network
from repro.util.randomness import fallback_rng

__all__ = ["AvmemNode"]

PayloadHandler = Callable[["AvmemNode", Envelope], None]


class AvmemNode:
    """One AVMEM participant.

    Parameters
    ----------
    node_id, sim, network:
        Identity and substrate bindings.  The node attaches itself to the
        network on construction.
    predicate:
        The application-specified AVMEM predicate (shared, consistent).
    config:
        Protocol periods, cushion, etc.
    availability_view:
        This node's cached window onto the availability monitoring
        service.  Each node gets its *own* cache — staleness is per-node.
    coarse_view:
        The shuffled partial-membership service.
    rng:
        Stream for protocol randomness (start staggering, tie-breaking).
    population, row:
        Optional struct-of-arrays binding.  When given, the node is a
        lightweight view over ``population`` row ``row``: its membership
        lists are population-backed (row-keyed installs stay object-free)
        and ``node_id`` may be omitted — it is materialized lazily from
        the population only when identity-object APIs need it.
    """

    def __init__(
        self,
        node_id: Optional[NodeId],
        sim: Simulator,
        network: Network,
        predicate: AvmemPredicate,
        config: AvmemConfig,
        availability_view: CachedAvailabilityView,
        coarse_view: CoarseViewProvider,
        rng: Optional[np.random.Generator] = None,
        population: Optional["Population"] = None,
        row: Optional[int] = None,
    ):
        if node_id is None:
            if population is None or row is None:
                raise ValueError("node_id may only be omitted with population and row")
            node_id = population.id_of(int(row))
        self.id = node_id
        self.sim = sim
        self.network = network
        self.predicate = predicate
        self.config = config
        self.availability = availability_view
        self.coarse_view = coarse_view
        self.rng = rng if rng is not None else fallback_rng()
        self.population = population
        self.row = int(row) if row is not None else None
        self.lists = MembershipLists(node_id, population=population)
        self.verifier = InboundVerifier(
            node_id, predicate, availability_view, cushion=config.cushion
        )
        self.discovery_rounds = 0
        self.refresh_rounds = 0
        self._handlers: Dict[Type, PayloadHandler] = {}
        self._tasks: List[PeriodicTask] = []
        network.attach(node_id, self._on_envelope)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, stagger: bool = True) -> None:
        """Begin the discovery and refresh loops.

        ``stagger`` randomizes each loop's first firing within one period
        so a large population does not run in lockstep.
        """
        if self._tasks:
            raise RuntimeError(f"node {self.id} already started")
        d_delay = float(self.rng.uniform(0, self.config.discovery_period)) if stagger else None
        r_delay = float(self.rng.uniform(0, self.config.refresh_period)) if stagger else None
        self._tasks.append(
            PeriodicTask(self.sim, self.config.discovery_period, self.discovery_step, start_delay=d_delay)
        )
        self._tasks.append(
            PeriodicTask(self.sim, self.config.refresh_period, self.refresh_step, start_delay=r_delay)
        )

    def stop(self) -> None:
        for task in self._tasks:
            task.stop()
        self._tasks.clear()

    @property
    def online(self) -> bool:
        return self.network.is_online(self.id)

    # ------------------------------------------------------------------
    # Descriptors
    # ------------------------------------------------------------------
    def self_descriptor(self, fresh: bool = False) -> NodeDescriptor:
        """This node's (id, availability) pair, from its own cache.

        ``fresh`` forces a fetch from the monitoring service.
        """
        if fresh:
            value = self.availability.fetch(self.id)
        else:
            value = self.availability.get_or_fetch(self.id)
        return NodeDescriptor(self.id, value)

    # ------------------------------------------------------------------
    # Discovery sub-protocol
    # ------------------------------------------------------------------
    def discovery_step(self) -> int:
        """One discovery round.  Returns the number of neighbors added."""
        if not self.online:
            return 0
        self.discovery_rounds += 1
        me = self.self_descriptor(fresh=True)
        added = 0
        for candidate in self.coarse_view.view(self.id):
            if candidate == self.id or candidate in self.lists:
                continue
            if self.config.discovery_liveness and not self.network.is_online(candidate):
                continue  # handshake with the candidate failed; skip it
            av_candidate = self.availability.fetch(candidate)
            kind = self.predicate.evaluate_kind(me, NodeDescriptor(candidate, av_candidate))
            if kind is not None:
                self.lists.upsert(candidate, av_candidate, kind, self.sim.now)
                added += 1
        return added

    # ------------------------------------------------------------------
    # Refresh sub-protocol
    # ------------------------------------------------------------------
    def refresh_step(self) -> int:
        """One refresh round.  Returns the number of neighbors evicted.

        An entry is evicted when the predicate no longer holds for the
        re-fetched availabilities, or (with ``config.refresh_liveness``)
        when the neighbor fails its liveness probe — it will re-enter the
        lists through discovery once it is back and still satisfies the
        predicate.

        The whole round is one batched pass: a columnar snapshot of the
        lists (:meth:`~repro.core.membership.MembershipTable.neighbor_arrays`),
        one bulk cache fetch for the live neighbors, one vectorized
        predicate evaluation, and one masked
        :meth:`~repro.core.membership.MembershipTable.refresh_round`
        update — semantically identical to the scalar per-entry loop it
        replaces (offline neighbors are evicted without an availability
        fetch, exactly as the scalar probe short-circuited).
        """
        if not self.online:
            return 0
        self.refresh_rounds += 1
        me = self.self_descriptor(fresh=True)
        view = self.lists.neighbor_arrays()
        total = view.slots.size
        if total == 0:
            return 0
        neighbors = view.nodes.tolist()
        if self.config.refresh_liveness:
            probed = np.fromiter(
                (self.network.is_online(node) for node in neighbors),
                dtype=bool,
                count=total,
            )
        else:
            probed = np.ones(total, dtype=bool)
        availabilities = np.zeros(total, dtype=float)
        keep = np.zeros(total, dtype=bool)
        horizontal = np.zeros(total, dtype=bool)
        live = np.flatnonzero(probed)
        if live.size:
            live_nodes = [neighbors[i] for i in live]
            availabilities[live] = self.availability.fetch_array(live_nodes)
            keep[live], horizontal[live] = self.predicate.evaluate_many(
                me, live_nodes, availabilities[live], digests=view.digests[live]
            )
        return self.lists.refresh_round(
            view.slots, availabilities, horizontal, keep, now=self.sim.now
        )

    # ------------------------------------------------------------------
    # Direct bootstrap (consistent-predicate shortcut)
    # ------------------------------------------------------------------
    def bootstrap_from(self, candidates: Sequence[NodeDescriptor]) -> int:
        """Fill the lists by evaluating the predicate against a candidate
        set directly.

        Because the predicate is *consistent*, the overlay it spans is a
        pure function of (ids, availabilities); this shortcut produces
        exactly the graph the discovery protocol converges to, and is
        used by ``bootstrap="direct"`` simulations to skip warm-up
        (docs/architecture.md §"Bootstrap modes").  Returns the number of
        neighbors installed.
        """
        me = self.self_descriptor(fresh=True)
        ids = np.empty(len(candidates), dtype=object)
        ids[:] = [c.node for c in candidates]
        avs = np.array([c.availability for c in candidates], dtype=float)
        member, horizontal = self.predicate.evaluate_many(me, ids, avs)
        selected = np.flatnonzero(member)
        return self.install_members(
            ids[selected], avs[selected], horizontal[selected]
        )

    def install_members(
        self,
        ids: Sequence[NodeId],
        availabilities: np.ndarray,
        horizontal_flags: np.ndarray,
        digests: Optional[np.ndarray] = None,
    ) -> int:
        """Bulk-install already-evaluated predicate matches.

        The sequences are parallel: one neighbor per entry, with
        ``horizontal_flags`` giving the sliver classification and
        ``digests`` optionally carrying precomputed endpoint digests
        (sliced from a population-wide array).  This is the shared sink
        for :meth:`bootstrap_from` and for the batched whole-population
        bootstrap the simulation feeds from
        :class:`~repro.overlays.graphs.OverlayGraph` CSR rows — the
        predicate work is already done, and the install itself is one
        columnar :meth:`~repro.core.membership.MembershipTable.upsert_many`
        pass.  Returns the number of neighbors installed.
        """
        return self.lists.upsert_many(
            ids, availabilities, horizontal_flags, now=self.sim.now, digests=digests
        )

    def install_member_rows(
        self,
        rows: np.ndarray,
        availabilities: np.ndarray,
        horizontal_flags: np.ndarray,
    ) -> int:
        """Row-space :meth:`install_members` for population-backed nodes.

        Same contract, but neighbors are addressed by population row, so
        a whole-population bootstrap installs CSR slices without ever
        materializing :class:`NodeId` objects.
        """
        return self.lists.upsert_rows(
            rows, availabilities, horizontal_flags, now=self.sim.now
        )

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def register_handler(self, payload_type: Type, handler: PayloadHandler) -> None:
        """Route incoming payloads of ``payload_type`` to ``handler``.

        The ops layer registers its message types here; one handler per
        type.
        """
        if payload_type in self._handlers:
            raise ValueError(f"handler for {payload_type.__name__} already registered")
        self._handlers[payload_type] = handler

    def send(self, dst: NodeId, payload: Any) -> bool:
        """Send a payload through the network (presence-gated)."""
        return self.network.send(self.id, dst, payload)

    def _on_envelope(self, envelope: Envelope) -> None:
        handler = self._handlers.get(type(envelope.payload))
        if handler is not None:
            handler(self, envelope)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AvmemNode({self.id}, hs={self.lists.horizontal_count}, "
            f"vs={self.lists.vertical_count})"
        )
