"""Inbound message verification (Sections 2 and 4.1).

Consistency of the AVMEM predicate means a recipient ``y`` (or any third
party) can check whether a sender ``x`` is legitimately its in-neighbor:
recompute ``H(id(x), id(y))`` and compare against
``f(av(x), av(y)) + cushion``, using whatever availability estimates the
verifier has.  Staleness and monitor inconsistency make this check
imperfect in both directions — Fig 5 measures how many *illegitimate*
messages slip through, Fig 6 how many *legitimate* ones are rejected —
and the cushion trades one against the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.ids import NodeId
from repro.core.predicates import AvmemPredicate
from repro.monitor.cache import CachedAvailabilityView
from repro.util.validation import check_probability

__all__ = ["VerificationResult", "InboundVerifier"]


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of one in-neighbor check, with the evidence used."""

    accepted: bool
    hash_value: float
    threshold: float
    cushion: float
    sender_availability: float
    self_availability: float

    @property
    def margin(self) -> float:
        """``(threshold + cushion) − hash`` — positive iff accepted."""
        return min(1.0, self.threshold + self.cushion) - self.hash_value


class InboundVerifier:
    """Checks ``M(sender, owner)`` from the owner's local knowledge.

    The verifier reads availabilities through the owner's
    :class:`~repro.monitor.cache.CachedAvailabilityView` — cached values
    if present (the realistic, attackable configuration), else a fresh
    fetch from the monitoring service.
    """

    def __init__(
        self,
        owner: NodeId,
        predicate: AvmemPredicate,
        cache: CachedAvailabilityView,
        cushion: float = 0.0,
    ):
        self.owner = owner
        self.predicate = predicate
        self.cache = cache
        self.cushion = check_probability(cushion, "cushion")
        self.accept_count = 0
        self.reject_count = 0

    def verify(
        self, sender: NodeId, cushion: Optional[float] = None
    ) -> VerificationResult:
        """Would the owner accept a message claiming to come from its
        in-neighbor ``sender``?

        ``cushion`` overrides the verifier's configured cushion for this
        check (the Figs 5-6 experiments sweep it without rebuilding the
        population).
        """
        effective_cushion = (
            self.cushion if cushion is None else check_probability(cushion, "cushion")
        )
        av_sender = self.cache.get_or_fetch(sender)
        av_self = self.cache.get_or_fetch(self.owner)
        hash_value = self.predicate.hash_value(sender, self.owner)
        threshold = self.predicate.threshold(av_sender, av_self)
        accepted = hash_value <= min(1.0, threshold + effective_cushion)
        if accepted:
            self.accept_count += 1
        else:
            self.reject_count += 1
        return VerificationResult(
            accepted=accepted,
            hash_value=hash_value,
            threshold=threshold,
            cushion=effective_cushion,
            sender_availability=av_sender,
            self_availability=av_self,
        )

    def accepts(self, sender: NodeId, cushion: Optional[float] = None) -> bool:
        """Boolean-only convenience wrapper over :meth:`verify`."""
        return self.verify(sender, cushion=cushion).accepted
