"""Candidate-generated overlay construction — exact O(N·k) enumeration.

The block-tiled ``AvmemPredicate.evaluate_all`` sweep evaluates every
ordered pair: O(N²) hash values and threshold comparisons, which tops
out around N = 20k.  This module replaces the sweep with a two-stage
*candidate generation + exact filter* pipeline, in the spirit of
locality-restricted overlay construction (MPO), while keeping the
result **bit-identical** to the exhaustive path:

1. **Index** (once per population): nodes are partitioned into
   availability buckets aligned to the PDF's bins, and within each
   bucket sorted by their destination hash key.  With the
   shift-structured :class:`~repro.core.hashing.Affine64PairHash`,
   ``H(x, y) <= t`` holds iff the destination key lies in one wrapped
   uint64 interval determined by the source — so a sorted-key bucket
   answers "which members pass?" with two binary searches.

2. **Enumerate + filter** (per source block × bucket): an upper bound
   ``T(x, b)`` of the true threshold over the bucket (horizontal bound
   if the bucket sits fully inside the ±ε band, vertical bound if fully
   outside, the max when straddling) is inflated by a float-safety
   margin and turned into a key interval; ``searchsorted`` yields the
   candidate positions.  Every candidate is then re-checked with the
   *same* float comparisons the exhaustive path performs (same
   per-pair threshold expressions, same ``|Δav| < ε`` classification,
   same cushion clamp), so over-approximation in the bound can only
   cost time, never change the edge set.

Why the bound is sound: bucket bounds are computed from the *actual*
member values (bucket max of exact per-destination thresholds, exact
member min/max availabilities), never from bin-edge arithmetic, so no
float-rounding at bucket boundaries can exclude a passing pair; the
integer interval adds a ``(1 + 2^-40)·T·2^64 + 4096`` margin that
dominates both the product rounding and the uint64→float64 rounding of
the final comparison.

Expected work per source is O(buckets·log m + k'), where k' is the
number of candidates (≈ the true degree k plus bound slack), against
O(N) for the sweep.

This is only possible for hashes with interval structure
(``supports_interval``) and sliver rules that declare a bucket bound
(:attr:`~repro.core.slivers._Rule.CANDIDATE_BOUND`); PRF-style hashes
(mix64, digest hashes) make every ordered pair an independent
unpredictable bit, so *no* exact sub-quadratic enumeration exists for
them and callers must fall back to the exhaustive sweep.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.slivers import has_candidate_bound
from repro.telemetry import current as current_telemetry

__all__ = ["supports_candidates", "evaluate_all_candidates", "CandidateIndex"]

_U64_SCALE = float(1 << 64)
#: relative + absolute inflation of the enumeration interval; dominates
#: every float rounding in the bound computation and the uint64→float64
#: rounding (ulp 2^11 near 2^64) of the exact filter's hash values.
_REL_SLACK = 1.0 + 2.0**-40
_ABS_SLACK = 4096.0
#: scaled thresholds at or above this enumerate the whole bucket (the
#: value is exactly representable and safely below 2^64).
_FULL_CUTOFF = _U64_SCALE - 2.0**13


def supports_candidates(predicate) -> bool:
    """Whether ``predicate`` admits exact candidate generation: an
    interval-structured hash plus bucket-boundable sliver rules."""
    return (
        getattr(predicate.hash_fn, "supports_interval", False)
        and has_candidate_bound(predicate.horizontal)
        and has_candidate_bound(predicate.vertical)
    )


def _expand_ranges(
    starts: np.ndarray, stops: np.ndarray, owners: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten per-owner index ranges ``[starts, stops)`` into a flat
    position array plus the owner of each position."""
    lengths = stops - starts
    keep = lengths > 0
    if not keep.any():
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    starts = starts[keep]
    lengths = lengths[keep]
    ends = np.cumsum(lengths)
    out = np.ones(int(ends[-1]), dtype=np.int64)
    out[0] = starts[0]
    if starts.size > 1:
        out[ends[:-1]] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
    np.cumsum(out, out=out)
    return out, np.repeat(owners[keep], lengths)


class CandidateIndex:
    """Availability-bucket / sorted-hash-key inverted index.

    Buckets are a uniform grid refined from the PDF's bins (so each
    bucket is no wider than ~ε/2 where affordable); per-bucket bound
    statistics are taken over the actual members, which is what makes
    the enumeration bound sound without any bin-edge float reasoning.
    """

    def __init__(self, predicate, digests: np.ndarray, availabilities: np.ndarray):
        if not supports_candidates(predicate):
            raise ValueError(
                f"predicate {predicate!r} does not support candidate generation "
                "(needs an interval-structured hash, e.g. affine64, and "
                "bucket-boundable sliver rules)"
            )
        self.predicate = predicate
        self.digests = np.asarray(digests, dtype=np.uint64)
        self.availabilities = np.asarray(availabilities, dtype=float)
        pdf = predicate.pdf
        bins = int(pdf.bins)
        refine = max(1, int(np.ceil((1.0 / bins) / max(predicate.epsilon / 2.0, 1e-3))))
        refine = min(refine, max(1, 1024 // bins))
        self.n_buckets = bins * refine
        avs = self.availabilities
        n = avs.shape[0]
        bucket_of = np.clip(
            (avs * self.n_buckets).astype(np.int64), 0, self.n_buckets - 1
        )
        self.keys = predicate.hash_fn.key_array(self.digests)
        order = np.lexsort((self.keys, bucket_of))
        self.rows_sorted = order.astype(np.int64)
        self.keys_sorted = self.keys[order]
        counts = np.bincount(bucket_of, minlength=self.n_buckets)
        self.offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        self.nonempty = np.flatnonzero(counts).astype(np.int64)
        starts = self.offsets[self.nonempty]
        avs_sorted = avs[order]
        if n:
            self.av_min = np.minimum.reduceat(avs_sorted, starts)
            self.av_max = np.maximum.reduceat(avs_sorted, starts)
        else:
            self.av_min = np.empty(0)
            self.av_max = np.empty(0)
        # Vertical bound inputs (see _Rule.CANDIDATE_BOUND).
        vertical = predicate.vertical
        self.v_kind = vertical.CANDIDATE_BOUND
        self.v_const = 0.0
        self.v_values = None
        self.v_bucket_max = None
        if self.v_kind == "const":
            self.v_const = float(vertical.threshold(0.0, 1.0, pdf))
        else:
            self.v_values = vertical.candidate_values(avs, pdf)
            if n:
                self.v_bucket_max = np.maximum.reduceat(self.v_values[order], starts)
            else:
                self.v_bucket_max = np.empty(0)
        horizontal = predicate.horizontal
        self.h_kind = horizontal.CANDIDATE_BOUND
        self.h_const = 0.0
        if self.h_kind == "const":
            self.h_const = float(horizontal.threshold(0.0, 0.0, pdf))
        elif self.h_kind != "src":
            raise ValueError(
                f"horizontal rule {horizontal!r} declares unsupported bound "
                f"kind {self.h_kind!r} (horizontal rules must be 'const' or 'src')"
            )


def evaluate_all_candidates(
    predicate,
    digests: np.ndarray,
    availabilities: np.ndarray,
    cushion: float = 0.0,
    block_rows: int = 2048,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact ``evaluate_all`` via candidate generation.

    Returns the same ``(src_indices, dst_indices, horizontal)`` CSR
    triple as the exhaustive sweep, bit-identical (property-tested in
    ``tests/test_candidates_parity.py`` and asserted per benchmark run).
    """
    with current_telemetry().span("overlay.candidates.index"):
        index = CandidateIndex(predicate, digests, availabilities)
    avs = index.availabilities
    digests = index.digests
    n = avs.shape[0]
    empty = np.empty(0, dtype=np.int64)
    if n == 0:
        return empty, empty.copy(), np.empty(0, dtype=bool)
    if block_rows <= 0:
        raise ValueError(f"block_rows must be positive, got {block_rows}")
    eps = predicate.epsilon
    pdf = predicate.pdf
    hash_fn = predicate.hash_fn
    horizontal = predicate.horizontal
    vertical = predicate.vertical
    src_chunks = []
    dst_chunks = []
    horizontal_chunks = []
    zero = np.uint64(0)
    for s0 in range(0, n, block_rows):
        s1 = min(s0 + block_rows, n)
        av_x = avs[s0:s1]
        with np.errstate(over="ignore"):
            shifts = hash_fn.shift_array(digests[s0:s1])
        if index.h_kind == "src":
            t_h = horizontal.candidate_values(av_x, pdf)
        else:
            t_h = np.full(av_x.shape[0], index.h_const)
        pos_parts = []
        src_parts = []
        with current_telemetry().span("overlay.candidates.enumerate"):
            for j, b in enumerate(index.nonempty):
                b_start = index.offsets[b]
                b_stop = index.offsets[b + 1]
                m = int(b_stop - b_start)
                lo_av = index.av_min[j]
                hi_av = index.av_max[j]
                # Band classification of the whole bucket per source,
                # from actual member min/max (float subtraction is
                # monotone, so these are exactly the extreme per-pair
                # distances).
                in_all = (av_x - lo_av < eps) & (hi_av - av_x < eps)
                out_all = (lo_av - av_x >= eps) | (av_x - hi_av >= eps)
                if index.v_kind == "const":
                    t_v = np.full(av_x.shape[0], index.v_const)
                elif index.v_kind == "dst":
                    t_v = np.full(av_x.shape[0], index.v_bucket_max[j])
                else:  # "dst-distance"
                    dist_min = np.maximum(np.maximum(lo_av - av_x, av_x - hi_av), 0.0)
                    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
                        t_v = np.where(
                            dist_min > 0.0, index.v_bucket_max[j] / dist_min, np.inf
                        )
                    t_v = np.minimum(t_v, 1.0)
                bound = np.where(in_all, t_h, np.where(out_all, t_v, np.maximum(t_h, t_v)))
                if cushion:
                    bound = np.minimum(1.0, bound + cushion)
                scaled = bound * _U64_SCALE * _REL_SLACK + _ABS_SLACK
                full = scaled >= _FULL_CUTOFF
                # Full buckets bypass the interval search entirely; clip
                # so the cast stays in uint64 range for them too.
                t_int = np.minimum(scaled, _FULL_CUTOFF).astype(np.uint64)
                bucket_keys = index.keys_sorted[b_start:b_stop]
                with np.errstate(over="ignore"):
                    lo_key = (zero - shifts).astype(np.uint64)
                    hi_key = (t_int - shifts).astype(np.uint64)
                a = np.searchsorted(bucket_keys, lo_key, side="left")
                c = np.searchsorted(bucket_keys, hi_key, side="right")
                wrapped = lo_key > hi_key
                # Range 1: [0, c) when wrapped or full-bucket, else [a, c).
                start1 = np.where(wrapped | full, 0, a)
                stop1 = np.where(full, m, c)
                # Range 2: [a, m) when wrapped (disjoint from range 1).
                start2 = np.where(wrapped & ~full, a, 0)
                stop2 = np.where(wrapped & ~full, m, 0)
                owners = np.arange(av_x.shape[0], dtype=np.int64)
                p1, o1 = _expand_ranges(start1.astype(np.int64), stop1.astype(np.int64), owners)
                p2, o2 = _expand_ranges(start2.astype(np.int64), stop2.astype(np.int64), owners)
                if p1.size:
                    pos_parts.append(p1 + int(b_start))
                    src_parts.append(o1)
                if p2.size:
                    pos_parts.append(p2 + int(b_start))
                    src_parts.append(o2)
        telemetry = current_telemetry()
        if telemetry.enabled:
            telemetry.poke_progress(context="overlay.candidates")
        if not pos_parts:
            continue
        with current_telemetry().span("overlay.candidates.filter"):
            pos = np.concatenate(pos_parts)
            src_local = np.concatenate(src_parts)
            dst_rows = index.rows_sorted[pos]
            not_self = dst_rows != (src_local + s0)
            dst_rows = dst_rows[not_self]
            src_local = src_local[not_self]
            if dst_rows.size == 0:
                continue
            # Exact filter: identical float comparisons to the exhaustive
            # block sweep (same per-pair thresholds, same |Δav| < ε
            # classification, same cushion clamp).
            with np.errstate(over="ignore"):
                wrapped_sum = (shifts[src_local] + index.keys[dst_rows]).astype(np.uint64)
            hashes = wrapped_sum.astype(np.float64) / _U64_SCALE
            deltas = np.abs(av_x[src_local] - avs[dst_rows])
            h_mask = deltas < eps
            if index.h_kind == "src":
                h_t = t_h[src_local]
            else:
                h_t = index.h_const
            if index.v_kind == "const":
                v_t = index.v_const
            elif index.v_kind == "dst":
                v_t = index.v_values[dst_rows]
            else:
                v_t = vertical.pair_threshold_values(av_x[src_local], avs[dst_rows], pdf)
            thresholds = np.where(h_mask, h_t, v_t)
            if cushion:
                thresholds = np.minimum(1.0, thresholds + cushion)
            member = hashes <= thresholds
            src_local = src_local[member]
            dst_rows = dst_rows[member]
            h_mask = h_mask[member]
            order = np.lexsort((dst_rows, src_local))
            src_chunks.append((src_local[order] + s0).astype(np.int64))
            dst_chunks.append(dst_rows[order].astype(np.int64))
            horizontal_chunks.append(h_mask[order])
    if not src_chunks:
        return empty, empty.copy(), np.empty(0, dtype=bool)
    return (
        np.concatenate(src_chunks),
        np.concatenate(dst_chunks),
        np.concatenate(horizontal_chunks),
    )
