"""Closed-form predictions from Section 2.2 (Theorems 1-3).

These let tests and benchmarks check that the *implementation* matches
the *analysis*: expected sliver sizes, coverage uniformity, and the
O(log N*) bound of Theorem 3.  All integrals are evaluated numerically
over the discretized PDF, at sub-bin resolution.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.availability import AvailabilityPdf
from repro.core.predicates import AvmemPredicate, SliverKind
from repro.util.mathx import log_at_least_one

__all__ = [
    "expected_vertical_size",
    "expected_horizontal_size",
    "expected_degree",
    "theorem1_band_counts",
    "theorem3_bound",
]

_GRID = 2048


def _integration_grid() -> Tuple[np.ndarray, float]:
    """Midpoint grid over [0, 1]."""
    da = 1.0 / _GRID
    grid = (np.arange(_GRID) + 0.5) * da
    return grid, da


def expected_vertical_size(predicate: AvmemPredicate, av_x: float) -> float:
    """E[#VS neighbors] = ∫_{|a-av_x|≥ε} f_vs(av_x, a)·N*·p(a) da."""
    grid, da = _integration_grid()
    pdf = predicate.pdf
    mask = np.abs(grid - av_x) >= predicate.epsilon
    if not mask.any():
        return 0.0
    thresholds = predicate.vertical.threshold_many(av_x, grid[mask], pdf)
    density = np.asarray(pdf.density(grid[mask]))
    return float(np.sum(thresholds * pdf.n_star * density) * da)


def expected_horizontal_size(predicate: AvmemPredicate, av_x: float) -> float:
    """E[#HS neighbors] = ∫_{|a-av_x|<ε} f_hs(av_x, a)·N*·p(a) da."""
    grid, da = _integration_grid()
    pdf = predicate.pdf
    mask = np.abs(grid - av_x) < predicate.epsilon
    if not mask.any():
        return 0.0
    thresholds = predicate.horizontal.threshold_many(av_x, grid[mask], pdf)
    density = np.asarray(pdf.density(grid[mask]))
    return float(np.sum(thresholds * pdf.n_star * density) * da)


def expected_degree(predicate: AvmemPredicate, av_x: float) -> float:
    """Expected total (HS + VS) out-degree of a node at ``av_x``."""
    return expected_vertical_size(predicate, av_x) + expected_horizontal_size(
        predicate, av_x
    )


def theorem1_band_counts(
    predicate: AvmemPredicate, av_x: float, band_width: float = 0.1
) -> Dict[Tuple[float, float], float]:
    """Expected VS neighbors per availability band — Theorem 1 says these
    are equal (for bands outside ±ε of ``av_x``) under rule I.B.

    Returns ``{(lo, hi): expected_count}`` for bands fully outside the
    horizontal region.
    """
    grid, da = _integration_grid()
    pdf = predicate.pdf
    out: Dict[Tuple[float, float], float] = {}
    edges = np.arange(0.0, 1.0 + 1e-9, band_width)
    for lo, hi in zip(edges[:-1], edges[1:]):
        # Skip bands that intersect the horizontal region: those draws use
        # the horizontal rule instead.
        if not (hi <= av_x - predicate.epsilon or lo >= av_x + predicate.epsilon):
            continue
        mask = (grid >= lo) & (grid < hi)
        thresholds = predicate.vertical.threshold_many(av_x, grid[mask], pdf)
        density = np.asarray(pdf.density(grid[mask]))
        out[(float(lo), float(hi))] = float(
            np.sum(thresholds * pdf.n_star * density) * da
        )
    return out


def theorem3_bound(pdf: AvailabilityPdf, av_x: float, epsilon: float, c1: float) -> float:
    """Theorem 3(i): E[degree] ≤ (N*_av(x) − 1) + c1·log(N*)."""
    return pdf.n_star_av(av_x, epsilon) - 1.0 + c1 * log_at_least_one(pdf.n_star)
