"""Struct-of-arrays population core — the row space under everything.

At 20k nodes the reproduction could afford one Python object per node;
at 1M it cannot: a million :class:`~repro.core.ids.NodeId` instances
cost hundreds of megabytes before a single overlay edge exists.
:class:`Population` flips the layout: the population is a pair of flat
arrays (``uint64`` endpoint digests and ``float64`` availabilities,
plus an optional online mask), and a *node* is just a row index into
them.  Everything downstream — the overlay CSR
(:mod:`repro.overlays.graphs`), the membership tables
(:mod:`repro.core.membership`), the churn timeline
(:mod:`repro.churn.timeline`) — already speaks row indices; this module
makes the row space the source of truth and demotes :class:`NodeId`
objects to lazily-materialized views.

Synthetic populations (:meth:`Population.synthetic`) compute the SHA-1
endpoint digests directly from the deterministic ``10.a.b.c:port``
address scheme of :meth:`NodeId.from_index` without ever constructing
the id objects, so a 1M-row population costs ~16 MB of arrays instead
of ~300 MB of objects.  ``id_of(row)`` materializes a single
:class:`NodeId` on demand (and caches it), so protocol-level code that
still needs identity objects — network probes, membership entries shown
to users — pays only for the rows it actually touches.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.ids import NodeId, digest_array

__all__ = ["Population"]


class Population:
    """A population as parallel flat arrays keyed by row index.

    ``digests[i]`` is the 64-bit endpoint digest of row ``i`` (the
    quantity every pairwise hash mixes), ``availabilities[i]`` its
    availability estimate, and ``online[i]`` an optional presence flag.
    ``ids`` / ``id_of`` materialize :class:`NodeId` objects lazily.
    """

    __slots__ = (
        "digests",
        "availabilities",
        "online",
        "_ids",
        "_synthetic_port",
        "_id_tuple",
        "_digest_order",
        "_digests_sorted",
    )

    def __init__(
        self,
        digests: np.ndarray,
        availabilities: np.ndarray,
        *,
        ids: Optional[Sequence[Optional[NodeId]]] = None,
        online: Optional[np.ndarray] = None,
        synthetic_port: Optional[int] = None,
    ):
        digests = np.ascontiguousarray(digests, dtype=np.uint64)
        availabilities = np.ascontiguousarray(availabilities, dtype=np.float64)
        if digests.ndim != 1 or availabilities.ndim != 1:
            raise ValueError("digests and availabilities must be 1-D arrays")
        if digests.shape[0] != availabilities.shape[0]:
            raise ValueError(
                f"digests ({digests.shape[0]}) and availabilities "
                f"({availabilities.shape[0]}) must have equal length"
            )
        if ids is None and synthetic_port is None:
            raise ValueError(
                "Population needs an id source: pass ids= or synthetic_port="
            )
        if ids is not None and len(ids) != digests.shape[0]:
            raise ValueError(
                f"ids ({len(ids)}) and digests ({digests.shape[0]}) must have equal length"
            )
        if online is not None:
            online = np.ascontiguousarray(online, dtype=bool)
            if online.shape != digests.shape:
                raise ValueError("online mask must match the population length")
        self.digests = digests
        self.availabilities = availabilities
        self.online = online
        if ids is not None:
            self._ids: Optional[np.ndarray] = np.empty(len(ids), dtype=object)
            self._ids[:] = list(ids)
        else:
            self._ids = None
        self._synthetic_port = synthetic_port
        self._id_tuple: Optional[tuple] = None
        self._digest_order: Optional[np.ndarray] = None
        self._digests_sorted: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_ids(
        cls,
        ids: Sequence[NodeId],
        availabilities: Sequence[float],
        *,
        online: Optional[np.ndarray] = None,
    ) -> "Population":
        """Wrap already-materialized :class:`NodeId` objects (the seed
        path).  ``id_of`` returns the exact same objects, so identity is
        preserved for callers that key dictionaries by node."""
        return cls(
            digest_array(ids),
            np.asarray(availabilities, dtype=np.float64),
            ids=list(ids),
            online=online,
        )

    @classmethod
    def from_descriptors(cls, descriptors: Iterable) -> "Population":
        """From ``(node, availability)`` descriptor pairs (duck-typed:
        anything with ``.node`` and ``.availability``, or 2-tuples)."""
        ids: List[NodeId] = []
        avs: List[float] = []
        for item in descriptors:
            node = getattr(item, "node", None)
            if node is None:
                node, availability = item
            else:
                availability = item.availability
            ids.append(node)
            avs.append(float(availability))
        return cls.from_ids(ids, avs)

    @classmethod
    def synthetic(
        cls,
        availabilities: Sequence[float],
        *,
        port: int = 9000,
        online: Optional[np.ndarray] = None,
    ) -> "Population":
        """Deterministic synthetic population over the ``10.0.0.0/8``
        address scheme of :meth:`NodeId.from_index` — digests are
        computed from the endpoint strings without constructing any
        :class:`NodeId` objects, which is what makes 1M-row populations
        affordable."""
        availabilities = np.asarray(availabilities, dtype=np.float64)
        n = availabilities.shape[0]
        if n >= (1 << 24):
            raise ValueError(f"synthetic populations cap at 2^24 rows, got {n}")
        digests = np.empty(n, dtype=np.uint64)
        sha1 = hashlib.sha1
        from_bytes = int.from_bytes
        for i in range(n):
            endpoint = f"10.{(i >> 16) & 0xFF}.{(i >> 8) & 0xFF}.{i & 0xFF}:{port}"
            digests[i] = from_bytes(sha1(endpoint.encode("utf-8")).digest()[:8], "big")
        return cls(digests, availabilities, synthetic_port=port, online=online)

    def with_availabilities(self, availabilities: Sequence[float]) -> "Population":
        """A sibling population sharing digests/ids but with different
        availability estimates (e.g. bootstrap-time oracle snapshots vs
        lifetime values)."""
        availabilities = np.asarray(availabilities, dtype=np.float64)
        if availabilities.shape != self.digests.shape:
            raise ValueError("availabilities must match the population length")
        sibling = Population.__new__(Population)
        sibling.digests = self.digests
        sibling.availabilities = availabilities
        sibling.online = self.online
        # Allocate the (lazy) id cache now so both populations share one
        # array — ids materialized through either view are seen by both.
        if self._ids is None:
            self._ids = np.empty(self.size, dtype=object)
        sibling._ids = self._ids
        sibling._synthetic_port = self._synthetic_port
        sibling._id_tuple = None
        sibling._digest_order = self._digest_order
        sibling._digests_sorted = self._digests_sorted
        return sibling

    # ------------------------------------------------------------------
    # Row <-> id views
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return int(self.digests.shape[0])

    def __len__(self) -> int:
        return self.size

    def id_of(self, row: int) -> NodeId:
        """Materialize (and cache) the :class:`NodeId` of one row."""
        row = int(row)
        if row < 0 or row >= self.size:
            raise IndexError(f"row {row} out of range [0, {self.size})")
        if self._ids is None:
            self._ids = np.empty(self.size, dtype=object)
        node = self._ids[row]
        if node is None:
            if self._synthetic_port is None:
                raise KeyError(f"row {row} has no id and the population is not synthetic")
            node = NodeId.from_index(row, port=self._synthetic_port)
            self._ids[row] = node
        return node

    def ids_of(self, rows: Sequence[int]) -> List[NodeId]:
        """Materialize the ids of a batch of rows."""
        return [self.id_of(row) for row in np.asarray(rows, dtype=np.int64)]

    @property
    def id_tuple(self) -> tuple:
        """All ids as a tuple (materializes the whole population — avoid
        on large synthetic runs)."""
        if self._id_tuple is None:
            self._id_tuple = tuple(self.id_of(i) for i in range(self.size))
        return self._id_tuple

    @property
    def id_array(self) -> np.ndarray:
        """All ids as an object array (materializes everything)."""
        self.id_tuple
        return self._ids.copy()

    def row_of(self, node: NodeId) -> int:
        """Row index of a node, resolved through its endpoint digest."""
        row = self.find_row(node)
        if row < 0:
            raise KeyError(f"{node} is not in this population")
        return row

    def find_row(self, node: NodeId) -> int:
        """Like :meth:`row_of` but returns -1 for unknown nodes."""
        if self._digest_order is None:
            self._digest_order = np.argsort(self.digests, kind="stable")
            self._digests_sorted = self.digests[self._digest_order]
        digest = np.uint64(node.digest64)
        pos = int(np.searchsorted(self._digests_sorted, digest))
        if pos >= self.size or self._digests_sorted[pos] != digest:
            return -1
        return int(self._digest_order[pos])

    def __contains__(self, node: NodeId) -> bool:
        return self.find_row(node) >= 0

    def __repr__(self) -> str:
        kind = "synthetic" if self._synthetic_port is not None else "materialized"
        return f"Population(size={self.size}, {kind})"
