"""Per-node membership state: the horizontal and vertical slivers.

Each node maintains two small lists (Fig 1): ``HS(x)`` — nodes with
availability close to its own — and ``VS(x)`` — a sample across the rest
of the availability space.  Entries carry the availability value that
was *cached* when the entry was last checked, plus the time of that
check: the ops layer forwards using these cached values ("this eschews
querying the availability service for each forwarded message",
Section 3.2), which is exactly what makes Figs 5-6's staleness effects
observable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.ids import NodeId
from repro.core.predicates import NodeDescriptor, SliverKind

__all__ = ["MemberEntry", "MembershipLists", "SliverSelector"]


@dataclass(frozen=True)
class MemberEntry:
    """One neighbor: identity, cached availability, sliver, bookkeeping."""

    node: NodeId
    availability: float  # cached value used by forwarding decisions
    kind: SliverKind
    added_at: float
    checked_at: float

    @property
    def descriptor(self) -> NodeDescriptor:
        return NodeDescriptor(self.node, self.availability)

    def refreshed(self, availability: float, kind: SliverKind, now: float) -> "MemberEntry":
        return replace(self, availability=availability, kind=kind, checked_at=now)


class SliverSelector:
    """Which neighbor sets an operation may use (Section 3.2's
    HS-only / VS-only / HS+VS flavors)."""

    HS_ONLY = "hs"
    VS_ONLY = "vs"
    BOTH = "hs+vs"

    _VALID = (HS_ONLY, VS_ONLY, BOTH)

    @classmethod
    def validate(cls, selector: str) -> str:
        if selector not in cls._VALID:
            raise ValueError(
                f"selector must be one of {cls._VALID}, got {selector!r}"
            )
        return selector


class MembershipLists:
    """The HS/VS neighbor tables of one node."""

    def __init__(self, owner: NodeId):
        self.owner = owner
        self._horizontal: Dict[NodeId, MemberEntry] = {}
        self._vertical: Dict[NodeId, MemberEntry] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def upsert(
        self, node: NodeId, availability: float, kind: SliverKind, now: float
    ) -> MemberEntry:
        """Insert or update a neighbor, moving it between slivers if its
        classification changed."""
        if node == self.owner:
            raise ValueError("a node cannot be its own neighbor")
        existing = self._horizontal.pop(node, None) or self._vertical.pop(node, None)
        if existing is None:
            entry = MemberEntry(
                node=node, availability=availability, kind=kind, added_at=now, checked_at=now
            )
        else:
            entry = existing.refreshed(availability, kind, now)
        self._table(kind)[node] = entry
        return entry

    def remove(self, node: NodeId) -> bool:
        """Drop a neighbor from whichever sliver holds it."""
        return (
            self._horizontal.pop(node, None) is not None
            or self._vertical.pop(node, None) is not None
        )

    def clear(self) -> None:
        self._horizontal.clear()
        self._vertical.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _table(self, kind: SliverKind) -> Dict[NodeId, MemberEntry]:
        return self._horizontal if kind is SliverKind.HORIZONTAL else self._vertical

    def __contains__(self, node: NodeId) -> bool:
        return node in self._horizontal or node in self._vertical

    def get(self, node: NodeId) -> Optional[MemberEntry]:
        return self._horizontal.get(node) or self._vertical.get(node)

    @property
    def horizontal(self) -> Tuple[MemberEntry, ...]:
        return tuple(self._horizontal.values())

    @property
    def vertical(self) -> Tuple[MemberEntry, ...]:
        return tuple(self._vertical.values())

    @property
    def horizontal_count(self) -> int:
        return len(self._horizontal)

    @property
    def vertical_count(self) -> int:
        return len(self._vertical)

    @property
    def total_count(self) -> int:
        return len(self._horizontal) + len(self._vertical)

    def entries(self, selector: str = SliverSelector.BOTH) -> List[MemberEntry]:
        """Neighbors visible under an HS/VS/both selector, deterministic
        order (HS first, then VS, each in insertion order)."""
        SliverSelector.validate(selector)
        out: List[MemberEntry] = []
        if selector in (SliverSelector.HS_ONLY, SliverSelector.BOTH):
            out.extend(self._horizontal.values())
        if selector in (SliverSelector.VS_ONLY, SliverSelector.BOTH):
            out.extend(self._vertical.values())
        return out

    def neighbor_ids(self, selector: str = SliverSelector.BOTH) -> List[NodeId]:
        return [entry.node for entry in self.entries(selector)]

    def all_entries(self) -> Iterable[MemberEntry]:
        yield from self._horizontal.values()
        yield from self._vertical.values()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MembershipLists(owner={self.owner}, hs={self.horizontal_count}, "
            f"vs={self.vertical_count})"
        )
