"""Per-node membership state: the horizontal and vertical slivers.

Each node maintains two small lists (Fig 1): ``HS(x)`` — nodes with
availability close to its own — and ``VS(x)`` — a sample across the rest
of the availability space.  Entries carry the availability value that
was *cached* when the entry was last checked, plus the time of that
check: the ops layer forwards using these cached values ("this eschews
querying the availability service for each forwarded message",
Section 3.2), which is exactly what makes Figs 5-6's staleness effects
observable.

Storage layout (docs/architecture.md §"Membership tables")
----------------------------------------------------------
:class:`MembershipTable` keeps the neighbor set in **columnar numpy
arrays** — one slot per neighbor, with parallel columns for identity,
cached availability, sliver kind, and the added/checked timestamps —
instead of the seed's dict-of-dataclasses.  Scalar callers see the exact
same API as before (``upsert`` / ``remove`` / ``entries`` / ...,
returning :class:`MemberEntry` values materialized on demand), while the
bootstrap and refresh hot paths use the bulk operations:

* :meth:`MembershipTable.upsert_many` — install a whole batch of
  already-evaluated predicate matches in a handful of array writes; fed
  directly from :class:`~repro.overlays.graphs.OverlayGraph` CSR rows
  during ``bootstrap="direct"``.
* :meth:`MembershipTable.neighbor_arrays` +
  :meth:`MembershipTable.refresh_round` — one masked array pass that
  re-caches availabilities/timestamps for the whole neighbor set and
  evicts entries whose predicate no longer holds.

Bulk operations key neighbors by their precomputed 64-bit endpoint
digests (``NodeId.digest64``); SHA-1-prefix collisions between distinct
endpoints are assumed absent (the synthetic-host space is ≤ 2^24, so the
birthday bound is ~2^-17 across the whole population).

:class:`MembershipLists` — the historical name used throughout the node,
ops, and experiment layers — is preserved as a thin view over
:class:`MembershipTable`; existing callers keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.core.ids import NodeId, digest_array
from repro.core.predicates import NodeDescriptor, SliverKind
from repro.telemetry import current as current_telemetry

__all__ = [
    "MemberEntry",
    "MembershipTable",
    "MembershipLists",
    "NeighborView",
    "SliverSelector",
]


@dataclass(frozen=True)
class MemberEntry:
    """One neighbor: identity, cached availability, sliver, bookkeeping.

    ``availability`` is the value cached at the last check — forwarding
    decisions read it instead of querying the monitoring service, which
    is what makes it (deliberately) stale between refreshes.
    ``added_at`` is when the neighbor first entered the lists;
    ``checked_at`` is when its availability/sliver was last re-validated.
    """

    node: NodeId
    availability: float  # cached value used by forwarding decisions
    kind: SliverKind
    added_at: float
    checked_at: float

    @property
    def descriptor(self) -> NodeDescriptor:
        """The ``(id, cached availability)`` pair the predicate operates on."""
        return NodeDescriptor(self.node, self.availability)

    def refreshed(self, availability: float, kind: SliverKind, now: float) -> "MemberEntry":
        """A copy with the availability/sliver re-cached at time ``now``."""
        return replace(self, availability=availability, kind=kind, checked_at=now)


class SliverSelector:
    """Which neighbor sets an operation may use (Section 3.2's
    HS-only / VS-only / HS+VS flavors)."""

    HS_ONLY = "hs"
    VS_ONLY = "vs"
    BOTH = "hs+vs"

    _VALID = (HS_ONLY, VS_ONLY, BOTH)

    @classmethod
    def validate(cls, selector: str) -> str:
        if selector not in cls._VALID:
            raise ValueError(
                f"selector must be one of {cls._VALID}, got {selector!r}"
            )
        return selector


class NeighborView(NamedTuple):
    """A positional snapshot of a table's live neighbors.

    Parallel arrays over the neighbors in listing order (HS first, then
    VS, each in recency order — the same order :meth:`MembershipTable.entries`
    yields).  ``slots`` are opaque handles for
    :meth:`MembershipTable.refresh_round`; they stay valid only until the
    table is next mutated.
    """

    slots: np.ndarray  #: int64 slot handles (pass back to refresh_round)
    nodes: Optional[np.ndarray]  #: object array of NodeId (None if not requested)
    availabilities: np.ndarray  #: float array of cached availabilities
    horizontal: np.ndarray  #: bool array, True = HORIZONTAL sliver
    digests: np.ndarray  #: uint64 endpoint digests (for vectorized hashing)
    rows: Optional[np.ndarray] = None  #: int64 population rows (-1 unknown; None for object-backed tables)


class MembershipTable:
    """Array-backed HS/VS neighbor tables of one node.

    Columnar storage: each neighbor occupies one slot across parallel
    numpy columns (identity, digest, availability, sliver flag,
    timestamps, recency sequence, liveness).  Scalar mutators behave
    exactly like the historical dict-of-dataclasses implementation —
    including the detail that *every* upsert moves the entry to the tail
    of its (possibly new) sliver's listing order — and the bulk
    operations (:meth:`upsert_many`, :meth:`refresh_round`) replicate a
    scalar loop entry-for-entry while doing only O(1) numpy calls.

    The NodeId→slot index and the :class:`MemberEntry` materializations
    are caches built lazily on the first scalar access after a bulk
    mutation, so pure-bulk workloads (direct bootstrap at large N) never
    pay per-entry Python.
    """

    _INITIAL_CAPACITY = 8

    def __init__(self, owner: NodeId, population=None):
        self.owner = owner
        #: optional :class:`~repro.core.population.Population` backing —
        #: enables row-keyed bulk installs (:meth:`upsert_rows`) with
        #: identities materialized lazily only when scalar accessors or
        #: the nodes column of :meth:`neighbor_arrays` need them.
        self.population = population
        capacity = self._INITIAL_CAPACITY
        self._capacity = capacity
        self._size = 0  # high-water slot mark (live + dead slots)
        self._count = 0  # live entries
        self._seq_counter = 0
        self._ids = np.empty(capacity, dtype=object)
        self._digests = np.zeros(capacity, dtype=np.uint64)
        self._avail = np.zeros(capacity, dtype=float)
        self._horiz = np.zeros(capacity, dtype=bool)
        self._added = np.zeros(capacity, dtype=float)
        self._checked = np.zeros(capacity, dtype=float)
        self._seq = np.zeros(capacity, dtype=np.int64)
        self._alive = np.zeros(capacity, dtype=bool)
        self._rows = np.full(capacity, -1, dtype=np.int64)
        # Lazy caches: None marks "rebuild on next scalar access".
        self._slot_of: Optional[Dict[NodeId, int]] = {}
        self._materialized: Dict[NodeId, MemberEntry] = {}

    # ------------------------------------------------------------------
    # Internal plumbing
    # ------------------------------------------------------------------
    def _materialize_missing_ids(self, slots: np.ndarray) -> None:
        """Fill in identity objects for row-installed slots that have
        never been touched by a scalar accessor."""
        for slot in slots:
            if self._ids[slot] is None:
                row = int(self._rows[slot])
                if row < 0 or self.population is None:
                    raise RuntimeError(
                        f"slot {int(slot)} has neither an id nor a population row"
                    )
                self._ids[slot] = self.population.id_of(row)

    def _ensure_index(self) -> Dict[NodeId, int]:
        if self._slot_of is None:
            live = np.flatnonzero(self._alive[: self._size])
            self._materialize_missing_ids(live)
            self._slot_of = {self._ids[slot]: int(slot) for slot in live}
        return self._slot_of

    def _grow_to(self, needed: int) -> None:
        if needed <= self._capacity:
            return
        capacity = self._capacity
        while capacity < needed:
            capacity *= 2
        for name in ("_digests", "_avail", "_horiz", "_added", "_checked", "_seq", "_alive"):
            old = getattr(self, name)
            new = np.zeros(capacity, dtype=old.dtype)
            new[: self._size] = old[: self._size]
            setattr(self, name, new)
        rows = np.full(capacity, -1, dtype=np.int64)
        rows[: self._size] = self._rows[: self._size]
        self._rows = rows
        ids = np.empty(capacity, dtype=object)
        ids[: self._size] = self._ids[: self._size]
        self._ids = ids
        self._capacity = capacity

    def _next_seq_block(self, count: int) -> np.ndarray:
        start = self._seq_counter
        self._seq_counter += count
        return np.arange(start, start + count, dtype=np.int64)

    def _maybe_compact(self) -> None:
        """Reclaim dead slots once they outnumber ``max(8, live count)``."""
        dead = self._size - self._count
        if dead <= max(8, self._count):
            return
        live = np.flatnonzero(self._alive[: self._size])
        for name in ("_ids", "_digests", "_avail", "_horiz", "_added", "_checked", "_seq", "_rows"):
            column = getattr(self, name)
            column[: live.size] = column[live]
        self._alive[: live.size] = True
        self._alive[live.size : self._size] = False
        self._ids[live.size : self._size] = None
        self._size = live.size
        self._slot_of = None

    def _entry_at(self, slot: int) -> MemberEntry:
        node = self._ids[slot]
        if node is None:
            self._materialize_missing_ids(np.array([slot]))
            node = self._ids[slot]
        entry = self._materialized.get(node)
        if entry is None:
            entry = MemberEntry(
                node=node,
                availability=float(self._avail[slot]),
                kind=SliverKind.HORIZONTAL if self._horiz[slot] else SliverKind.VERTICAL,
                added_at=float(self._added[slot]),
                checked_at=float(self._checked[slot]),
            )
            self._materialized[node] = entry
        return entry

    def _sliver_slots(self, horizontal: bool) -> np.ndarray:
        """Live slots of one sliver, in recency (listing) order."""
        bound = self._size
        mask = self._alive[:bound] & (self._horiz[:bound] == horizontal)
        slots = np.flatnonzero(mask)
        return slots[np.argsort(self._seq[slots], kind="stable")]

    @staticmethod
    def _as_object_array(nodes: Sequence[NodeId]) -> np.ndarray:
        if isinstance(nodes, np.ndarray) and nodes.dtype == object:
            return nodes
        out = np.empty(len(nodes), dtype=object)
        out[:] = list(nodes)
        return out

    # ------------------------------------------------------------------
    # Scalar mutation (historical MembershipLists API)
    # ------------------------------------------------------------------
    def upsert(
        self, node: NodeId, availability: float, kind: SliverKind, now: float
    ) -> MemberEntry:
        """Insert or update a neighbor, moving it between slivers if its
        classification changed (``added_at`` is preserved on update)."""
        if node == self.owner:
            raise ValueError("a node cannot be its own neighbor")
        index = self._ensure_index()
        slot = index.get(node)
        if slot is None:
            self._grow_to(self._size + 1)
            slot = self._size
            self._size += 1
            self._count += 1
            self._ids[slot] = node
            self._digests[slot] = node.digest64
            self._added[slot] = now
            self._alive[slot] = True
            self._rows[slot] = (
                self.population.find_row(node) if self.population is not None else -1
            )
            index[node] = slot
        self._avail[slot] = availability
        self._horiz[slot] = kind is SliverKind.HORIZONTAL
        self._checked[slot] = now
        self._seq[slot] = self._seq_counter
        self._seq_counter += 1
        entry = MemberEntry(
            node=node,
            availability=float(availability),
            kind=kind,
            added_at=float(self._added[slot]),
            checked_at=float(now),
        )
        self._materialized[node] = entry
        return entry

    def remove(self, node: NodeId) -> bool:
        """Drop a neighbor from whichever sliver holds it."""
        index = self._ensure_index()
        slot = index.pop(node, None)
        if slot is None:
            return False
        self._alive[slot] = False
        self._ids[slot] = None
        self._count -= 1
        self._materialized.pop(node, None)
        self._maybe_compact()
        return True

    def clear(self) -> None:
        """Drop every neighbor."""
        self._alive[: self._size] = False
        self._ids[: self._size] = None
        self._rows[: self._size] = -1
        self._size = 0
        self._count = 0
        self._slot_of = {}
        self._materialized = {}

    # ------------------------------------------------------------------
    # Bulk mutation (array hot paths)
    # ------------------------------------------------------------------
    def upsert_many(
        self,
        nodes: Sequence[NodeId],
        availabilities: np.ndarray,
        horizontal_flags: np.ndarray,
        now: float,
        digests: Optional[np.ndarray] = None,
    ) -> int:
        """Install a batch of neighbors in one columnar pass.

        Equivalent to calling :meth:`upsert` for each position in batch
        order (``added_at`` preserved for existing entries, every touched
        entry moved to the tail of its sliver), but with O(1) numpy calls
        instead of per-entry Python — the direct-bootstrap sink fed from
        :class:`~repro.overlays.graphs.OverlayGraph` CSR rows.

        Parameters
        ----------
        nodes, availabilities, horizontal_flags:
            Parallel per-neighbor data; ``horizontal_flags`` gives the
            sliver classification (True = HORIZONTAL).  Nodes must be
            unique within one batch.
        now:
            Timestamp recorded as ``checked_at`` (and ``added_at`` for
            new entries).
        digests:
            Optional precomputed ``uint64`` endpoint digests parallel to
            ``nodes`` (e.g. a fancy-indexed slice of a population-wide
            digest array); computed from the nodes when omitted.

        Returns the number of entries written.
        """
        nodes = self._as_object_array(nodes)
        batch = nodes.size
        if batch == 0:
            return 0
        availabilities = np.asarray(availabilities, dtype=float)
        horizontal_flags = np.asarray(horizontal_flags, dtype=bool)
        if digests is None:
            digests = digest_array(nodes)
        else:
            digests = np.asarray(digests, dtype=np.uint64)
        if not (availabilities.size == horizontal_flags.size == digests.size == batch):
            raise ValueError(
                f"parallel batch arrays must share length {batch}, got "
                f"{availabilities.size}/{horizontal_flags.size}/{digests.size}"
            )
        if np.unique(digests).size != batch:
            raise ValueError("nodes must be unique within one upsert_many batch")
        if np.any(digests == np.uint64(self.owner.digest64)):
            raise ValueError("a node cannot be its own neighbor")
        slots = self._match_slots(digests)
        new_mask = slots < 0
        fresh = int(np.count_nonzero(new_mask))
        if fresh:
            self._grow_to(self._size + fresh)
            new_slots = np.arange(self._size, self._size + fresh, dtype=np.int64)
            self._size += fresh
            self._count += fresh
            self._ids[new_slots] = nodes[new_mask]
            self._digests[new_slots] = digests[new_mask]
            self._added[new_slots] = now
            self._alive[new_slots] = True
            self._rows[new_slots] = -1
            slots[new_mask] = new_slots
        self._avail[slots] = availabilities
        self._horiz[slots] = horizontal_flags
        self._checked[slots] = now
        self._seq[slots] = self._next_seq_block(batch)
        self._materialized = {}
        self._slot_of = None
        return batch

    def upsert_rows(
        self,
        rows: np.ndarray,
        availabilities: np.ndarray,
        horizontal_flags: np.ndarray,
        now: float,
    ) -> int:
        """Row-keyed :meth:`upsert_many`: install neighbors by population
        row index without touching any :class:`NodeId` objects.

        Requires a population-backed table.  Digests come straight from
        the population's digest column; identities stay unmaterialized
        until a scalar accessor (or the ``nodes`` column of
        :meth:`neighbor_arrays`) asks for them — which is what keeps
        whole-population bootstrap object-free at large N.  Semantics are
        otherwise identical to :meth:`upsert_many` in batch order.
        """
        if self.population is None:
            raise ValueError("upsert_rows requires a population-backed table")
        rows = np.asarray(rows, dtype=np.int64)
        batch = rows.size
        if batch == 0:
            return 0
        availabilities = np.asarray(availabilities, dtype=float)
        horizontal_flags = np.asarray(horizontal_flags, dtype=bool)
        if not (availabilities.size == horizontal_flags.size == batch):
            raise ValueError(
                f"parallel batch arrays must share length {batch}, got "
                f"{availabilities.size}/{horizontal_flags.size}"
            )
        if np.unique(rows).size != batch:
            raise ValueError("rows must be unique within one upsert_rows batch")
        digests = self.population.digests[rows]
        if np.any(digests == np.uint64(self.owner.digest64)):
            raise ValueError("a node cannot be its own neighbor")
        slots = self._match_slots(digests)
        new_mask = slots < 0
        fresh = int(np.count_nonzero(new_mask))
        if fresh:
            self._grow_to(self._size + fresh)
            new_slots = np.arange(self._size, self._size + fresh, dtype=np.int64)
            self._size += fresh
            self._count += fresh
            self._ids[new_slots] = None  # lazily materialized from rows
            self._digests[new_slots] = digests[new_mask]
            self._added[new_slots] = now
            self._alive[new_slots] = True
            slots[new_mask] = new_slots
        self._rows[slots] = rows
        self._avail[slots] = availabilities
        self._horiz[slots] = horizontal_flags
        self._checked[slots] = now
        self._seq[slots] = self._next_seq_block(batch)
        self._materialized = {}
        self._slot_of = None
        return batch

    def _match_slots(self, digests: np.ndarray) -> np.ndarray:
        """Slot of each digest among live entries, -1 where absent."""
        out = np.full(digests.size, -1, dtype=np.int64)
        if self._count == 0:
            return out
        live = np.flatnonzero(self._alive[: self._size])
        live_digests = self._digests[live]
        order = np.argsort(live_digests)
        position = np.searchsorted(live_digests, digests, sorter=order)
        position = np.minimum(position, live.size - 1)
        candidate = order[position]
        matched = live_digests[candidate] == digests
        out[matched] = live[candidate[matched]]
        return out

    def neighbor_arrays(self, with_nodes: bool = True) -> NeighborView:
        """Columnar snapshot of the live neighbors (listing order).

        The returned :class:`NeighborView` carries the slot handles
        :meth:`refresh_round` consumes; any other mutation of the table
        invalidates them.  ``with_nodes=False`` skips :class:`NodeId`
        materialization (``nodes`` is None) — row-space callers on a
        population-backed table should prefer it so bulk flows never
        instantiate identity objects.
        """
        live = np.flatnonzero(self._alive[: self._size])
        horizontal = self._horiz[live]
        # One lexsort gives the listing order directly: HS block first
        # (~horizontal ascending), recency within each block.
        slots = live[np.lexsort((self._seq[live], ~horizontal))]
        if with_nodes:
            self._materialize_missing_ids(slots)
        return NeighborView(
            slots=slots,
            nodes=self._ids[slots] if with_nodes else None,
            availabilities=self._avail[slots],
            horizontal=self._horiz[slots],
            digests=self._digests[slots],
            rows=self._rows[slots] if self.population is not None else None,
        )

    def refresh_round(
        self,
        slots: np.ndarray,
        availabilities: np.ndarray,
        horizontal_flags: np.ndarray,
        keep_mask: np.ndarray,
        now: float,
    ) -> int:
        """Apply one batched refresh pass over ``slots``.

        Equivalent to walking the entries scalar-style — ``remove`` where
        ``keep_mask`` is False, ``upsert`` with the re-fetched
        availability/kind where True — but as one masked array pass.
        ``slots`` must come from :meth:`neighbor_arrays` on this table
        with no mutation in between; ``availabilities`` and
        ``horizontal_flags`` are only read at kept positions.

        Returns the number of entries evicted.
        """
        with current_telemetry().span("membership.refresh_round"):
            return self._refresh_round(
                slots, availabilities, horizontal_flags, keep_mask, now
            )

    def _refresh_round(
        self,
        slots: np.ndarray,
        availabilities: np.ndarray,
        horizontal_flags: np.ndarray,
        keep_mask: np.ndarray,
        now: float,
    ) -> int:
        slots = np.asarray(slots, dtype=np.int64)
        keep = np.asarray(keep_mask, dtype=bool)
        availabilities = np.asarray(availabilities, dtype=float)
        horizontal_flags = np.asarray(horizontal_flags, dtype=bool)
        if not (keep.size == availabilities.size == horizontal_flags.size == slots.size):
            raise ValueError(
                f"parallel refresh arrays must share length {slots.size}, got "
                f"{keep.size}/{availabilities.size}/{horizontal_flags.size}"
            )
        if slots.size == 0:
            return 0
        if not np.all(self._alive[slots]):
            raise ValueError("stale slot handles: table mutated since neighbor_arrays()")
        kept = slots[keep]
        self._avail[kept] = availabilities[keep]
        self._horiz[kept] = horizontal_flags[keep]
        self._checked[kept] = now
        self._seq[kept] = self._next_seq_block(kept.size)
        dropped = slots[~keep]
        if dropped.size:
            self._alive[dropped] = False
            self._ids[dropped] = None
            self._count -= int(dropped.size)
        self._materialized = {}
        self._slot_of = None
        self._maybe_compact()
        return int(dropped.size)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        return node in self._ensure_index()

    def get(self, node: NodeId) -> Optional[MemberEntry]:
        """The entry for ``node``, or None if it is not a neighbor."""
        slot = self._ensure_index().get(node)
        if slot is None:
            return None
        return self._entry_at(slot)

    @property
    def horizontal(self) -> Tuple[MemberEntry, ...]:
        """HS entries in listing (recency) order."""
        return tuple(self._entry_at(int(slot)) for slot in self._sliver_slots(True))

    @property
    def vertical(self) -> Tuple[MemberEntry, ...]:
        """VS entries in listing (recency) order."""
        return tuple(self._entry_at(int(slot)) for slot in self._sliver_slots(False))

    @property
    def horizontal_count(self) -> int:
        bound = self._size
        return int(np.count_nonzero(self._alive[:bound] & self._horiz[:bound]))

    @property
    def vertical_count(self) -> int:
        return self._count - self.horizontal_count

    @property
    def total_count(self) -> int:
        return self._count

    def entries(self, selector: str = SliverSelector.BOTH) -> List[MemberEntry]:
        """Neighbors visible under an HS/VS/both selector, deterministic
        order (HS first, then VS, each in recency order)."""
        SliverSelector.validate(selector)
        out: List[MemberEntry] = []
        if selector in (SliverSelector.HS_ONLY, SliverSelector.BOTH):
            out.extend(self.horizontal)
        if selector in (SliverSelector.VS_ONLY, SliverSelector.BOTH):
            out.extend(self.vertical)
        return out

    def neighbor_ids(self, selector: str = SliverSelector.BOTH) -> List[NodeId]:
        """Neighbor identities under a selector (same order as :meth:`entries`)."""
        return [entry.node for entry in self.entries(selector)]

    def all_entries(self) -> Iterator[MemberEntry]:
        """Iterate every entry, HS first then VS."""
        yield from self.horizontal
        yield from self.vertical

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(owner={self.owner}, hs={self.horizontal_count}, "
            f"vs={self.vertical_count})"
        )


class MembershipLists(MembershipTable):
    """The HS/VS neighbor tables of one node.

    Historical name for :class:`MembershipTable` — a thin view kept so
    the node, ops, monitor, and experiment layers (and downstream code)
    keep working unchanged against the columnar backend.
    """
