"""Configuration surface for AVMEM nodes and experiments.

All tunables from Sections 2-4 in one validated dataclass, with the
paper's defaults.  Everything that varies between figures (cushion,
retry counts, gossip parameters, …) is expressed as an override of this
object, so experiment code never hard-codes magic numbers.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Optional

from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = ["AvmemConfig", "GossipConfig", "AnycastConfig"]


@dataclass(frozen=True)
class GossipConfig:
    """Gossip dissemination parameters (Section 3.2, multicast).

    The paper selects ``Ng × fanout ≈ log(N*)`` and evaluates
    ``fanout=5, Ng=2`` with a 1-second gossip period.
    """

    fanout: int = 5
    rounds: int = 2  # the paper's Ng
    period: float = 1.0

    def __post_init__(self):
        if self.fanout <= 0:
            raise ValueError(f"fanout must be positive, got {self.fanout}")
        if self.rounds <= 0:
            raise ValueError(f"rounds (Ng) must be positive, got {self.rounds}")
        check_positive(self.period, "gossip period")

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "GossipConfig":
        return cls(**payload)


@dataclass(frozen=True)
class AnycastConfig:
    """Anycast parameters (Section 3.2)."""

    ttl: int = 6
    retry: int = 8
    ack_timeout: float = 0.5

    def __post_init__(self):
        if self.ttl <= 0:
            raise ValueError(f"ttl must be positive, got {self.ttl}")
        if self.retry <= 0:
            raise ValueError(f"retry must be positive, got {self.retry}")
        check_positive(self.ack_timeout, "ack_timeout")

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "AnycastConfig":
        return cls(**payload)


@dataclass(frozen=True)
class AvmemConfig:
    """Node-level AVMEM configuration (paper defaults).

    Attributes
    ----------
    epsilon:
        The horizontal-sliver half-width; the paper finds 0.1 suffices.
    c1, c2:
        Constants of sub-predicates I.B and II.B.
    cushion:
        Verification slack added to ``f`` (Section 4.1); 0 or 0.1 in the
        paper's experiments.
    discovery_period:
        Discovery sub-protocol period — "typically 1 minute".
    refresh_period:
        Refresh sub-protocol period — "20 minutes suffices".
    coarse_view_size:
        Shuffled-membership view size ``v``; None selects ``⌈√N*⌉`` per
        the Section 3.1 optimality argument.
    pdf_bins:
        Discretization of the availability PDF.
    hash_name:
        Pairwise hash registry name ("mix64", "sha1", "md5", "blake2b").
    availability_window:
        None for raw (from trace start) availability; otherwise the
        trailing-window length in seconds ("aged" availability).
    """

    epsilon: float = 0.1
    c1: float = 3.0
    c2: float = 1.0
    cushion: float = 0.0
    discovery_period: float = 60.0
    refresh_period: float = 1200.0
    coarse_view_size: Optional[int] = None
    pdf_bins: int = 20
    hash_name: str = "mix64"
    availability_window: Optional[float] = None
    #: refresh probes each neighbor and evicts unresponsive (offline)
    #: ones; they are re-discovered once back online.  Between refreshes
    #: entries still go stale — that residual staleness is what retried-
    #: greedy forwarding (Fig 9) and the cushion (Figs 5-6) absorb.
    refresh_liveness: bool = True
    #: discovery handshakes with a candidate before adopting it, so only
    #: currently-reachable nodes enter the lists (they may of course go
    #: offline immediately afterwards).
    discovery_liveness: bool = True
    anycast: AnycastConfig = field(default_factory=AnycastConfig)
    gossip: GossipConfig = field(default_factory=GossipConfig)

    def __post_init__(self):
        check_positive(self.epsilon, "epsilon")
        if self.epsilon > 0.5:
            raise ValueError(f"epsilon must be <= 0.5, got {self.epsilon}")
        check_positive(self.c1, "c1")
        check_positive(self.c2, "c2")
        check_probability(self.cushion, "cushion")
        check_positive(self.discovery_period, "discovery_period")
        check_positive(self.refresh_period, "refresh_period")
        if self.coarse_view_size is not None and self.coarse_view_size <= 0:
            raise ValueError(
                f"coarse_view_size must be positive or None, got {self.coarse_view_size}"
            )
        if self.pdf_bins <= 0:
            raise ValueError(f"pdf_bins must be positive, got {self.pdf_bins}")
        if self.availability_window is not None:
            check_positive(self.availability_window, "availability_window")

    def with_overrides(self, **changes) -> "AvmemConfig":
        """A copy with the given fields replaced (validates again)."""
        return replace(self, **changes)

    def as_dict(self) -> dict:
        """All-primitive dict (nested configs become dicts), exact
        round-trip through :meth:`from_dict` — what session manifests
        persist."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "AvmemConfig":
        payload = dict(payload)
        if isinstance(payload.get("anycast"), dict):
            payload["anycast"] = AnycastConfig.from_dict(payload["anycast"])
        if isinstance(payload.get("gossip"), dict):
            payload["gossip"] = GossipConfig.from_dict(payload["gossip"])
        return cls(**payload)

    def view_size_for(self, n_star: float) -> int:
        """Resolve the coarse view size: explicit, or ``⌈√N*⌉``."""
        if self.coarse_view_size is not None:
            return self.coarse_view_size
        check_non_negative(n_star, "n_star")
        return max(1, int(round(n_star**0.5)))
