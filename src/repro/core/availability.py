"""Discretized availability PDF and the derived population quantities.

Section 2.1 assumes "the PDF of the availability distribution of the
system … collected and analyzed offline by either a crawler or a central
server", plus an expected system size ``N*``, communicated to all nodes
consistently at pre-run time.  The predicates then use three derived
quantities:

* ``p(a)`` — the availability density at ``a`` (``p(a)·da`` = fraction of
  nodes in an infinitesimal band);
* ``N*_av(x) = N* · ∫_{av(x)-ε}^{av(x)+ε} p(a) da`` — expected online
  nodes near ``x``;
* ``N*min_av(x)`` — the minimum expected online nodes in any width-ε
  window wholly inside ``[av(x)-ε, av(x)+ε]``.

:class:`AvailabilityPdf` implements the discretized ("created from a
small sample set of nodes", §2.1) histogram version of all three.

**Online weighting.**  The predicate math treats ``N*·p(a)·da`` as the
expected number of *online* nodes in the band.  A host with availability
``a`` is online a fraction ``a`` of the time, so the faithful density is
the availability-weighted one: ``p̃(a) ∝ p_hosts(a)·a`` with
``N* = Σ_i av(i)``.  :meth:`AvailabilityPdf.from_samples` applies that
weighting by default; pass ``online_weighted=False`` for the raw host
histogram (docs/architecture.md, "Predicates and slivers", discusses
this choice).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.util.validation import check_fraction_interval, check_positive

__all__ = ["AvailabilityPdf"]


class AvailabilityPdf:
    """Binned availability distribution with an attached system size ``N*``.

    Parameters
    ----------
    bin_fractions:
        Fraction of (online-weighted) population mass per bin; must sum
        to 1.  Bins partition [0, 1] uniformly.
    n_star:
        The expected online system size ``N*``.
    """

    def __init__(self, bin_fractions: Sequence[float], n_star: float):
        fractions = np.asarray(bin_fractions, dtype=float)
        if fractions.ndim != 1 or fractions.size == 0:
            raise ValueError("bin_fractions must be a non-empty 1-D sequence")
        if np.any(fractions < 0):
            raise ValueError("bin_fractions must be non-negative")
        total = float(fractions.sum())
        if total <= 0:
            raise ValueError("bin_fractions must have positive mass")
        self._fractions = fractions / total
        self.n_star = check_positive(n_star, "n_star")
        self._bins = fractions.size
        self._width = 1.0 / self._bins
        # Cumulative mass at bin edges enables O(1) interval integrals.
        self._cum = np.concatenate([[0.0], np.cumsum(self._fractions)])

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_samples(
        cls,
        samples: Sequence[float],
        bins: int = 20,
        n_star: Optional[float] = None,
        online_weighted: bool = True,
    ) -> "AvailabilityPdf":
        """Fit from per-host availability samples.

        With ``online_weighted`` (default) each host is weighted by its
        availability and ``N*`` defaults to ``Σ av(i)`` — the expected
        number of hosts online at a random instant.  Otherwise hosts get
        unit weight and ``N*`` defaults to the host count.
        """
        values = np.asarray(list(samples), dtype=float)
        if values.size == 0:
            raise ValueError("cannot fit a PDF from zero samples")
        if np.any((values < 0) | (values > 1)):
            raise ValueError("availability samples must lie in [0, 1]")
        if bins <= 0:
            raise ValueError(f"bins must be positive, got {bins}")
        weights = values if online_weighted else np.ones_like(values)
        if float(weights.sum()) <= 0:
            # Every host has availability 0; fall back to unweighted so
            # the PDF stays well-defined.
            weights = np.ones_like(values)
        counts, _ = np.histogram(values, bins=bins, range=(0.0, 1.0), weights=weights)
        if n_star is None:
            n_star = float(values.sum()) if online_weighted else float(values.size)
            n_star = max(n_star, 1.0)
        return cls(counts, n_star=n_star)

    @classmethod
    def uniform(cls, n_star: float, bins: int = 20) -> "AvailabilityPdf":
        """The homogeneous-availability PDF (predicate I.A's best case)."""
        return cls(np.ones(bins), n_star=n_star)

    # ------------------------------------------------------------------
    # Density / mass queries
    # ------------------------------------------------------------------
    @property
    def bins(self) -> int:
        return self._bins

    @property
    def bin_width(self) -> float:
        return self._width

    @property
    def bin_fractions(self) -> np.ndarray:
        return self._fractions.copy()

    def _bin_index(self, a: float) -> int:
        idx = int(a / self._width)
        return min(max(idx, 0), self._bins - 1)

    def density(self, a: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """``p(a)`` — piecewise-constant density (integrates to 1)."""
        if isinstance(a, np.ndarray):
            idx = np.clip((a / self._width).astype(int), 0, self._bins - 1)
            return self._fractions[idx] / self._width
        check_fraction_interval(a, a, "availability")
        return float(self._fractions[self._bin_index(a)] / self._width)

    def fraction_in(self, lo: float, hi: float) -> float:
        """``∫_lo^hi p(a) da`` with bounds clamped into [0, 1]."""
        lo = max(0.0, min(1.0, lo))
        hi = max(0.0, min(1.0, hi))
        if hi <= lo:
            return 0.0
        return self._cum_at(hi) - self._cum_at(lo)

    def _cum_at(self, a: float) -> float:
        """Cumulative mass at ``a`` (linear within a bin)."""
        pos = a / self._width
        idx = min(int(pos), self._bins - 1)
        frac_in_bin = pos - idx
        return float(self._cum[idx] + self._fractions[idx] * min(frac_in_bin, 1.0))

    # ------------------------------------------------------------------
    # Paper quantities
    # ------------------------------------------------------------------
    def expected_online_in(self, lo: float, hi: float) -> float:
        """``N* · ∫_lo^hi p(a) da``."""
        return self.n_star * self.fraction_in(lo, hi)

    def n_star_av(self, availability: float, epsilon: float) -> float:
        """``N*_av(x)`` — expected online nodes within ±ε of ``availability``."""
        check_positive(epsilon, "epsilon")
        return self.expected_online_in(availability - epsilon, availability + epsilon)

    def n_star_min_av(
        self, availability: float, epsilon: float, resolution: int = 32
    ) -> float:
        """``N*min_av(x)`` — minimum expected online nodes in any width-ε
        window wholly inside ``[av(x)-ε, av(x)+ε]``.

        The interval is first clamped to the availability support [0, 1]
        (a window hanging past the support would spuriously report zero
        mass and blow the II.B threshold up to 1 for every node near the
        boundaries).  Evaluated by sliding the window start over
        ``resolution`` evenly spaced positions — the integral is
        piecewise linear in the start, so a modest resolution is exact up
        to bin granularity.
        """
        check_positive(epsilon, "epsilon")
        lo = max(0.0, availability - epsilon)
        hi = min(1.0, availability + epsilon)
        if hi - lo <= epsilon:
            # The clamped interval admits only one (possibly truncated)
            # window: the interval itself.
            return self.n_star * self.fraction_in(lo, hi)
        starts = np.linspace(lo, hi - epsilon, max(2, resolution))
        best = min(self.fraction_in(v, v + epsilon) for v in starts)
        return self.n_star * best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AvailabilityPdf(bins={self._bins}, n_star={self.n_star:.1f})"
