"""Node identifiers.

The paper identifies a node by its address — "the identifier (hash-based
or IP-port) of node x is denoted as id(x)".  :class:`NodeId` models the
IP:port form and carries a precomputed stable 64-bit digest of the
endpoint string, which is what the consistent pairwise hash functions in
:mod:`repro.core.hashing` mix.  The digest is derived with SHA-1, so it
is stable across processes and Python versions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

__all__ = ["NodeId", "make_node_ids", "digest_array"]


def _endpoint_digest64(endpoint: str) -> int:
    """Stable 64-bit digest of an endpoint string (big-endian SHA-1 prefix)."""
    return int.from_bytes(hashlib.sha1(endpoint.encode("utf-8")).digest()[:8], "big")


@dataclass(frozen=True, order=True)
class NodeId:
    """An IP:port node identity.

    Instances are immutable, hashable, and totally ordered (by host then
    port) so they can key dictionaries and be sorted deterministically in
    reports.
    """

    host: str
    port: int
    digest64: int = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if not self.host:
            raise ValueError("host must be non-empty")
        if not 0 < self.port < 65536:
            raise ValueError(f"port must be in (0, 65536), got {self.port}")
        object.__setattr__(self, "digest64", _endpoint_digest64(self.endpoint))

    def __hash__(self) -> int:
        # The precomputed endpoint digest doubles as the hash: one
        # attribute read instead of tuple construction + string hashing.
        # NodeIds key every membership/cache dict, so this is hot.
        # Consistent with __eq__: equal (host, port) -> equal digest.
        return self.digest64

    @property
    def endpoint(self) -> str:
        """The canonical ``host:port`` string the paper hashes."""
        return f"{self.host}:{self.port}"

    @classmethod
    def from_index(cls, index: int, port: int = 9000) -> "NodeId":
        """Deterministic synthetic address for host number ``index``.

        Used by trace generators and tests: host ``index`` maps into the
        10.0.0.0/8 space, so up to ~16.7M distinct synthetic hosts.
        """
        if index < 0 or index >= (1 << 24):
            raise ValueError(f"index must be in [0, 2^24), got {index}")
        a = (index >> 16) & 0xFF
        b = (index >> 8) & 0xFF
        c = index & 0xFF
        return cls(host=f"10.{a}.{b}.{c}", port=port)

    def __str__(self) -> str:
        return self.endpoint


def make_node_ids(count: int, port: int = 9000) -> List[NodeId]:
    """``count`` deterministic synthetic node ids."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    return [NodeId.from_index(i, port=port) for i in range(count)]


def digest_array(nodes: Sequence[NodeId]) -> np.ndarray:
    """The nodes' 64-bit digests as a ``uint64`` array (for vectorized
    hashing in :mod:`repro.core.hashing`)."""
    return np.array([n.digest64 for n in nodes], dtype=np.uint64)
