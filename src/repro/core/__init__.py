"""AVMEM core: the paper's primary contribution.

Identifiers, the consistent hash family, the discretized availability
PDF, the sliver sub-predicate family, the membership predicate
framework, per-node membership state, the discovery/refresh protocols,
inbound verification, and the Section 2.2 theory predictions.
"""

from repro.core.availability import AvailabilityPdf
from repro.core.config import AnycastConfig, AvmemConfig, GossipConfig
from repro.core.hashing import (
    HASH_NAMES,
    DigestPairHash,
    Mix64PairHash,
    PairwiseHash,
    make_hash,
)
from repro.core.ids import NodeId, digest_array, make_node_ids
from repro.core.membership import (
    MemberEntry,
    MembershipLists,
    MembershipTable,
    NeighborView,
    SliverSelector,
)
from repro.core.node import AvmemNode
from repro.core.predicates import (
    AvmemPredicate,
    NodeDescriptor,
    SliverKind,
    paper_predicate,
    random_overlay_predicate,
)
from repro.core.slivers import (
    ConstantHorizontal,
    ConstantVertical,
    FunctionRule,
    HorizontalSliverRule,
    LogarithmicConstantHorizontal,
    LogarithmicDecreasingVertical,
    LogarithmicVertical,
    RandomUniformRule,
    VerticalSliverRule,
)
from repro.core.theory import (
    expected_degree,
    expected_horizontal_size,
    expected_vertical_size,
    theorem1_band_counts,
    theorem3_bound,
)
from repro.core.verification import InboundVerifier, VerificationResult

__all__ = [
    "NodeId",
    "make_node_ids",
    "digest_array",
    "PairwiseHash",
    "Mix64PairHash",
    "DigestPairHash",
    "make_hash",
    "HASH_NAMES",
    "AvailabilityPdf",
    "AvmemPredicate",
    "NodeDescriptor",
    "SliverKind",
    "paper_predicate",
    "random_overlay_predicate",
    "VerticalSliverRule",
    "HorizontalSliverRule",
    "ConstantVertical",
    "LogarithmicVertical",
    "LogarithmicDecreasingVertical",
    "ConstantHorizontal",
    "LogarithmicConstantHorizontal",
    "RandomUniformRule",
    "FunctionRule",
    "MembershipTable",
    "MembershipLists",
    "MemberEntry",
    "NeighborView",
    "SliverSelector",
    "AvmemNode",
    "AvmemConfig",
    "AnycastConfig",
    "GossipConfig",
    "InboundVerifier",
    "VerificationResult",
    "expected_degree",
    "expected_horizontal_size",
    "expected_vertical_size",
    "theorem1_band_counts",
    "theorem3_bound",
]
