"""Consistent normalized pairwise hash functions — the ``H(id(x), id(y))``
of the AVMEM predicate (equation 1).

The paper requires ``H`` to be a *fixed, well-known, consistent* hash
normalized to [0, 1] — "a normalized version of SHA-1 or MD-5 could be
used".  Consistency (any party computes the same value from the two
identifiers alone) is the property that lets third parties verify
membership claims; cryptographic strength is not otherwise load-bearing.

Interchangeable implementations:

* :class:`DigestPairHash` — SHA-1 (paper's suggestion), MD5, or BLAKE2b
  over the concatenated endpoint strings.
* :class:`Mix64PairHash` — a splitmix64-style bijective mixer over the
  ids' 64-bit digests.  Statistically uniform, an order of magnitude
  faster, and vectorizable with NumPy — the default for large sweeps.
* :class:`Affine64PairHash` — a *shift-structured* consistent hash,
  ``H(x, y) = ((A·mix64(dx) + B·mix64(dy)) mod 2^64) / 2^64``.  Still
  consistent, directed, and per-pair uniform, but for a fixed source the
  membership condition ``H(x, y) <= t`` becomes a single wrapped
  interval over the destination *key* ``B·mix64(dy)`` — which is what
  lets the candidate-generation stage in
  :mod:`repro.core.candidates` enumerate exactly the passing
  destinations by binary search instead of evaluating all N pairs.
  The output-mixed hashes (mix64, the digest hashes) are PRF-like:
  every ordered pair's bit is independent, so *no* sub-quadratic exact
  enumeration exists for them and overlay construction must fall back
  to the block-tiled N×N sweep.

All of them are **asymmetric**: ``H(x, y) != H(y, x)`` in general, because
membership ``M(x, y)`` is a directed relation.
"""

from __future__ import annotations

import abc
import hashlib
from typing import Dict, Type

import numpy as np

from repro.core.ids import NodeId

__all__ = [
    "PairwiseHash",
    "DigestPairHash",
    "Mix64PairHash",
    "Affine64PairHash",
    "make_hash",
    "HASH_NAMES",
]

_U64_MASK = (1 << 64) - 1
_U64_SCALE = float(1 << 64)
_GOLDEN = 0x9E3779B97F4A7C15
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB


class PairwiseHash(abc.ABC):
    """Normalized consistent hash of an **ordered** node pair."""

    #: short registry name, e.g. "sha1"
    name: str = "abstract"

    @abc.abstractmethod
    def value(self, x: NodeId, y: NodeId) -> float:
        """``H(id(x), id(y))`` in [0, 1)."""

    def value_many(self, x: NodeId, digests_y: np.ndarray) -> np.ndarray:
        """Vectorized ``H(x, y_i)`` given the ``uint64`` digests of the
        ``y_i``.  The base implementation falls back to nothing — only
        digest-mixing hashes can vectorize; string hashes must loop."""
        raise NotImplementedError(f"{self.name} hash does not support vectorized evaluation")

    def value_matrix(self, digests_x: np.ndarray, digests_y: np.ndarray) -> np.ndarray:
        """Fully-batched pairwise digest matrix: ``H(x_i, y_j)`` for every
        ordered pair, shape ``(len(digests_x), len(digests_y))``.

        Powers the block-tiled overlay construction in
        :meth:`repro.core.predicates.AvmemPredicate.evaluate_all`.  Only
        digest-mixing hashes can batch; string hashes must loop."""
        raise NotImplementedError(f"{self.name} hash does not support matrix evaluation")

    @property
    def supports_vectorized(self) -> bool:
        return type(self).value_many is not PairwiseHash.value_many

    @property
    def supports_matrix(self) -> bool:
        return type(self).value_matrix is not PairwiseHash.value_matrix

    @property
    def supports_interval(self) -> bool:
        """Whether ``H(x, y) <= t`` reduces, for fixed ``x``, to a wrapped
        integer interval over a per-destination key (see
        :class:`Affine64PairHash`).  Hashes with this structure support
        exact O(log m) candidate enumeration; PRF-style hashes do not."""
        return False


def _mix64_int(z: int) -> int:
    """splitmix64 finalizer on a Python int (kept in 64 bits)."""
    z = (z + _GOLDEN) & _U64_MASK
    z = ((z ^ (z >> 30)) * _MIX_1) & _U64_MASK
    z = ((z ^ (z >> 27)) * _MIX_2) & _U64_MASK
    return z ^ (z >> 31)


def _mix64_array(z: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer on a uint64 array (wrapping arithmetic)."""
    z = (z + np.uint64(_GOLDEN)).astype(np.uint64)
    z = ((z ^ (z >> np.uint64(30))) * np.uint64(_MIX_1)).astype(np.uint64)
    z = ((z ^ (z >> np.uint64(27))) * np.uint64(_MIX_2)).astype(np.uint64)
    return z ^ (z >> np.uint64(31))


class Mix64PairHash(PairwiseHash):
    """Fast consistent hash mixing the two ids' 64-bit digests.

    ``H(x, y) = mix64(digest(x) + mix64(digest(y)) + salt) / 2^64`` — the
    inner mix breaks the symmetry between the operands, making the
    relation directed as required.  Distinct ``salt`` values give
    independent hash families (AVMON's monitor-selection hash must be
    independent of the AVMEM membership hash).
    """

    name = "mix64"

    def __init__(self, salt: int = 0):
        if salt < 0:
            raise ValueError(f"salt must be non-negative, got {salt}")
        self.salt = salt & _U64_MASK
        if self.salt:
            self.name = f"mix64:{self.salt}"

    def value(self, x: NodeId, y: NodeId) -> float:
        inner = _mix64_int(y.digest64)
        outer = _mix64_int((x.digest64 + inner + self.salt) & _U64_MASK)
        return outer / _U64_SCALE

    def value_many(self, x: NodeId, digests_y: np.ndarray) -> np.ndarray:
        digests_y = np.asarray(digests_y, dtype=np.uint64)
        with np.errstate(over="ignore"):
            inner = _mix64_array(digests_y)
            shifted = (np.uint64(x.digest64) + inner + np.uint64(self.salt)).astype(np.uint64)
            outer = _mix64_array(shifted)
        return outer.astype(np.float64) / _U64_SCALE

    def value_matrix(self, digests_x: np.ndarray, digests_y: np.ndarray) -> np.ndarray:
        digests_x = np.asarray(digests_x, dtype=np.uint64)
        digests_y = np.asarray(digests_y, dtype=np.uint64)
        with np.errstate(over="ignore"):
            # The inner mix depends only on y: compute it once per column
            # and broadcast against the source digests.
            inner = _mix64_array(digests_y)
            shifted = (
                digests_x[:, None] + inner[None, :] + np.uint64(self.salt)
            ).astype(np.uint64)
            outer = _mix64_array(shifted)
        return outer.astype(np.float64) / _U64_SCALE


class Affine64PairHash(PairwiseHash):
    """Shift-structured consistent hash enabling exact candidate
    enumeration.

    ``H(x, y) = ((A·mix64(digest(x)) + B·mix64(digest(y)) + salt') mod
    2^64) / 2^64`` with fixed odd constants ``A`` and ``B`` (and
    ``salt' = mix64(salt)``).  The per-operand mix64 scrambles the raw
    SHA-1 digests so availability bands do not correlate with hash
    position; the *affine combination* — instead of an output mix —
    preserves order structure: for a fixed source the condition
    ``H(x, y) <= t`` holds iff the destination key ``B·mix64(digest(y))``
    falls in one wrapped interval of width ``t·2^64`` whose position
    depends only on the source.  Sorting keys once therefore answers
    every membership query by binary search, which is the foundation of
    the O(N·k) overlay construction in :mod:`repro.core.candidates`.

    The hash stays consistent (any third party recomputes it from the
    two identifiers), directed (``A != B`` breaks symmetry), and
    per-pair marginally uniform (for fixed ``x``, ``y -> H(x, y)`` is a
    bijection of the mixed key space).  What it gives up relative to
    mix64 is *pairwise independence across sources* — structured source
    digests could correlate — which the AVMEM predicate does not rely
    on.
    """

    name = "affine64"

    #: odd multipliers: golden-ratio and a xxhash-style constant
    _A = 0x9E3779B97F4A7C15
    _B = 0xC2B2AE3D27D4EB4F

    def __init__(self, salt: int = 0):
        if salt < 0:
            raise ValueError(f"salt must be non-negative, got {salt}")
        self.salt = salt & _U64_MASK
        self._salt_mixed = _mix64_int(self.salt) if self.salt else 0
        if self.salt:
            self.name = f"affine64:{self.salt}"

    def _shift_int(self, digest: int) -> int:
        """Source-side term ``A·mix64(dx) + salt'`` (mod 2^64)."""
        return (self._A * _mix64_int(digest) + self._salt_mixed) & _U64_MASK

    def _key_int(self, digest: int) -> int:
        """Destination-side key ``B·mix64(dy)`` (mod 2^64)."""
        return (self._B * _mix64_int(digest)) & _U64_MASK

    def value(self, x: NodeId, y: NodeId) -> float:
        wrapped = (self._shift_int(x.digest64) + self._key_int(y.digest64)) & _U64_MASK
        return wrapped / _U64_SCALE

    def shift_array(self, digests_x: np.ndarray) -> np.ndarray:
        """Vectorized source shifts (``uint64``)."""
        digests_x = np.asarray(digests_x, dtype=np.uint64)
        with np.errstate(over="ignore"):
            mixed = _mix64_array(digests_x)
            return (
                np.uint64(self._A) * mixed + np.uint64(self._salt_mixed)
            ).astype(np.uint64)

    def key_array(self, digests_y: np.ndarray) -> np.ndarray:
        """Vectorized destination keys (``uint64``)."""
        digests_y = np.asarray(digests_y, dtype=np.uint64)
        with np.errstate(over="ignore"):
            return (np.uint64(self._B) * _mix64_array(digests_y)).astype(np.uint64)

    def value_many(self, x: NodeId, digests_y: np.ndarray) -> np.ndarray:
        with np.errstate(over="ignore"):
            shift = np.uint64(self._shift_int(x.digest64))
            wrapped = (shift + self.key_array(digests_y)).astype(np.uint64)
        return wrapped.astype(np.float64) / _U64_SCALE

    def value_matrix(self, digests_x: np.ndarray, digests_y: np.ndarray) -> np.ndarray:
        with np.errstate(over="ignore"):
            shifts = self.shift_array(digests_x)
            keys = self.key_array(digests_y)
            wrapped = (shifts[:, None] + keys[None, :]).astype(np.uint64)
        return wrapped.astype(np.float64) / _U64_SCALE

    @property
    def supports_interval(self) -> bool:
        return True


class DigestPairHash(PairwiseHash):
    """Cryptographic-digest hash over the concatenated endpoints.

    ``H(x, y) = int(digest("x.endpoint|y.endpoint")[:8]) / 2^64``.
    """

    _ALGORITHMS = ("sha1", "md5", "blake2b")

    def __init__(self, algorithm: str = "sha1"):
        if algorithm not in self._ALGORITHMS:
            raise ValueError(
                f"unknown digest algorithm {algorithm!r}; pick from {self._ALGORITHMS}"
            )
        self.name = algorithm
        self._algorithm = algorithm

    def value(self, x: NodeId, y: NodeId) -> float:
        payload = f"{x.endpoint}|{y.endpoint}".encode("utf-8")
        digest = hashlib.new(self._algorithm, payload).digest()
        return int.from_bytes(digest[:8], "big") / _U64_SCALE


def _sha1() -> PairwiseHash:
    return DigestPairHash("sha1")


def _md5() -> PairwiseHash:
    return DigestPairHash("md5")


def _blake2b() -> PairwiseHash:
    return DigestPairHash("blake2b")


_REGISTRY: Dict[str, object] = {
    "mix64": Mix64PairHash,
    "affine64": Affine64PairHash,
    "sha1": _sha1,
    "md5": _md5,
    "blake2b": _blake2b,
}

#: Names accepted by :func:`make_hash`.
HASH_NAMES = tuple(sorted(_REGISTRY))


def make_hash(name: str = "mix64") -> PairwiseHash:
    """Instantiate a registered pairwise hash by name."""
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(f"unknown hash {name!r}; pick from {HASH_NAMES}")
    return factory()
