"""The family of AVMEM sliver sub-predicates (Section 2.1).

Every rule maps ``(av(x), av(y), p(·))`` to an acceptance threshold in
[0, 1] which the framework compares against ``H(id(x), id(y))``:

Vertical sub-predicates (neighbors *outside* the ±ε band):

* **I.A ConstantVertical** — availability-independent probability; best
  for uniform availability PDFs.
* **I.B LogarithmicVertical** — ``min(c1·log(N*) / (N*·p(av(y))), 1)``;
  Theorem 1: uniform coverage of the availability space.
* **I.C LogarithmicDecreasingVertical** — I.B additionally divided by
  ``|av(y) − av(x)|``; Corollary 1.1: neighbor density decays with
  availability distance, Pastry/Chord-finger-style.

Horizontal sub-predicates (neighbors *inside* the ±ε band):

* **II.A ConstantHorizontal** — fixed probability.
* **II.B LogarithmicConstantHorizontal** —
  ``min(c2·log(N*_av(x)) / N*min_av(x), 1)``; Theorems 2 & 3:
  connectivity within the band with O(log) neighbors.

A note on I.A/II.A: the paper writes their right-hand sides as
``d = O(log N*)`` — a *neighbor count*, although ``f`` must be a
probability.  We therefore expose them as probabilities with
``from_target_count`` constructors that convert an intended expected
neighbor count into the corresponding probability (docs/architecture.md,
"Predicates and slivers").

**RandomUniformRule** (``f = p`` everywhere) yields the consistent
random overlay the paper compares against in Fig 10 ("a random overlay
graph similar to those created by … SCAMP, CYCLON, T-MAN").
"""

from __future__ import annotations

import abc
from typing import Union

import numpy as np

from repro.core.availability import AvailabilityPdf
from repro.util.mathx import log_at_least_one
from repro.util.validation import check_positive, check_probability

__all__ = [
    "VerticalSliverRule",
    "HorizontalSliverRule",
    "has_matrix_threshold",
    "has_candidate_bound",
    "ConstantVertical",
    "LogarithmicVertical",
    "LogarithmicDecreasingVertical",
    "ConstantHorizontal",
    "LogarithmicConstantHorizontal",
    "RandomUniformRule",
    "FunctionRule",
]

#: Densities below this are treated as "no nodes here": the 1/p(av(y))
#: factor is capped (threshold becomes 1.0), mirroring the min(·, 1.0)
#: in the paper's formulas.
_DENSITY_FLOOR = 1e-12


class _Rule(abc.ABC):
    """Shared base: scalar threshold plus an optionally-vectorized form."""

    #: How the candidate-generation stage (:mod:`repro.core.candidates`)
    #: can upper-bound this rule's threshold over a *bucket* of
    #: destination availabilities:
    #:
    #: * ``"const"`` — the threshold is one constant.
    #: * ``"src"`` — depends only on ``av(x)``: exact per-source scalar.
    #: * ``"dst"`` — depends only on ``av(y)``: exact per-destination
    #:   values (:meth:`candidate_values`), bounded by the bucket max.
    #: * ``"dst-distance"`` — per-destination base value divided by the
    #:   availability distance (I.C): bounded by bucket-max base over the
    #:   minimum possible distance.
    #: * ``None`` — no bound available; candidate generation is
    #:   unsupported for predicates using this rule (FunctionRule).
    CANDIDATE_BOUND = None

    @abc.abstractmethod
    def threshold(self, av_x: float, av_y: float, pdf: AvailabilityPdf) -> float:
        """The ``f(av(x), av(y))`` value in [0, 1]."""

    def candidate_values(self, avs: np.ndarray, pdf: AvailabilityPdf) -> np.ndarray:
        """Per-node values backing the declared :attr:`CANDIDATE_BOUND`
        (per-destination thresholds for ``"dst"``, uncapped base values
        for ``"dst-distance"``, per-source scalars for ``"src"``)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not participate in candidate generation"
        )

    def threshold_many(
        self, av_x: float, av_ys: np.ndarray, pdf: AvailabilityPdf
    ) -> np.ndarray:
        """Vectorized thresholds for many candidate neighbors (default:
        loop; subclasses override with closed-form array math)."""
        return np.array([self.threshold(av_x, float(a), pdf) for a in av_ys])

    def threshold_matrix(
        self, av_xs: np.ndarray, av_ys: np.ndarray, pdf: AvailabilityPdf
    ) -> np.ndarray:
        """Fully-batched thresholds for a block of sources against all
        candidates at once.

        Must return an array broadcastable to ``(len(av_xs), len(av_ys))``
        — rules that depend on only one operand may return a column
        (``(B, 1)``), a row (``(1, N)``), or a scalar array.  The default
        stacks :meth:`threshold_many` per source row; the concrete rules
        override it with closed-form broadcasts for the block-tiled
        overlay construction in ``AvmemPredicate.evaluate_all``.
        """
        return np.vstack(
            [self.threshold_many(float(ax), av_ys, pdf) for ax in av_xs]
        )


def has_matrix_threshold(rule: "_Rule") -> bool:
    """Whether ``rule`` provides a closed-form :meth:`_Rule.threshold_matrix`.

    Rules that only define the scalar/row forms (e.g. application
    :class:`FunctionRule` callables) may be partial functions — a
    distance-decaying vertical rule is never evaluated in-band by the
    scalar path — so the batched overlay construction must not evaluate
    them over the full N×N grid; it falls back to masked row evaluation
    instead.
    """
    return type(rule).threshold_matrix is not _Rule.threshold_matrix


def has_candidate_bound(rule: "_Rule") -> bool:
    """Whether the candidate-generation stage can bound ``rule`` over an
    availability bucket (see :attr:`_Rule.CANDIDATE_BOUND`)."""
    return rule.CANDIDATE_BOUND is not None


class VerticalSliverRule(_Rule):
    """Marker base class for vertical sub-predicates."""


class HorizontalSliverRule(_Rule):
    """Marker base class for horizontal sub-predicates."""


# ----------------------------------------------------------------------
# Vertical sub-predicates
# ----------------------------------------------------------------------
class ConstantVertical(VerticalSliverRule):
    """[I.A] availability-independent acceptance probability."""

    CANDIDATE_BOUND = "const"

    def __init__(self, probability: float):
        self.probability = check_probability(probability, "vertical probability")

    @classmethod
    def from_target_count(cls, d1: float, n_star: float) -> "ConstantVertical":
        """Probability yielding an expected ``d1`` vertical neighbors out of
        ``N*`` candidates (the paper's ``d1 = O(log N*)`` reading)."""
        check_positive(d1, "d1")
        check_positive(n_star, "n_star")
        return cls(min(1.0, d1 / n_star))

    def threshold(self, av_x: float, av_y: float, pdf: AvailabilityPdf) -> float:
        return self.probability

    def threshold_many(self, av_x, av_ys, pdf):
        return np.full(len(av_ys), self.probability)

    def threshold_matrix(self, av_xs, av_ys, pdf):
        return np.array(self.probability)

    def __repr__(self) -> str:
        return f"ConstantVertical(p={self.probability:.4g})"


class LogarithmicVertical(VerticalSliverRule):
    """[I.B] ``min(c1·log(N*) / (N*·p(av(y))), 1)`` — uniform coverage."""

    CANDIDATE_BOUND = "dst"

    def __init__(self, c1: float = 3.0):
        self.c1 = check_positive(c1, "c1")

    def candidate_values(self, avs, pdf):
        # Exact per-destination thresholds: the candidate stage bounds a
        # bucket by their max and re-filters hits against these same
        # floats, so the computation must match threshold_matrix — which
        # broadcasts exactly this threshold_many row.
        return self.threshold_many(0.0, np.asarray(avs, dtype=float), pdf)

    def threshold(self, av_x: float, av_y: float, pdf: AvailabilityPdf) -> float:
        density = pdf.density(av_y)
        if density <= _DENSITY_FLOOR:
            return 1.0
        value = self.c1 * log_at_least_one(pdf.n_star) / (pdf.n_star * density)
        return min(value, 1.0)

    def threshold_many(self, av_x, av_ys, pdf):
        densities = np.asarray(pdf.density(np.asarray(av_ys, dtype=float)))
        numerator = self.c1 * log_at_least_one(pdf.n_star)
        with np.errstate(divide="ignore"):
            values = numerator / (pdf.n_star * densities)
        values[densities <= _DENSITY_FLOOR] = 1.0
        return np.minimum(values, 1.0)

    def threshold_matrix(self, av_xs, av_ys, pdf):
        # Depends only on av(y): one row vector broadcast over sources.
        return self.threshold_many(0.0, np.asarray(av_ys, dtype=float), pdf)[None, :]

    def __repr__(self) -> str:
        return f"LogarithmicVertical(c1={self.c1})"


class LogarithmicDecreasingVertical(VerticalSliverRule):
    """[I.C] I.B divided by ``|av(y) − av(x)|`` — exponentially-spaced
    long links, Pastry/Chord-style (Corollary 1.1)."""

    CANDIDATE_BOUND = "dst-distance"

    def __init__(self, c1: float = 3.0):
        self.c1 = check_positive(c1, "c1")

    def candidate_values(self, avs, pdf):
        # Uncapped base values (the numerator over N*·density, before the
        # distance division): degenerate densities map to +inf so any
        # bucket containing them bounds to 1.0.
        avs = np.asarray(avs, dtype=float)
        densities = np.asarray(pdf.density(avs))
        numerator = self.c1 * log_at_least_one(pdf.n_star)
        with np.errstate(divide="ignore"):
            values = numerator / (pdf.n_star * densities)
        values[densities <= _DENSITY_FLOOR] = np.inf
        return values

    def pair_threshold_values(self, av_xs, av_ys, pdf):
        """Elementwise thresholds for paired ``(av_x, av_y)`` arrays,
        float-identical to the corresponding :meth:`threshold_matrix`
        entries (same expression, elementwise) — used by the candidate
        stage's exact hit filter."""
        av_xs = np.asarray(av_xs, dtype=float)
        av_ys = np.asarray(av_ys, dtype=float)
        densities = np.asarray(pdf.density(av_ys))
        distances = np.abs(av_ys - av_xs)
        numerator = self.c1 * log_at_least_one(pdf.n_star)
        degenerate = (densities <= _DENSITY_FLOOR) | (distances <= 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            values = numerator / (pdf.n_star * densities * distances)
        values[degenerate] = 1.0
        return np.minimum(values, 1.0)

    def threshold(self, av_x: float, av_y: float, pdf: AvailabilityPdf) -> float:
        density = pdf.density(av_y)
        distance = abs(av_y - av_x)
        if density <= _DENSITY_FLOOR or distance <= 0.0:
            return 1.0
        value = self.c1 * log_at_least_one(pdf.n_star) / (pdf.n_star * density * distance)
        return min(value, 1.0)

    def threshold_many(self, av_x, av_ys, pdf):
        av_ys = np.asarray(av_ys, dtype=float)
        densities = np.asarray(pdf.density(av_ys))
        distances = np.abs(av_ys - av_x)
        numerator = self.c1 * log_at_least_one(pdf.n_star)
        degenerate = (densities <= _DENSITY_FLOOR) | (distances <= 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            values = numerator / (pdf.n_star * densities * distances)
        values[degenerate] = 1.0
        return np.minimum(values, 1.0)

    def threshold_matrix(self, av_xs, av_ys, pdf):
        av_xs = np.asarray(av_xs, dtype=float)
        av_ys = np.asarray(av_ys, dtype=float)
        densities = np.asarray(pdf.density(av_ys))[None, :]
        distances = np.abs(av_ys[None, :] - av_xs[:, None])
        numerator = self.c1 * log_at_least_one(pdf.n_star)
        degenerate = (densities <= _DENSITY_FLOOR) | (distances <= 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            values = numerator / (pdf.n_star * densities * distances)
        values[degenerate] = 1.0
        return np.minimum(values, 1.0)

    def __repr__(self) -> str:
        return f"LogarithmicDecreasingVertical(c1={self.c1})"


# ----------------------------------------------------------------------
# Horizontal sub-predicates
# ----------------------------------------------------------------------
class ConstantHorizontal(HorizontalSliverRule):
    """[II.A] fixed acceptance probability within the ±ε band."""

    CANDIDATE_BOUND = "const"

    def __init__(self, probability: float):
        self.probability = check_probability(probability, "horizontal probability")

    @classmethod
    def from_target_count(
        cls, d2: float, n_star_av: float
    ) -> "ConstantHorizontal":
        """Probability yielding an expected ``d2`` horizontal neighbors out
        of the ``N*_av(x)`` candidates in the band."""
        check_positive(d2, "d2")
        check_positive(n_star_av, "n_star_av")
        return cls(min(1.0, d2 / n_star_av))

    def threshold(self, av_x: float, av_y: float, pdf: AvailabilityPdf) -> float:
        return self.probability

    def threshold_many(self, av_x, av_ys, pdf):
        return np.full(len(av_ys), self.probability)

    def threshold_matrix(self, av_xs, av_ys, pdf):
        return np.array(self.probability)

    def __repr__(self) -> str:
        return f"ConstantHorizontal(p={self.probability:.4g})"


class LogarithmicConstantHorizontal(HorizontalSliverRule):
    """[II.B] ``min(c2·log(N*_av(x)) / N*min_av(x), 1)``.

    The threshold depends only on ``av(x)`` (plus the global ε baked into
    the surrounding predicate's band test), so it is cached per ``av_x``
    — important because the discovery loop evaluates it for every coarse
    view entry.
    """

    CANDIDATE_BOUND = "src"

    def __init__(self, c2: float = 1.0, epsilon: float = 0.1):
        self.c2 = check_positive(c2, "c2")
        self.epsilon = check_positive(epsilon, "epsilon")
        self._cache: dict = {}

    def candidate_values(self, avs, pdf):
        # Per-*source* scalars: identical floats to the threshold_matrix
        # column (same cached scalar lookups).
        return np.array([self.threshold(float(ax), 0.0, pdf) for ax in avs])

    def threshold(self, av_x: float, av_y: float, pdf: AvailabilityPdf) -> float:
        # Quantize the cache key: the threshold is piecewise-linear in
        # av_x, so 1e-3 granularity is far below bin resolution while
        # giving the discovery loop near-perfect cache reuse.
        key = (id(pdf), round(av_x, 3))
        cached = self._cache.get(key)
        if cached is None:
            n_av = pdf.n_star_av(av_x, self.epsilon)
            n_min = pdf.n_star_min_av(av_x, self.epsilon)
            if n_min <= 0.0:
                cached = 1.0
            else:
                cached = min(self.c2 * log_at_least_one(n_av) / n_min, 1.0)
            if len(self._cache) > 65536:
                self._cache.clear()
            self._cache[key] = cached
        return cached

    def threshold_many(self, av_x, av_ys, pdf):
        return np.full(len(av_ys), self.threshold(av_x, 0.0, pdf))

    def threshold_matrix(self, av_xs, av_ys, pdf):
        # Depends only on av(x): one column vector broadcast over
        # candidates.  Each scalar lookup hits the per-av_x cache.
        column = np.array([self.threshold(float(ax), 0.0, pdf) for ax in av_xs])
        return column[:, None]

    def __repr__(self) -> str:
        return f"LogarithmicConstantHorizontal(c2={self.c2}, epsilon={self.epsilon})"


# ----------------------------------------------------------------------
# Application-specified rules
# ----------------------------------------------------------------------
class FunctionRule(VerticalSliverRule, HorizontalSliverRule):
    """An application-specified sub-predicate (Section 1.3's headline:
    "AVMEM allows arbitrary classes of application-specified predicates").

    Wraps any pure callable ``f(av_x, av_y, pdf) -> value`` into a sliver
    rule; the returned value is clamped into [0, 1].  The callable must
    be deterministic — it becomes part of the *consistent* predicate, so
    every node (and every verifier) has to compute the same threshold
    from the same inputs.

    >>> prefer_stable = FunctionRule(lambda ax, ay, pdf: ay**2, name="av^2")
    """

    def __init__(self, fn, name: str = "custom"):
        if not callable(fn):
            raise TypeError(f"fn must be callable, got {fn!r}")
        self._fn = fn
        self.name = str(name)

    def threshold(self, av_x: float, av_y: float, pdf: AvailabilityPdf) -> float:
        value = float(self._fn(av_x, av_y, pdf))
        if value != value:  # NaN from the application callable
            raise ValueError(f"custom rule {self.name!r} returned NaN")
        return min(1.0, max(0.0, value))

    def __repr__(self) -> str:
        return f"FunctionRule({self.name!r})"


# ----------------------------------------------------------------------
# Random baseline
# ----------------------------------------------------------------------
class RandomUniformRule(VerticalSliverRule, HorizontalSliverRule):
    """``f(·,·) = p`` — the consistent random overlay (SCAMP/CYCLON-like
    degree profile, but verifiable).  Usable as either sliver rule; using
    it for both gives the Fig 10 baseline graph."""

    CANDIDATE_BOUND = "const"

    def __init__(self, probability: float):
        self.probability = check_probability(probability, "random probability")

    @classmethod
    def matching_expected_degree(cls, degree: float, n_star: float) -> "RandomUniformRule":
        """The ``p`` giving an expected ``degree`` neighbors among ``N*``
        candidates — used to degree-match the baseline to AVMEM."""
        check_positive(degree, "degree")
        check_positive(n_star, "n_star")
        return cls(min(1.0, degree / n_star))

    def threshold(self, av_x: float, av_y: float, pdf: AvailabilityPdf) -> float:
        return self.probability

    def threshold_many(self, av_x, av_ys, pdf):
        return np.full(len(av_ys), self.probability)

    def threshold_matrix(self, av_xs, av_ys, pdf):
        return np.array(self.probability)

    def __repr__(self) -> str:
        return f"RandomUniformRule(p={self.probability:.4g})"
