"""Command-line interface.

    avmem figure fig7 --scale small --seed 3
    avmem figures --scale medium
    avmem trace --hosts 300 --epochs 120 --out trace.txt
    avmem snapshot --scale small

``python -m repro`` is an alias for the ``avmem`` entry point.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.figures import ALL_FIGURES
from repro.experiments.harness import SCALES, build_simulation
from repro.experiments.snapshot import take_snapshot

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the `avmem` argument parser (exposed for tests/docs)."""
    parser = argparse.ArgumentParser(
        prog="avmem",
        description="AVMEM (Middleware 2007) reproduction — figures, traces, snapshots",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate one evaluation figure")
    fig.add_argument("figure_id", choices=sorted(ALL_FIGURES, key=_fig_key))
    _add_common(fig)

    figs = sub.add_parser("figures", help="regenerate every evaluation figure")
    _add_common(figs)

    trace = sub.add_parser("trace", help="generate a synthetic Overnet-like trace")
    trace.add_argument("--hosts", type=int, default=1442)
    trace.add_argument("--epochs", type=int, default=504)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", required=True, help="output path (.txt or .npz)")

    snap = sub.add_parser("snapshot", help="print overlay snapshot statistics")
    _add_common(snap)
    return parser


def _fig_key(figure_id: str) -> int:
    return int(figure_id.replace("fig", ""))


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument("--seed", type=int, default=0)


def _cmd_figure(args) -> int:
    result = ALL_FIGURES[args.figure_id](scale=args.scale, seed=args.seed)
    print(result.render())
    return 0


def _cmd_figures(args) -> int:
    for figure_id in sorted(ALL_FIGURES, key=_fig_key):
        result = ALL_FIGURES[figure_id](scale=args.scale, seed=args.seed)
        print(result.render())
        print()
    return 0


def _cmd_trace(args) -> int:
    from repro.churn.loader import save_trace_npz, save_trace_text
    from repro.churn.overnet import OvernetTraceConfig, generate_overnet_trace
    from repro.churn.stats import summarize_trace

    config = OvernetTraceConfig(hosts=args.hosts, epochs=args.epochs)
    trace = generate_overnet_trace(config=config, seed=args.seed)
    if args.out.endswith(".npz"):
        save_trace_npz(args.out, trace, config.epoch_seconds)
    else:
        save_trace_text(args.out, trace, config.epoch_seconds)
    summary = summarize_trace(trace)
    for key, value in summary.as_dict().items():
        print(f"{key}: {value:.4g}")
    print(f"wrote {args.out}")
    return 0


def _cmd_snapshot(args) -> int:
    simulation = build_simulation(scale=args.scale, seed=args.seed)
    snapshot = take_snapshot(simulation)
    print(f"time: {snapshot.time:.0f}s  online nodes: {snapshot.online_count}")
    print("band      nodes  hs_mean  vs_mean  incoming_vs")
    counts, edges = snapshot.availability_histogram(bins=10)
    hs = snapshot.hs_by_band()
    vs = snapshot.vs_by_band()
    inc = snapshot.incoming_vs_by_band()
    for i, count in enumerate(counts):
        band = round(float(edges[i]), 2)
        print(
            f"[{band:.1f},{band + 0.1:.1f})  {int(count):5d}  "
            f"{hs.get(band, float('nan')):7.1f}  {vs.get(band, float('nan')):7.1f}  "
            f"{inc.get(band, float('nan')):11.1f}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "figure": _cmd_figure,
        "figures": _cmd_figures,
        "trace": _cmd_trace,
        "snapshot": _cmd_snapshot,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
