"""Command-line interface.

    avmem figure fig7 --scale small --seed 3
    avmem figures --scale medium
    avmem trace --hosts 300 --epochs 120 --model weibull --out trace.txt
    avmem snapshot --scale small
    avmem scenario list
    avmem scenario run flash-crowd --scale small --json report.json
    avmem scenario smoke --scale small

``python -m repro`` is an alias for the ``avmem`` entry point.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments.figures import ALL_FIGURES
from repro.experiments.harness import SCALES, build_simulation, run_scenario
from repro.experiments.snapshot import take_snapshot

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the `avmem` argument parser (exposed for tests/docs)."""
    parser = argparse.ArgumentParser(
        prog="avmem",
        description="AVMEM (Middleware 2007) reproduction — figures, traces, snapshots",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate one evaluation figure")
    fig.add_argument("figure_id", choices=sorted(ALL_FIGURES, key=_fig_key))
    _add_common(fig)

    figs = sub.add_parser("figures", help="regenerate every evaluation figure")
    _add_common(figs)

    trace = sub.add_parser("trace", help="generate a synthetic churn trace")
    trace.add_argument("--hosts", type=int, default=1442)
    trace.add_argument("--epochs", type=int, default=504)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--model",
        choices=sorted(_trace_models()),
        default="overnet",
        help="churn model realizing the trace (default: the Overnet-like generator)",
    )
    trace.add_argument("--out", required=True, help="output path (.txt or .npz)")

    snap = sub.add_parser("snapshot", help="print overlay snapshot statistics")
    _add_common(snap)

    scen = sub.add_parser(
        "scenario", help="list/run the declarative churn+workload scenarios"
    )
    scen_sub = scen.add_subparsers(dest="scenario_command", required=True)
    scen_sub.add_parser("list", help="print the registered scenario catalogue")
    scen_run = scen_sub.add_parser(
        "run", help="run one scenario's workload through the harness"
    )
    scen_run.add_argument(
        "name", choices=_scenario_names(), help="registered scenario name"
    )
    _add_common(scen_run)
    scen_run.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the metrics report as JSON",
    )
    scen_smoke = scen_sub.add_parser(
        "smoke",
        help="compile+run every registered scenario (CI gate: any failure is fatal)",
    )
    _add_common(scen_smoke)
    return parser


def _trace_models():
    from repro.churn.loader import TRACE_MODELS

    return TRACE_MODELS


def _scenario_names():
    from repro.scenarios.registry import scenario_names

    return scenario_names()


def _fig_key(figure_id: str) -> int:
    return int(figure_id.replace("fig", ""))


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument("--seed", type=int, default=0)


def _cmd_figure(args) -> int:
    result = ALL_FIGURES[args.figure_id](scale=args.scale, seed=args.seed)
    print(result.render())
    return 0


def _cmd_figures(args) -> int:
    for figure_id in sorted(ALL_FIGURES, key=_fig_key):
        result = ALL_FIGURES[figure_id](scale=args.scale, seed=args.seed)
        print(result.render())
        print()
    return 0


def _cmd_trace(args) -> int:
    from repro.churn.loader import generate_model_trace, save_trace_npz, save_trace_text
    from repro.churn.overnet import OVERNET_EPOCH_SECONDS
    from repro.churn.stats import summarize_trace
    from repro.churn.trace import ChurnTrace

    epoch_seconds = OVERNET_EPOCH_SECONDS
    trace = generate_model_trace(
        args.model, hosts=args.hosts, epochs=args.epochs, seed=args.seed,
        epoch_seconds=epoch_seconds,
    )
    if args.out.endswith(".npz"):
        save_trace_npz(args.out, trace, epoch_seconds)
    else:
        save_trace_text(args.out, trace, epoch_seconds)
    # Summarize what the file actually contains: both formats persist an
    # epoch matrix (presence sampled at epoch midpoints), which rounds
    # the continuous-time models' sub-epoch sessions to the epoch grid.
    matrix, keys = trace.to_matrix(epoch_seconds)
    persisted = ChurnTrace.from_matrix(matrix, keys, epoch_seconds)
    summary = summarize_trace(persisted)
    print(f"model: {args.model}")
    if args.model in ("weibull", "pareto"):
        print(
            f"note: persisted at epoch resolution ({epoch_seconds:.0f} s); "
            "sub-epoch sessions are rounded to the epoch grid"
        )
    for key, value in summary.as_dict().items():
        print(f"{key}: {value:.4g}")
    print(f"wrote {args.out}")
    return 0


def _cmd_scenario(args) -> int:
    from repro.scenarios.registry import SCENARIOS, scenario_names

    if args.scenario_command == "list":
        width = max(len(name) for name in scenario_names())
        for name in scenario_names():
            print(f"{name:<{width}}  {SCENARIOS[name].description}")
        return 0
    if args.scenario_command == "run":
        report = run_scenario(args.name, scale=args.scale, seed=args.seed)
        _print_report(report)
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(report.as_dict(), fh, indent=2)
            print(f"wrote {args.json}")
        return 0
    # smoke: every registered scenario must compile and simulate
    failures = []
    for name in scenario_names():
        try:
            report = run_scenario(name, scale=args.scale, seed=args.seed)
        except Exception as exc:  # noqa: BLE001 - the gate reports, then fails
            failures.append((name, exc))
            print(f"FAIL {name}: {type(exc).__name__}: {exc}")
            continue
        print(
            f"ok   {name}: online={report.online_at_start} "
            f"anycasts={report.anycasts_delivered}/{report.anycasts} "
            f"multicast_rel={report.multicast_mean_reliability:.2f} "
            f"({report.build_seconds + report.workload_seconds:.1f}s)"
        )
    if failures:
        print(f"{len(failures)} scenario(s) failed the smoke gate")
        return 1
    print(f"all {len(scenario_names())} scenarios ran at scale {args.scale!r}")
    return 0


def _print_report(report) -> None:
    for key, value in report.as_dict().items():
        if isinstance(value, float):
            print(f"{key}: {value:.4g}")
        elif isinstance(value, list):
            for note in value:
                print(f"note: {note}")
        elif value is None:
            print(f"{key}: n/a")
        else:
            print(f"{key}: {value}")


def _cmd_snapshot(args) -> int:
    simulation = build_simulation(scale=args.scale, seed=args.seed)
    snapshot = take_snapshot(simulation)
    print(f"time: {snapshot.time:.0f}s  online nodes: {snapshot.online_count}")
    print("band      nodes  hs_mean  vs_mean  incoming_vs")
    counts, edges = snapshot.availability_histogram(bins=10)
    hs = snapshot.hs_by_band()
    vs = snapshot.vs_by_band()
    inc = snapshot.incoming_vs_by_band()
    for i, count in enumerate(counts):
        band = round(float(edges[i]), 2)
        print(
            f"[{band:.1f},{band + 0.1:.1f})  {int(count):5d}  "
            f"{hs.get(band, float('nan')):7.1f}  {vs.get(band, float('nan')):7.1f}  "
            f"{inc.get(band, float('nan')):11.1f}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "figure": _cmd_figure,
        "figures": _cmd_figures,
        "trace": _cmd_trace,
        "snapshot": _cmd_snapshot,
        "scenario": _cmd_scenario,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
