"""Command-line interface.

    avmem figure fig7 --scale small --seed 3
    avmem figures --scale medium
    avmem trace --hosts 300 --epochs 120 --model weibull --out trace.txt
    avmem snapshot --scale small
    avmem scenario list
    avmem scenario run flash-crowd --scale small --json report.json
    avmem scenario smoke --scale small
    avmem ops run --scale small --anycasts 10 --multicasts 3 \
        --target 0.6,0.9 --timing poisson --rate 0.05
    avmem ops run --scale small --plan plan.json --json log.json
    avmem ops run --scale medium --telemetry tel.json --progress 10
    avmem telemetry summarize tel.json
    avmem telemetry summarize before.json after.json
    avmem telemetry trend benchmarks/results --fail-on-regression
    avmem serve --port 8414 --state-dir avmem-sessions --idle-timeout 900
    avmem lint
    avmem lint --format json --fail-on-new --fail-on-stale
    avmem lint --rules hot-loop --show-baselined
    avmem lint --write-baseline

``python -m repro`` is an alias for the ``avmem`` entry point.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.experiments.figures import ALL_FIGURES
from repro.experiments.harness import SCALES, build_simulation, run_scenario
from repro.experiments.snapshot import take_snapshot

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the `avmem` argument parser (exposed for tests/docs)."""
    parser = argparse.ArgumentParser(
        prog="avmem",
        description="AVMEM (Middleware 2007) reproduction — figures, traces, snapshots",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate one evaluation figure")
    fig.add_argument("figure_id", choices=sorted(ALL_FIGURES, key=_fig_key))
    _add_common(fig)

    figs = sub.add_parser("figures", help="regenerate every evaluation figure")
    _add_common(figs)

    trace = sub.add_parser("trace", help="generate a synthetic churn trace")
    trace.add_argument("--hosts", type=int, default=1442)
    trace.add_argument("--epochs", type=int, default=504)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--model",
        choices=sorted(_trace_models()),
        default="overnet",
        help="churn model realizing the trace (default: the Overnet-like generator)",
    )
    trace.add_argument("--out", required=True, help="output path (.txt or .npz)")

    snap = sub.add_parser("snapshot", help="print overlay snapshot statistics")
    _add_common(snap)

    scen = sub.add_parser(
        "scenario", help="list/run the declarative churn+workload scenarios"
    )
    scen_sub = scen.add_subparsers(dest="scenario_command", required=True)
    scen_sub.add_parser("list", help="print the registered scenario catalogue")
    scen_run = scen_sub.add_parser(
        "run", help="run one scenario's workload through the harness"
    )
    scen_run.add_argument(
        "name", choices=_scenario_names(), help="registered scenario name"
    )
    _add_common(scen_run)
    scen_run.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the metrics report as JSON",
    )
    _add_telemetry_flags(scen_run)
    scen_smoke = scen_sub.add_parser(
        "smoke",
        help="compile+run every registered scenario (CI gate: any failure is fatal)",
    )
    _add_common(scen_smoke)

    ops = sub.add_parser(
        "ops", help="execute a declarative operation plan and report its log"
    )
    ops_sub = ops.add_subparsers(dest="ops_command", required=True)
    ops_run = ops_sub.add_parser(
        "run", help="run an OperationPlan from flags or a JSON file"
    )
    _add_common(ops_run)
    ops_run.add_argument(
        "--plan", metavar="PATH", default=None,
        help="load the plan from a JSON file (overrides the flag-built plan)",
    )
    ops_run.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="run over a registered churn scenario instead of the default trace",
    )
    ops_run.add_argument("--anycasts", type=int, default=6)
    ops_run.add_argument("--multicasts", type=int, default=2)
    ops_run.add_argument(
        "--target", default="0.6,0.9",
        help="'lo,hi' for a range target or one number for a threshold",
    )
    ops_run.add_argument("--band", default="mid", help="anycast initiator band")
    ops_run.add_argument("--mcast-band", default="high", help="multicast initiator band")
    ops_run.add_argument("--policy", default="greedy", help="anycast forwarding policy")
    ops_run.add_argument("--selector", default="hs+vs", choices=["hs", "vs", "hs+vs"])
    ops_run.add_argument("--mode", default="flood", choices=["flood", "gossip"])
    ops_run.add_argument("--retry", type=int, default=None)
    ops_run.add_argument(
        "--timing", default="interval", choices=["batch", "interval", "poisson"]
    )
    ops_run.add_argument(
        "--rate", type=float, default=0.05,
        help="poisson arrivals per second (per operation stream)",
    )
    ops_run.add_argument("--settle", type=float, default=30.0)
    ops_run.add_argument(
        "--group-by", default="kind",
        help="comma-separated log columns for the grouped report "
        "(e.g. 'kind,band'); empty disables it",
    )
    ops_run.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the columnar operation log as JSON",
    )
    ops_run.add_argument(
        "--csv", metavar="PATH", default=None,
        help="write the columnar operation log as CSV",
    )
    ops_run.add_argument(
        "--plan-out", metavar="PATH", default=None,
        help="also write the executed plan as JSON (a reusable --plan file)",
    )
    _add_telemetry_flags(ops_run)

    tel = sub.add_parser(
        "telemetry", help="inspect telemetry snapshots recorded with --telemetry"
    )
    tel_sub = tel.add_subparsers(dest="telemetry_command", required=True)
    tel_sum = tel_sub.add_parser(
        "summarize", help="pretty-print one snapshot, or diff two (A B)"
    )
    tel_sum.add_argument(
        "snapshots", nargs="+", metavar="SNAPSHOT",
        help="telemetry snapshot JSON file(s); two files render as a diff",
    )
    tel_trend = tel_sub.add_parser(
        "trend",
        help="per-phase time deltas across a directory of BENCH_*.json records",
    )
    tel_trend.add_argument(
        "directory", metavar="DIR",
        help="directory walked recursively for BENCH_*.json files",
    )
    tel_trend.add_argument(
        "--threshold", type=float, default=0.25,
        help="relative slowdown flagged as a regression (default 0.25 = +25%%)",
    )
    tel_trend.add_argument(
        "--min-seconds", type=float, default=0.05,
        help="absolute slowdown a regression must also exceed (default 0.05s)",
    )
    tel_trend.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit 1 when any phase regressed (CI gate)",
    )

    serve = sub.add_parser(
        "serve", help="run the simulation-as-a-service HTTP API"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8414,
        help="TCP port (0 picks a free one; default 8414)",
    )
    serve.add_argument(
        "--state-dir", default="avmem-sessions", metavar="DIR",
        help="session checkpoint directory (created if missing)",
    )
    serve.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="evict sessions idle this long to disk (default: never)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every request to stderr"
    )

    lint = sub.add_parser(
        "lint",
        help="run avmemlint, the AST-based invariant checker, over src/repro",
    )
    lint.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files/directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--format", choices=["text", "json"], default="text", dest="fmt",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--baseline", metavar="PATH", default="lint-baseline.json",
        help="baseline file of known findings (default: lint-baseline.json)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file; every finding counts as new",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate the baseline from this run's findings and exit",
    )
    lint.add_argument(
        "--fail-on-new", action="store_true",
        help="exit 1 when any non-baselined finding exists (CI gate)",
    )
    lint.add_argument(
        "--fail-on-stale", action="store_true",
        help="exit 1 when the tree no longer produces a baselined finding "
        "(paid-down debt must be removed via --write-baseline)",
    )
    lint.add_argument(
        "--rules", metavar="ID[,ID...]", default=None,
        help="run only these rule ids (see --list-rules)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    lint.add_argument(
        "--show-baselined", action="store_true",
        help="list baselined findings individually instead of a count",
    )
    return parser


def _trace_models():
    from repro.churn.loader import TRACE_MODELS

    return TRACE_MODELS


def _scenario_names():
    from repro.scenarios.registry import scenario_names

    return scenario_names()


def _fig_key(figure_id: str) -> int:
    return int(figure_id.replace("fig", ""))


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument("--seed", type=int, default=0)


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="record run telemetry and write the snapshot as JSON "
        "(render it with 'avmem telemetry summarize PATH')",
    )
    parser.add_argument(
        "--progress", type=float, metavar="SECONDS", default=None,
        help="emit a progress line to stderr every SECONDS wall-clock "
        "seconds (implies telemetry recording)",
    )


def _telemetry_begin(args) -> bool:
    """Enable the recorder when --telemetry/--progress was passed."""
    if not (args.telemetry or args.progress is not None):
        return False
    from repro.telemetry import TELEMETRY, ProgressReporter

    TELEMETRY.enable(reset=True)
    if args.progress is not None:
        TELEMETRY.attach_progress(ProgressReporter(interval=args.progress))
    return True


def _telemetry_end(args) -> None:
    """Freeze, disable, and (when requested) export the snapshot."""
    from repro.telemetry import TELEMETRY

    snapshot = TELEMETRY.snapshot()
    TELEMETRY.disable()
    TELEMETRY.attach_progress(None)
    if args.telemetry:
        snapshot.to_json(args.telemetry)
        coverage = snapshot.span_coverage()
        pct = f"{100.0 * coverage:.1f}%" if coverage == coverage else "n/a"
        print(
            f"wrote {args.telemetry} "
            f"(wall {snapshot.wall_seconds:.2f}s, span coverage {pct})"
        )


def _cmd_figure(args) -> int:
    result = ALL_FIGURES[args.figure_id](scale=args.scale, seed=args.seed)
    print(result.render())
    return 0


def _cmd_figures(args) -> int:
    for figure_id in sorted(ALL_FIGURES, key=_fig_key):
        result = ALL_FIGURES[figure_id](scale=args.scale, seed=args.seed)
        print(result.render())
        print()
    return 0


def _cmd_trace(args) -> int:
    from repro.churn.loader import generate_model_trace, save_trace_npz, save_trace_text
    from repro.churn.overnet import OVERNET_EPOCH_SECONDS
    from repro.churn.stats import summarize_trace
    from repro.churn.trace import ChurnTrace

    epoch_seconds = OVERNET_EPOCH_SECONDS
    trace = generate_model_trace(
        args.model, hosts=args.hosts, epochs=args.epochs, seed=args.seed,
        epoch_seconds=epoch_seconds,
    )
    if args.out.endswith(".npz"):
        save_trace_npz(args.out, trace, epoch_seconds)
    else:
        save_trace_text(args.out, trace, epoch_seconds)
    # Summarize what the file actually contains: both formats persist an
    # epoch matrix (presence sampled at epoch midpoints), which rounds
    # the continuous-time models' sub-epoch sessions to the epoch grid.
    matrix, keys = trace.to_matrix(epoch_seconds)
    persisted = ChurnTrace.from_matrix(matrix, keys, epoch_seconds)
    summary = summarize_trace(persisted)
    print(f"model: {args.model}")
    if args.model in ("weibull", "pareto"):
        print(
            f"note: persisted at epoch resolution ({epoch_seconds:.0f} s); "
            "sub-epoch sessions are rounded to the epoch grid"
        )
    for key, value in summary.as_dict().items():
        print(f"{key}: {value:.4g}")
    print(f"wrote {args.out}")
    return 0


def _cmd_scenario(args) -> int:
    from repro.scenarios.registry import SCENARIOS, scenario_names

    if args.scenario_command == "list":
        width = max(len(name) for name in scenario_names())
        for name in scenario_names():
            print(f"{name:<{width}}  {SCENARIOS[name].description}")
        return 0
    if args.scenario_command == "run":
        telemetry_on = _telemetry_begin(args)
        try:
            if telemetry_on:
                from repro.telemetry import TELEMETRY

                with TELEMETRY.span("scenario.run"):
                    report = run_scenario(args.name, scale=args.scale, seed=args.seed)
            else:
                report = run_scenario(args.name, scale=args.scale, seed=args.seed)
        finally:
            if telemetry_on:
                _telemetry_end(args)
        _print_report(report)
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(report.as_dict(), fh, indent=2)
            print(f"wrote {args.json}")
        return 0
    # smoke: every registered scenario must compile and simulate
    failures = []
    for name in scenario_names():
        try:
            report = run_scenario(name, scale=args.scale, seed=args.seed)
        except Exception as exc:  # noqa: BLE001 - the gate reports, then fails
            failures.append((name, exc))
            print(f"FAIL {name}: {type(exc).__name__}: {exc}")
            continue
        print(
            f"ok   {name}: online={report.online_at_start} "
            f"anycasts={report.anycasts_delivered}/{report.anycasts} "
            f"multicast_rel={report.multicast_mean_reliability:.2f} "
            f"({report.build_seconds + report.workload_seconds:.1f}s)"
        )
    if failures:
        print(f"{len(failures)} scenario(s) failed the smoke gate")
        return 1
    print(f"all {len(scenario_names())} scenarios ran at scale {args.scale!r}")
    return 0


def _print_report(report) -> None:
    for key, value in report.as_dict().items():
        if isinstance(value, float):
            print(f"{key}: {value:.4g}")
        elif isinstance(value, list):
            for note in value:
                print(f"note: {note}")
        elif value is None:
            print(f"{key}: n/a")
        else:
            print(f"{key}: {value}")


def _parse_target(text: str):
    from repro.ops.spec import TargetSpec

    parts = text.split(",")
    try:
        if len(parts) == 1:
            return TargetSpec.threshold(float(parts[0]))
        if len(parts) == 2:
            return TargetSpec.range(float(parts[0]), float(parts[1]))
    except ValueError as exc:
        # covers empty components too ("0.9," must not silently become
        # a threshold target)
        raise SystemExit(f"invalid --target {text!r}: {exc}") from None
    raise SystemExit(f"--target must be 'lo,hi' or one number, got {text!r}")


def _ops_plan_from_args(args):
    from repro.ops.plan import (
        OperationItem,
        OperationPlan,
        OperationTiming,
        sequential_multicast_phase,
    )

    target = _parse_target(args.target)

    def timing(phase: float) -> OperationTiming:
        if args.timing == "poisson":
            return OperationTiming(mode="poisson", rate=args.rate)
        if args.timing == "batch":
            return OperationTiming(mode="batch")
        return OperationTiming(mode="interval", phase=phase)

    items = []
    if args.anycasts:
        items.append(OperationItem(
            kind="anycast", target=target, count=args.anycasts, band=args.band,
            policy=args.policy, selector=args.selector, retry=args.retry,
            timing=timing(0.0), label="anycasts",
        ))
    if args.multicasts:
        phase = (
            sequential_multicast_phase(args.anycasts, args.settle)
            if args.timing == "interval"
            else 0.0
        )
        items.append(OperationItem(
            kind="multicast", target=target, count=args.multicasts,
            band=args.mcast_band, mode=args.mode, selector=args.selector,
            timing=timing(phase), label="multicasts",
        ))
    if not items:
        raise SystemExit("nothing to run: both --anycasts and --multicasts are 0")
    return OperationPlan(items=tuple(items), settle=args.settle, name="cli")


def _cmd_ops(args) -> int:
    from repro.ops.plan import OperationPlan

    try:
        if args.plan:
            plan = OperationPlan.from_json(args.plan)
        else:
            plan = _ops_plan_from_args(args)
    except (ValueError, KeyError, OSError) as exc:
        source = f"plan file {args.plan!r}" if args.plan else "plan flags"
        raise SystemExit(f"invalid {source}: {exc}") from None
    telemetry_on = _telemetry_begin(args)
    try:
        if telemetry_on:
            from repro.telemetry import TELEMETRY

            with TELEMETRY.span("ops.run"):
                simulation = build_simulation(
                    scale=args.scale, seed=args.seed, scenario=args.scenario
                )
                log = simulation.ops.run(plan)
        else:
            simulation = build_simulation(
                scale=args.scale, seed=args.seed, scenario=args.scenario
            )
            log = simulation.ops.run(plan)
    finally:
        if telemetry_on:
            _telemetry_end(args)
    print(
        f"plan: {plan.name}  items: {len(plan.items)}  "
        f"operations: {plan.total_operations}  settle: {plan.settle:g}s"
    )
    summary = log.summary()
    fractions = summary.pop("status_fractions")
    for key, value in summary.items():
        if isinstance(value, float):
            print(f"{key}: {'n/a' if value != value else f'{value:.4g}'}")
        else:
            print(f"{key}: {value}")
    for status, fraction in fractions.items():
        if fraction:
            print(f"status[{status}]: {fraction:.4g}")
    group_by = tuple(f for f in args.group_by.split(",") if f)
    if group_by:
        try:
            grouped = log.aggregate(by=group_by)
        except ValueError as exc:
            raise SystemExit(f"invalid --group-by: {exc}") from None
        print(f"grouped by {', '.join(group_by)}:")

        def fmt(value: float, suffix: str = "") -> str:
            return "n/a" if value != value else f"{value:.3f}{suffix}"

        for entry in grouped:
            key = " ".join(f"{field}={entry[field]}" for field in group_by)
            print(
                f"  {key}: launched={entry['launched']} "
                f"success={fmt(entry['success_rate'])} "
                f"p50={fmt(entry['latency_p50_ms'], 'ms')} "
                f"tx={fmt(entry['mean_transmissions'])}"
            )
    if args.plan_out:
        plan.to_json(args.plan_out)
        print(f"wrote {args.plan_out}")
    if args.json:
        log.to_json(args.json)
        print(f"wrote {args.json}")
    if args.csv:
        log.to_csv(args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_telemetry(args) -> int:
    if args.telemetry_command == "trend":
        return _cmd_telemetry_trend(args)
    from repro.telemetry import TelemetrySnapshot, render_diff, render_snapshot

    if len(args.snapshots) > 2:
        raise SystemExit(
            "telemetry summarize takes one snapshot, or two (A B) to diff"
        )
    try:
        snaps = [TelemetrySnapshot.from_json(path) for path in args.snapshots]
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"cannot load telemetry snapshot: {exc}") from None
    if len(snaps) == 1:
        print(render_snapshot(snaps[0]))
    else:
        print(render_diff(snaps[0], snaps[1]))
    return 0


def _cmd_telemetry_trend(args) -> int:
    from repro.telemetry.trend import collect_runs, phase_trends, render_trends

    if not os.path.isdir(args.directory):
        raise SystemExit(f"not a directory: {args.directory!r}")
    groups, skipped = collect_runs(args.directory)
    trends = phase_trends(groups)
    print(render_trends(trends, threshold=args.threshold, min_seconds=args.min_seconds))
    for path in skipped:
        print(f"skipped (no phase table): {path}")
    regressed = [
        t for t in trends if t.regressed(args.threshold, args.min_seconds)
    ]
    if regressed:
        print(
            f"{len(regressed)} phase(s) regressed past "
            f"+{100 * args.threshold:.0f}% / {args.min_seconds:g}s"
        )
        if args.fail_on_regression:
            return 1
    return 0


def _cmd_serve(args) -> int:
    import signal

    from repro.service.http import make_server
    from repro.service.orchestrator import SessionOrchestrator
    from repro.service.store import SessionStore

    store = SessionStore(args.state_dir)
    orchestrator = SessionOrchestrator(store, idle_timeout=args.idle_timeout)
    server = make_server(
        orchestrator, host=args.host, port=args.port, verbose=args.verbose
    )
    host, port = server.server_address[:2]
    checkpointed = store.list_ids()
    print(
        f"listening on http://{host}:{port} "
        f"(state dir {args.state_dir!r}, {len(checkpointed)} checkpointed session(s))",
        flush=True,
    )

    stop = {"requested": False}

    def request_shutdown(signum, frame):  # pragma: no cover - signal path
        stop["requested"] = True
        # shutdown() must come from another thread than serve_forever's;
        # the signal handler runs on the main thread, which here is the
        # serving thread, so hand it off.
        import threading

        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, request_shutdown)
        except ValueError:  # pragma: no cover - non-main thread (tests)
            pass

    sweeper = None
    if args.idle_timeout is not None:
        import threading

        def sweep_loop():  # pragma: no cover - timing-dependent
            while not stop["requested"]:
                interval = max(1.0, args.idle_timeout / 4.0)
                if stop["requested"]:
                    break
                threading.Event().wait(interval)
                for session_id in orchestrator.sweep_idle():
                    print(f"evicted idle session {session_id}", flush=True)

        sweeper = threading.Thread(target=sweep_loop, daemon=True)
        sweeper.start()

    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        stop["requested"] = True
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.server_close()
        saved = orchestrator.checkpoint_all()
        if saved:
            print(f"checkpointed {len(saved)} session(s) on shutdown", flush=True)
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import (
        Baseline,
        build_registry,
        render_json,
        render_text,
        run_lint,
    )

    registry = build_registry()
    if args.list_rules:
        width = max(len(rule_id) for rule_id in registry.rules)
        for rule_id, rule in sorted(registry.rules.items()):
            print(f"{rule_id:<{width}}  {rule.summary}")
        return 0
    paths = args.paths or ["src/repro"]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        raise SystemExit(f"no such path(s): {', '.join(missing)}")
    rules = [r for r in args.rules.split(",") if r] if args.rules else None
    try:
        findings = run_lint(paths, rules=rules)
    except ValueError as exc:  # unknown rule id
        raise SystemExit(str(exc)) from None
    if args.write_baseline:
        Baseline.from_findings(findings).save(args.baseline)
        print(f"wrote {args.baseline} ({len(findings)} finding(s) baselined)")
        return 0
    baseline = Baseline.empty()
    if not args.no_baseline and os.path.exists(args.baseline):
        try:
            baseline = Baseline.load(args.baseline)
        except (ValueError, OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"cannot load baseline {args.baseline!r}: {exc}") from None
    if rules is not None:
        # A rule-filtered run must not read the skipped rules' baseline
        # entries as paid-down debt.
        baseline = Baseline({
            fp: entry
            for fp, entry in baseline.entries.items()
            if entry.get("rule") in rules
        })
    comparison = baseline.compare(findings)
    if args.fmt == "json":
        print(render_json(comparison))
    else:
        print(render_text(comparison, show_baselined=args.show_baselined))
    failed = (args.fail_on_new and comparison.new) or (
        args.fail_on_stale and comparison.stale
    )
    return 1 if failed else 0


def _cmd_snapshot(args) -> int:
    simulation = build_simulation(scale=args.scale, seed=args.seed)
    snapshot = take_snapshot(simulation)
    print(f"time: {snapshot.time:.0f}s  online nodes: {snapshot.online_count}")
    print("band      nodes  hs_mean  vs_mean  incoming_vs")
    counts, edges = snapshot.availability_histogram(bins=10)
    hs = snapshot.hs_by_band()
    vs = snapshot.vs_by_band()
    inc = snapshot.incoming_vs_by_band()
    for i, count in enumerate(counts):
        band = round(float(edges[i]), 2)
        print(
            f"[{band:.1f},{band + 0.1:.1f})  {int(count):5d}  "
            f"{hs.get(band, float('nan')):7.1f}  {vs.get(band, float('nan')):7.1f}  "
            f"{inc.get(band, float('nan')):11.1f}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "figure": _cmd_figure,
        "figures": _cmd_figures,
        "trace": _cmd_trace,
        "snapshot": _cmd_snapshot,
        "scenario": _cmd_scenario,
        "ops": _cmd_ops,
        "telemetry": _cmd_telemetry,
        "serve": _cmd_serve,
        "lint": _cmd_lint,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an
        # error.  Detach stdout so interpreter shutdown doesn't retry
        # the flush and print a second traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
