"""AVMEM — availability-aware overlays for management operations in
non-cooperative distributed systems.

A from-scratch Python reproduction of Cho, Morales & Gupta (Middleware
2007): the consistent, randomized, availability-aware membership
predicate family; the discovery/refresh maintenance protocols; and the
threshold/range anycast and multicast management operations — evaluated
under Overnet-style churn on a discrete-event simulator.

Quickstart
----------
>>> from repro import AvmemSimulation, SimulationSettings
>>> sim = AvmemSimulation(SimulationSettings(hosts=200, seed=7))
>>> sim.setup(warmup=3600.0)
>>> result = sim.run_anycast(initiator_band="mid", target=(0.85, 0.95))
>>> result.delivered
True

See README.md for the full tour and docs/architecture.md for the
layer-by-layer architecture.
"""

from repro.core import (
    AvailabilityPdf,
    AvmemConfig,
    AvmemNode,
    AvmemPredicate,
    MemberEntry,
    MembershipLists,
    MembershipTable,
    NodeDescriptor,
    NodeId,
    SliverKind,
    SliverSelector,
    make_node_ids,
    paper_predicate,
    random_overlay_predicate,
)
from repro.simulation import AvmemSimulation, SimulationSettings

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "NodeId",
    "make_node_ids",
    "NodeDescriptor",
    "AvailabilityPdf",
    "AvmemPredicate",
    "paper_predicate",
    "random_overlay_predicate",
    "SliverKind",
    "SliverSelector",
    "MemberEntry",
    "MembershipTable",
    "MembershipLists",
    "AvmemConfig",
    "AvmemNode",
    "AvmemSimulation",
    "SimulationSettings",
]
