"""Unit + property tests for the AVMEM predicate framework."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.availability import AvailabilityPdf
from repro.core.hashing import DigestPairHash
from repro.core.ids import NodeId, make_node_ids
from repro.core.predicates import (
    AvmemPredicate,
    NodeDescriptor,
    SliverKind,
    paper_predicate,
    random_overlay_predicate,
)
from repro.core.slivers import (
    ConstantHorizontal,
    ConstantVertical,
    LogarithmicConstantHorizontal,
    LogarithmicDecreasingVertical,
    LogarithmicVertical,
    RandomUniformRule,
)


@pytest.fixture
def pdf(rng):
    return AvailabilityPdf.from_samples(rng.uniform(0.05, 0.95, 400))


@pytest.fixture
def predicate(pdf):
    return paper_predicate(pdf)


class TestNodeDescriptor:
    def test_validation(self):
        with pytest.raises(ValueError):
            NodeDescriptor(NodeId("a", 1), 1.5)

    def test_with_availability(self):
        d = NodeDescriptor(NodeId("a", 1), 0.5)
        d2 = d.with_availability(0.7)
        assert d2.availability == 0.7
        assert d2.node == d.node
        assert d.availability == 0.5  # original untouched


class TestClassification:
    def test_horizontal_within_epsilon(self, predicate):
        assert predicate.classify(0.5, 0.55) is SliverKind.HORIZONTAL
        assert predicate.classify(0.5, 0.5) is SliverKind.HORIZONTAL

    def test_vertical_outside_epsilon(self, predicate):
        assert predicate.classify(0.5, 0.65) is SliverKind.VERTICAL
        assert predicate.classify(0.5, 0.1) is SliverKind.VERTICAL

    def test_boundary_is_vertical(self, predicate):
        # |av_x - av_y| == epsilon is NOT "within" the band (strict <).
        # Exactly-representable values avoid float-rounding ambiguity.
        assert predicate.classify(0.5, 0.625) is SliverKind.VERTICAL
        assert predicate.classify(0.25, 0.375) is SliverKind.VERTICAL


class TestEvaluation:
    def test_never_own_neighbor(self, predicate):
        d = NodeDescriptor(NodeId("a", 1), 0.5)
        assert not predicate.evaluate(d, d)
        assert predicate.evaluate_kind(d, d) is None

    def test_matches_manual_computation(self, predicate):
        x = NodeDescriptor(NodeId("a", 1), 0.42)
        y = NodeDescriptor(NodeId("b", 2), 0.87)
        expected = predicate.hash_value(x.node, y.node) <= predicate.threshold(
            0.42, 0.87
        )
        assert predicate.evaluate(x, y) == expected

    def test_consistency_across_instances(self, pdf):
        """Any party evaluating M(x, y) gets the same answer."""
        p1 = paper_predicate(pdf)
        p2 = paper_predicate(pdf)
        ids = make_node_ids(30)
        for i in range(0, 28, 2):
            x = NodeDescriptor(ids[i], 0.3)
            y = NodeDescriptor(ids[i + 1], 0.8)
            assert p1.evaluate(x, y) == p2.evaluate(x, y)

    def test_cushion_widens_acceptance(self, predicate):
        ids = make_node_ids(200)
        base = cushioned = 0
        x = NodeDescriptor(ids[0], 0.5)
        for node in ids[1:]:
            y = NodeDescriptor(node, 0.9)
            base += predicate.evaluate(x, y)
            cushioned += predicate.evaluate(x, y, cushion=0.3)
        assert cushioned > base

    def test_cushion_validation(self, predicate):
        x = NodeDescriptor(NodeId("a", 1), 0.5)
        y = NodeDescriptor(NodeId("b", 2), 0.9)
        with pytest.raises(ValueError):
            predicate.evaluate(x, y, cushion=2.0)

    def test_evaluate_kind_matches_classify(self, predicate):
        ids = make_node_ids(100)
        x = NodeDescriptor(ids[0], 0.5)
        for node in ids[1:]:
            y = NodeDescriptor(node, 0.53)
            kind = predicate.evaluate_kind(x, y)
            if kind is not None:
                assert kind is SliverKind.HORIZONTAL

    def test_rule_type_validation(self, pdf):
        with pytest.raises(TypeError):
            AvmemPredicate(LogarithmicVertical(), LogarithmicVertical(), pdf)
        with pytest.raises(TypeError):
            AvmemPredicate(
                LogarithmicConstantHorizontal(), LogarithmicConstantHorizontal(), pdf
            )

    def test_random_rule_usable_as_both(self, pdf):
        rule = RandomUniformRule(0.1)
        predicate = AvmemPredicate(rule, rule, pdf)
        assert predicate.threshold(0.2, 0.9) == 0.1
        assert predicate.threshold(0.2, 0.22) == 0.1


class TestVectorizedEvaluation:
    def test_matches_scalar(self, predicate, rng):
        ids = make_node_ids(150)
        avs = rng.uniform(0.05, 0.95, 150)
        x = NodeDescriptor(ids[0], 0.5)
        member, horizontal = predicate.evaluate_many(x, ids, avs)
        for i, node in enumerate(ids):
            y = NodeDescriptor(node, float(avs[i]))
            assert member[i] == predicate.evaluate(x, y)
            if member[i]:
                expected_kind = predicate.classify(0.5, float(avs[i]))
                assert horizontal[i] == (expected_kind is SliverKind.HORIZONTAL)

    def test_self_excluded(self, predicate, rng):
        ids = make_node_ids(10)
        avs = np.full(10, 0.5)
        member, _ = predicate.evaluate_many(NodeDescriptor(ids[3], 0.5), ids, avs)
        assert not member[3]

    def test_cushion_vectorized(self, predicate, rng):
        ids = make_node_ids(200)
        avs = rng.uniform(0.05, 0.95, 200)
        x = NodeDescriptor(ids[0], 0.5)
        base, _ = predicate.evaluate_many(x, ids, avs)
        wide, _ = predicate.evaluate_many(x, ids, avs, cushion=0.3)
        assert wide.sum() >= base.sum()
        assert (wide | ~base).all()  # base members stay members

    def test_shape_mismatch_rejected(self, predicate):
        ids = make_node_ids(5)
        with pytest.raises(ValueError):
            predicate.evaluate_many(
                NodeDescriptor(ids[0], 0.5), ids, np.array([0.5, 0.5])
            )

    def test_scalar_hash_fallback(self, pdf, rng):
        predicate = paper_predicate(pdf, hash_fn=DigestPairHash("sha1"))
        ids = make_node_ids(40)
        avs = rng.uniform(0.1, 0.9, 40)
        x = NodeDescriptor(ids[0], 0.5)
        member, _ = predicate.evaluate_many(x, ids, avs)
        for i, node in enumerate(ids):
            assert member[i] == predicate.evaluate(
                x, NodeDescriptor(node, float(avs[i]))
            )


class TestFactories:
    def test_paper_predicate_rules(self, pdf):
        predicate = paper_predicate(pdf, c1=2.5, c2=1.5, epsilon=0.08)
        assert isinstance(predicate.vertical, LogarithmicVertical)
        assert isinstance(predicate.horizontal, LogarithmicConstantHorizontal)
        assert predicate.vertical.c1 == 2.5
        assert predicate.horizontal.c2 == 1.5
        assert predicate.epsilon == 0.08

    def test_random_overlay_by_probability(self, pdf):
        predicate = random_overlay_predicate(pdf, probability=0.07)
        assert predicate.threshold(0.1, 0.9) == pytest.approx(0.07)

    def test_random_overlay_by_degree(self, pdf):
        predicate = random_overlay_predicate(pdf, expected_degree=15.0)
        assert predicate.threshold(0.1, 0.9) == pytest.approx(
            min(1.0, 15.0 / pdf.n_star)
        )

    def test_random_overlay_requires_exactly_one_arg(self, pdf):
        with pytest.raises(ValueError):
            random_overlay_predicate(pdf)
        with pytest.raises(ValueError):
            random_overlay_predicate(pdf, probability=0.1, expected_degree=5.0)


@given(
    av_x=st.floats(0.0, 1.0),
    av_y=st.floats(0.0, 1.0),
    idx_x=st.integers(0, 500),
    idx_y=st.integers(0, 500),
)
@settings(max_examples=100, deadline=None)
def test_predicate_is_pure_function(av_x, av_y, idx_x, idx_y):
    """M(x, y) depends only on (id, av) pairs — evaluated twice, same answer;
    and the threshold is always a probability."""
    pdf = AvailabilityPdf.uniform(n_star=200.0)
    predicate = paper_predicate(pdf)
    x = NodeDescriptor(NodeId.from_index(idx_x), av_x)
    y = NodeDescriptor(NodeId.from_index(idx_y), av_y)
    assert predicate.evaluate(x, y) == predicate.evaluate(x, y)
    threshold = predicate.threshold(av_x, av_y)
    assert 0.0 <= threshold <= 1.0


class TestSliverRuleUnits:
    def test_constant_vertical_from_target(self):
        rule = ConstantVertical.from_target_count(18.0, 450.0)
        assert rule.probability == pytest.approx(0.04)

    def test_constant_vertical_caps_at_one(self):
        assert ConstantVertical.from_target_count(100.0, 50.0).probability == 1.0

    def test_constant_horizontal_from_target(self):
        rule = ConstantHorizontal.from_target_count(6.0, 60.0)
        assert rule.probability == pytest.approx(0.1)

    def test_log_vertical_threshold_in_unit_interval(self, pdf, rng):
        rule = LogarithmicVertical(c1=3.0)
        for a in rng.uniform(0, 1, 50):
            assert 0.0 <= rule.threshold(0.5, float(a), pdf) <= 1.0

    def test_log_vertical_zero_density_caps(self):
        # All mass in [0, 0.1): density elsewhere is zero -> threshold 1.
        pdf = AvailabilityPdf.from_samples([0.05] * 50, online_weighted=False)
        rule = LogarithmicVertical()
        assert rule.threshold(0.5, 0.95, pdf) == 1.0

    def test_log_decreasing_decays_with_distance(self, pdf):
        rule = LogarithmicDecreasingVertical(c1=3.0)
        near = rule.threshold(0.5, 0.62, pdf)
        far = rule.threshold(0.5, 0.95, pdf)
        # Same-density comparison only approximately; use uniform pdf.
        uniform = AvailabilityPdf.uniform(n_star=400.0)
        assert rule.threshold(0.5, 0.62, uniform) > rule.threshold(0.5, 0.95, uniform)

    def test_log_decreasing_zero_distance_caps(self, pdf):
        rule = LogarithmicDecreasingVertical()
        assert rule.threshold(0.5, 0.5, pdf) == 1.0

    def test_horizontal_rule_independent_of_av_y(self, pdf):
        rule = LogarithmicConstantHorizontal(c2=1.0, epsilon=0.1)
        assert rule.threshold(0.5, 0.42, pdf) == rule.threshold(0.5, 0.58, pdf)

    def test_vectorized_rules_match_scalar(self, pdf, rng):
        av_ys = rng.uniform(0.0, 1.0, 60)
        for rule in (
            LogarithmicVertical(),
            LogarithmicDecreasingVertical(),
            LogarithmicConstantHorizontal(),
            ConstantVertical(0.05),
            ConstantHorizontal(0.2),
            RandomUniformRule(0.3),
        ):
            vector = rule.threshold_many(0.5, av_ys, pdf)
            scalar = np.array([rule.threshold(0.5, float(a), pdf) for a in av_ys])
            assert np.allclose(vector, scalar), type(rule).__name__

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            ConstantVertical(1.5)
        with pytest.raises(ValueError):
            RandomUniformRule(-0.1)
