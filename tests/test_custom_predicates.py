"""Tests for application-specified predicate rules (FunctionRule)."""

import numpy as np
import pytest

from repro.core.availability import AvailabilityPdf
from repro.core.ids import make_node_ids
from repro.core.predicates import AvmemPredicate, NodeDescriptor
from repro.core.slivers import FunctionRule
from repro.overlays.graphs import build_overlay_graph, sliver_sizes


@pytest.fixture
def pdf(rng):
    return AvailabilityPdf.from_samples(rng.uniform(0.05, 0.95, 300))


class TestFunctionRule:
    def test_wraps_callable(self, pdf):
        rule = FunctionRule(lambda ax, ay, p: 0.25, name="const")
        assert rule.threshold(0.1, 0.9, pdf) == 0.25
        assert "const" in repr(rule)

    def test_clamps_into_unit_interval(self, pdf):
        high = FunctionRule(lambda ax, ay, p: 7.0)
        low = FunctionRule(lambda ax, ay, p: -3.0)
        assert high.threshold(0.1, 0.9, pdf) == 1.0
        assert low.threshold(0.1, 0.9, pdf) == 0.0

    def test_nan_rejected(self, pdf):
        rule = FunctionRule(lambda ax, ay, p: float("nan"))
        with pytest.raises(ValueError, match="NaN"):
            rule.threshold(0.1, 0.9, pdf)

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            FunctionRule(0.5)

    def test_usable_as_both_slivers(self, pdf):
        """A FunctionRule can serve as horizontal and vertical rule."""
        rule = FunctionRule(lambda ax, ay, p: ay * 0.2, name="prefer-stable")
        predicate = AvmemPredicate(rule, rule, pdf)
        assert predicate.threshold(0.5, 0.9) == pytest.approx(0.18)

    def test_custom_predicate_shapes_overlay(self, pdf, rng):
        """An application predicate that prefers stable neighbors yields
        in-degree increasing with availability."""
        prefer_stable = FunctionRule(lambda ax, ay, p: ay**2 * 0.4, name="av^2")
        predicate = AvmemPredicate(prefer_stable, prefer_stable, pdf)
        ids = make_node_ids(300)
        avs = rng.uniform(0.05, 0.95, 300)
        descriptors = [NodeDescriptor(n, float(a)) for n, a in zip(ids, avs)]
        graph = build_overlay_graph(descriptors, predicate)
        in_deg = np.array([graph.in_degree(d.node) for d in descriptors])
        corr = np.corrcoef(avs, in_deg)[0, 1]
        assert corr > 0.5  # stable nodes are far better known

    def test_consistency_preserved(self, pdf):
        """Custom rules stay inside the consistent framework: the same
        (ids, availabilities) always produce the same membership."""
        rule = FunctionRule(lambda ax, ay, p: abs(ax - ay), name="distance")
        p1 = AvmemPredicate(rule, rule, pdf)
        p2 = AvmemPredicate(rule, rule, pdf)
        ids = make_node_ids(40)
        x = NodeDescriptor(ids[0], 0.3)
        for node in ids[1:]:
            y = NodeDescriptor(node, 0.8)
            assert p1.evaluate(x, y) == p2.evaluate(x, y)

    def test_vectorized_fallback_matches_scalar(self, pdf, rng):
        rule = FunctionRule(lambda ax, ay, p: ay * 0.3)
        av_ys = rng.uniform(0, 1, 25)
        vector = rule.threshold_many(0.5, av_ys, pdf)
        scalar = np.array([rule.threshold(0.5, float(a), pdf) for a in av_ys])
        assert np.allclose(vector, scalar)
